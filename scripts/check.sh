#!/usr/bin/env bash
# Full local gate: formatting, the workspace static-analysis suite,
# clippy (warning-free by policy), and the tier-1 build + tests.
# Everything here is what CI runs; a clean exit means the tree is
# mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo xtask lint --format json (gate on the summary block)"
# The JSON report is the machine contract (schema automodel-lint/v2):
# CI archives it, and the gate below fails on any new finding, regressed
# bucket, or stale baseline bucket — mirroring the lint's own exit code
# but proving the report itself stays parseable.
lint_report="$(mktemp)"
cargo xtask lint --format json > "$lint_report" || true
python3 - "$lint_report" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
if doc["schema"] != "automodel-lint/v2":
    sys.exit(f"lint gate: unexpected schema {doc['schema']!r}")
s = doc["summary"]
if s["new"] or s["regressed_buckets"] or s["stale_buckets"] or not s["clean"]:
    for f in doc["findings"]:
        if not f["baselined"]:
            print(f"  {f['file']}:{f['line']}:{f['col']}: "
                  f"[{f['code']}/{f['rule']}] {f['message']}")
    sys.exit(f"lint gate: {s['new']} new finding(s), "
             f"{s['regressed_buckets']} regressed / {s['stale_buckets']} stale bucket(s)")
print(f"lint gate: clean ({s['baselined']} grandfathered, {s['suppressed']} suppressed)")
PY
rm -f "$lint_report"

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (default parallelism)"
cargo test -q

echo "==> cargo test (AUTOMODEL_THREADS=1 — serial determinism replay)"
AUTOMODEL_THREADS=1 cargo test -q

echo "==> fault-injection suite (AUTOMODEL_FAULTS unset)"
cargo test -q --test fault_injection

echo "==> fault-injection drill (AUTOMODEL_FAULTS set — retries must absorb every fault)"
# Faults fire on attempt 0 only, so the default retry policy recovers each
# one and every search path must reproduce its clean results byte for byte.
AUTOMODEL_FAULTS="seed=3,panic=0.1,nan=0.1,delay=0.05" cargo test -q --test fault_injection
AUTOMODEL_FAULTS="seed=3,panic=0.1,nan=0.1,delay=0.05" cargo test -q --test determinism

echo "==> cargo test (AUTOMODEL_CACHE=0 — evaluation cache disabled)"
# The trial cache must be invisible in results: the whole suite passes with
# it forced off and forced on, and the determinism/golden tests assert the
# two modes byte-identical explicitly.
AUTOMODEL_CACHE=0 cargo test -q

echo "==> cargo test (AUTOMODEL_CACHE=1 — evaluation cache enabled)"
AUTOMODEL_CACHE=1 cargo test -q

echo "==> structured-trace gate (byte-identical traces at 1/2/8 threads, trace-on == trace-off)"
# The binary asserts the full contract itself: enabling the tracer must not
# change the trial history, and the captured trace must not depend on the
# worker thread count. Any violation aborts the run.
cargo run --release -q -p automodel-bench --bin exp_trace_overhead -- --scale tiny

echo "==> AUTOMODEL_TRACE capture (JSONL sink, cross-thread diff)"
# The file sink must produce byte-identical JSONL regardless of
# AUTOMODEL_THREADS (the manual clock stamps t=0, so no wall-clock leaks).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
AUTOMODEL_TRACE="$trace_dir/threads1.jsonl" AUTOMODEL_THREADS=1 \
    cargo run --release -q -p automodel-bench --bin exp_hpo_choice -- --scale tiny >/dev/null
AUTOMODEL_TRACE="$trace_dir/threads8.jsonl" AUTOMODEL_THREADS=8 \
    cargo run --release -q -p automodel-bench --bin exp_hpo_choice -- --scale tiny >/dev/null
test -s "$trace_dir/threads1.jsonl"
grep -q '"ev"' "$trace_dir/threads1.jsonl"
diff "$trace_dir/threads1.jsonl" "$trace_dir/threads8.jsonl"

echo "==> warm-start gate (dmd build -> dmd load --rerun, byte-identical histories)"
# The persisted artifact must verify, and a rebuild warm-started from its
# trial-cache snapshot must reproduce the cold run's trial history byte
# for byte.
store_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$store_dir"' EXIT
cargo run --release -q -- dmd build --out "$store_dir/dmd.store" \
    --history "$store_dir/cold.txt" >/dev/null
cargo run --release -q -- dmd load --artifact "$store_dir/dmd.store" --rerun \
    --history "$store_dir/warm.txt" >/dev/null
test -s "$store_dir/cold.txt"
diff "$store_dir/cold.txt" "$store_dir/warm.txt"

echo "==> warm-start speedup gate (exp_warmstart, floor 1.5x)"
# The binary itself asserts history identity at 1/2/8 threads and that
# restored entries are consumed; the floor check below gates the speedup
# recorded in BENCH_warmstart.json.
cargo run --release -q -p automodel-bench --bin exp_warmstart -- --scale tiny >/dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_warmstart.json"))
if not doc["identical_history"]:
    raise SystemExit("warm-start gate: history diverged")
if doc["speedup"] < 1.5:
    raise SystemExit(f"warm-start gate: speedup {doc['speedup']:.2f}x below the 1.5x floor")
print(f"warm-start gate: {doc['speedup']:.2f}x, {doc['warm_hits']} warm hit(s) "
      f"of {doc['restored']} restored entr(ies)")
PY

echo "==> crash-recovery kill-drill (abort at a batch boundary, resume byte-identical)"
# tests/crash_recovery.rs spawns the CLI, kills it with process::abort
# after the third checkpoint write (AUTOMODEL_CRASH_AFTER), resumes with
# --resume and asserts the trial history is byte-identical to the
# uninterrupted run at 1/2/8 threads — with and without injected IO
# faults — plus the every-byte-offset corruption sweep over a
# checkpoint generation. The tests scrub inherited AUTOMODEL_* vars.
cargo test -q --test crash_recovery

echo "==> checkpoint overhead gate (exp_checkpoint_overhead, ceiling 5%)"
# The binary asserts the checkpointed history is byte-identical to the
# baseline; the ceiling check below gates the durability tax recorded in
# BENCH_checkpoint.json. Small scale: tiny batches make fsync cost look
# artificially large relative to the work it protects.
cargo run --release -q -p automodel-bench --bin exp_checkpoint_overhead -- --scale small >/dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_checkpoint.json"))
if not doc["identical_history"]:
    raise SystemExit("checkpoint gate: history diverged")
if doc["overhead_pct"] >= 5.0:
    raise SystemExit(f"checkpoint gate: overhead {doc['overhead_pct']:.2f}% at or above the 5% ceiling")
print(f"checkpoint gate: {doc['overhead_pct']:+.2f}% over {doc['checkpoints_written']} write(s)")
PY

echo "==> multi-fidelity promotion oracle (schedule re-derived from the trace)"
# tests/multifidelity_oracle.rs replays SHA/Hyperband traces, re-derives
# every promotion/elimination from recorded score bits, and asserts
# byte-identical histories AND traces at 1/2/8 threads under faults,
# trace-on == trace-off, cache-on == cache-off, plus golden histories
# for two seeds. The suite also runs under the env matrices above; this
# stage pins it in the default environment by name.
cargo test -q --test multifidelity_oracle

echo "==> multi-fidelity throughput gate (exp_multifidelity, floor 1.5x)"
# The binary asserts byte-identical SHA histories and identical unit
# spend at 1/2/8 threads; the floor check below gates configurations
# explored per budget unit vs full-fidelity random search as recorded
# in BENCH_multifidelity.json.
cargo run --release -q -p automodel-bench --bin exp_multifidelity -- --scale small >/dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_multifidelity.json"))
if not doc["identical_history"]:
    raise SystemExit("multi-fidelity gate: history diverged")
if doc["throughput_ratio"] < doc["throughput_floor"]:
    raise SystemExit(f"multi-fidelity gate: {doc['throughput_ratio']:.2f}x below "
                     f"the {doc['throughput_floor']}x floor")
print(f"multi-fidelity gate: {doc['throughput_ratio']:.2f}x "
      f"({doc['sha_trials']} SHA trials vs {doc['random_trials']} random at the same spend)")
PY

echo "==> session-oracle conformance suite (spawned server, real protocol)"
# tests/serve_oracle.rs drives a spawned `serve` over TCP: four
# concurrent sessions (one under injected faults) byte-identical to the
# same sessions run alone at 1/2/8 executor threads, warm replays
# bit-exact with cold, per-session budget ceilings enforced, malformed
# lines answered with typed errors on a surviving connection. The serve
# kill-drill in crash_recovery (already run above) covers checkpointed
# session resume.
cargo test -q --test serve_oracle

echo "==> serve throughput gate (exp_serve, warm/cold floor 2x)"
# The binary asserts warm sessions byte-identical to cold and that warm
# sessions actually consume the shared context pools; the floor check
# below gates the warm/cold sessions-per-second ratio recorded in
# BENCH_serve.json.
cargo run --release -q -p automodel-bench --bin exp_serve -- --scale small >/dev/null
python3 - <<'PY'
import json
doc = json.load(open("BENCH_serve.json"))
if not doc["identical_history"]:
    raise SystemExit("serve gate: warm history diverged from cold")
if doc["warm_speedup"] < doc["speedup_floor"]:
    raise SystemExit(f"serve gate: warm speedup {doc['warm_speedup']:.2f}x below "
                     f"the {doc['speedup_floor']}x floor")
print(f"serve gate: {doc['warm_speedup']:.2f}x warm over cold "
      f"({doc['cold_sessions_per_s']:.1f} -> {doc['warm_sessions_per_s']:.1f} sessions/s)")
PY

echo "All checks passed."
