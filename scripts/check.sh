#!/usr/bin/env bash
# Full local gate: formatting, the workspace static-analysis suite,
# clippy (warning-free by policy), and the tier-1 build + tests.
# Everything here is what CI runs; a clean exit means the tree is
# mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (default parallelism)"
cargo test -q

echo "==> cargo test (AUTOMODEL_THREADS=1 — serial determinism replay)"
AUTOMODEL_THREADS=1 cargo test -q

echo "All checks passed."
