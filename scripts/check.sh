#!/usr/bin/env bash
# Full local gate: formatting, the workspace static-analysis suite,
# clippy (warning-free by policy), and the tier-1 build + tests.
# Everything here is what CI runs; a clean exit means the tree is
# mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (default parallelism)"
cargo test -q

echo "==> cargo test (AUTOMODEL_THREADS=1 — serial determinism replay)"
AUTOMODEL_THREADS=1 cargo test -q

echo "==> fault-injection suite (AUTOMODEL_FAULTS unset)"
cargo test -q --test fault_injection

echo "==> fault-injection drill (AUTOMODEL_FAULTS set — retries must absorb every fault)"
# Faults fire on attempt 0 only, so the default retry policy recovers each
# one and every search path must reproduce its clean results byte for byte.
AUTOMODEL_FAULTS="seed=3,panic=0.1,nan=0.1,delay=0.05" cargo test -q --test fault_injection
AUTOMODEL_FAULTS="seed=3,panic=0.1,nan=0.1,delay=0.05" cargo test -q --test determinism

echo "==> cargo test (AUTOMODEL_CACHE=0 — evaluation cache disabled)"
# The trial cache must be invisible in results: the whole suite passes with
# it forced off and forced on, and the determinism/golden tests assert the
# two modes byte-identical explicitly.
AUTOMODEL_CACHE=0 cargo test -q

echo "==> cargo test (AUTOMODEL_CACHE=1 — evaluation cache enabled)"
AUTOMODEL_CACHE=1 cargo test -q

echo "All checks passed."
