//! The paper's Fig. 2 worked example: acquiring one piece of knowledge for
//! the Wine dataset.
//!
//! Five papers ([19]–[23] in the paper's bibliography) report different
//! winners on Wine. The information network over the candidates
//! {RandomForest, BayesNet, LDA, J48, LibSVM} is built, closed
//! transitively, conflict-resolved, and the in-degree-0 stand-off between
//! BayesNet and J48 is settled by comparison experience.
//!
//! Run: `cargo run --example knowledge_graph`

use auto_model::knowledge::acquisition::{build_network, comparison_experience};
use auto_model::knowledge::corpus::fig2_wine_example;
use auto_model::knowledge::experience::related_experiences;
use auto_model::knowledge::paper::rank_papers;
use auto_model::knowledge::{knowledge_acquisition, AcquisitionOptions};
use std::collections::BTreeMap;

fn main() {
    let (papers, experiences) = fig2_wine_example();

    // (a) The experiences RInf_WineDataset.
    println!("(a) RInf for the Wine Dataset:");
    for e in &experiences {
        println!("    [{}] best = {}, beats {:?}", e.paper, e.best, e.others);
    }

    // (b) Paper reliabilities under the Table I ordering.
    println!("\n(b) paper reliabilities (Table I; higher = more reliable):");
    let ranks = rank_papers(&papers);
    for (id, rank) in &ranks {
        let p = papers.iter().find(|p| &p.id == id).unwrap();
        println!(
            "    {:>14}: rank {} (level {:?}, {:?}, IF {:.1}, {} cites/yr)",
            id, rank, p.level, p.venue, p.impact_factor, p.annual_citations
        );
    }

    // (c) The information network over the candidates.
    let reliability: BTreeMap<String, usize> = ranks.into_iter().collect();
    let rinf = related_experiences(&experiences, "Wine Dataset");
    let graph = build_network(&rinf, &reliability);
    println!("\n(c) closed, conflict-free information network:");
    for (from, to, w) in graph.edges() {
        println!("    {from} → {to}  (reliability {w})");
    }
    println!("    undominated candidates: {:?}", graph.sources());

    // (d) Resolution by comparison experience.
    println!("\n(d) comparison experience of the finalists:");
    for candidate in graph.sources() {
        println!(
            "    {candidate}: {} algorithms proved weaker",
            comparison_experience(&candidate, &rinf, &graph)
        );
    }

    let pairs = knowledge_acquisition(&experiences, &papers, &AcquisitionOptions::default());
    let pair = &pairs[0];
    println!(
        "\n=> acquired knowledge: ({}, {})",
        pair.instance, pair.best_algorithm
    );
    assert_eq!(pair.best_algorithm, "BayesNet");
}
