//! Quickstart: the full Auto-Model loop in under a minute.
//!
//! 1. Build a synthetic paper corpus (standing in for the 20 hand-read
//!    papers of §IV) and attach datasets to its task instances.
//! 2. Run DMD (Algorithms 1–4) to train the decision model `SNA`.
//! 3. Ask UDR (Algorithm 5) to solve a fresh classification dataset:
//!    it selects an algorithm with `SNA` and tunes its hyperparameters.
//!
//! Run: `cargo run --release --example quickstart`

use auto_model::prelude::*;

fn main() {
    // ---- Offline phase: the Decision-Making Model Designer.
    println!("building the paper corpus and knowledge datasets...");
    let corpus = CorpusSpec::small().build();
    println!(
        "  corpus: {} papers, {} experiences over {} task instances",
        corpus.papers.len(),
        corpus.experiences.len(),
        corpus.true_rankings.len()
    );

    let input = DmdInput::synthetic_from_corpus(&corpus, 80, 5);
    println!("running DMD (knowledge acquisition → feature selection → architecture search)...");
    let dmd = DmdConfig::fast().run(&input).expect("DMD pipeline");
    println!(
        "  CRelations: {} pairs; key features: {}/23 selected",
        dmd.records.len(),
        dmd.n_key_features()
    );
    for record in dmd.records.iter().take(5) {
        println!("    {} -> {}", record.instance, record.algorithm);
    }

    // ---- Online phase: the User Demand Responser.
    let dataset = SynthSpec::new(
        "user-task",
        300,
        6,
        2,
        3,
        SynthFamily::GaussianBlobs { spread: 1.0 },
        7,
    )
    .with_label_noise(0.05)
    .generate();
    println!(
        "\nsolving a user task instance: {} rows, {} attributes, {} classes",
        dataset.n_rows(),
        dataset.n_attrs(),
        dataset.n_classes()
    );

    let solution = UdrConfig::fast().solve(&dmd, &dataset).expect("UDR");
    println!("  selected algorithm : {}", solution.algorithm);
    println!("  HPO technique      : {}", solution.technique);
    println!("  tuned configuration: {}", solution.config);
    println!("  CV accuracy        : {:.3}", solution.score);
    println!("  evaluations used   : {}", solution.trials);
}
