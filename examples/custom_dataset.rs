//! Using Auto-Model on your own data: write/read the typed CSV format,
//! inspect Table III meta-features, and solve the CASH problem for the
//! loaded dataset.
//!
//! Run: `cargo run --release --example custom_dataset`

use auto_model::data::csv::{read_csv, write_csv};
use auto_model::data::{meta_features, FEATURE_NAMES};
use auto_model::prelude::*;
use std::io::Cursor;

fn main() {
    // Pretend this CSV came from the user (here: generated then serialized).
    let original = SynthSpec::new("credit", 300, 4, 3, 2, SynthFamily::Mixed, 21)
        .with_missing(0.05)
        .generate();
    let mut csv_bytes = Vec::new();
    write_csv(&original, &mut csv_bytes).expect("serialize");
    println!(
        "CSV round-trip: {} bytes, first line: {}",
        csv_bytes.len(),
        String::from_utf8_lossy(&csv_bytes).lines().next().unwrap()
    );

    let dataset = read_csv("credit", Cursor::new(csv_bytes)).expect("parse");
    println!(
        "loaded: {} rows, {} attributes ({} numeric, {} categorical), {} classes, {:.1}% missing",
        dataset.n_rows(),
        dataset.n_attrs(),
        dataset.numeric_columns().len(),
        dataset.categorical_columns().len(),
        dataset.n_classes(),
        dataset.missing_rate() * 100.0
    );

    // The 23 task-instance features of Table III.
    println!("\nTable III meta-features:");
    let features = meta_features(&dataset);
    for (name, value) in FEATURE_NAMES.iter().zip(&features) {
        println!("  {name:<36} {value:>10.4}");
    }

    // Solve the CASH problem for it.
    println!("\ntraining the decision model and solving...");
    let corpus = CorpusSpec::small().build();
    let input = DmdInput::synthetic_from_corpus(&corpus, 80, 5);
    let dmd = DmdConfig::fast().run(&input).expect("DMD");
    let solution = UdrConfig::fast().solve(&dmd, &dataset).expect("UDR");
    println!(
        "=> {} with {} (CV accuracy {:.3}, {} evaluations, via {})",
        solution.algorithm, solution.config, solution.score, solution.trials, solution.technique
    );
}
