//! Auto-Model vs Auto-Weka on a handful of CASH problems — a miniature of
//! the paper's Table X experiment.
//!
//! Both solvers get the same evaluation budget per dataset. Auto-Model
//! spends it all on the single algorithm its decision model selects;
//! Auto-Weka spreads it over the full hierarchical algorithm+hyperparameter
//! space. Under small budgets the pruned search usually wins — the paper's
//! central claim.
//!
//! Run: `cargo run --release --example cash_comparison`

use auto_model::hpo::Budget;
use auto_model::prelude::*;

fn main() {
    // Offline: train the decision model once.
    println!("training the decision-making model...");
    let corpus = CorpusSpec::small().build();
    let input = DmdInput::synthetic_from_corpus(&corpus, 80, 5);
    let dmd = DmdConfig::fast().run(&input).expect("DMD");

    // Three user datasets with different winners.
    let tasks = vec![
        SynthSpec::new(
            "blobs",
            220,
            5,
            1,
            3,
            SynthFamily::GaussianBlobs { spread: 0.9 },
            11,
        )
        .generate(),
        SynthSpec::new(
            "rules",
            220,
            0,
            6,
            2,
            SynthFamily::RuleBased { depth: 3 },
            13,
        )
        .generate(),
        SynthSpec::new("ring", 220, 2, 0, 2, SynthFamily::Ring, 17).generate(),
    ];

    let budget = Budget::evals(25);
    println!(
        "\n{:<8} {:>22} {:>8} | {:>22} {:>8}",
        "dataset", "Auto-Model picks", "f(T,D)", "Auto-Weka picks", "f(T,D)"
    );
    let mut am_total = 0.0;
    let mut aw_total = 0.0;
    for data in &tasks {
        let mut udr = UdrConfig::fast();
        udr.tuning_budget = budget.clone();
        let am = udr.solve(&dmd, data).expect("Auto-Model");

        let aw = AutoWekaConfig {
            budget: budget.clone(),
            cv_folds: 3,
            seed: 1,
            ..AutoWekaConfig::fast()
        }
        .solve(&dmd.registry, data)
        .expect("Auto-Weka");

        println!(
            "{:<8} {:>22} {:>8.3} | {:>22} {:>8.3}",
            data.name(),
            am.algorithm,
            am.score,
            aw.algorithm,
            aw.score
        );
        am_total += am.score;
        aw_total += aw.score;
    }
    println!(
        "\naverage f(T,D): Auto-Model {:.3} vs Auto-Weka {:.3} (budget: {} evaluations each)",
        am_total / tasks.len() as f64,
        aw_total / tasks.len() as f64,
        budget.max_evals.unwrap()
    );
}
