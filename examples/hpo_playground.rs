//! The four HPO techniques of §II side by side: Grid Search, Random
//! Search, Genetic Algorithm and Bayesian Optimization, on (a) a standard
//! continuous test function and (b) a real hyperparameter-tuning problem
//! from the registry.
//!
//! Run: `cargo run --release --example hpo_playground`

use auto_model::data::{SynthFamily, SynthSpec};
use auto_model::hpo::testfns::branin;
use auto_model::hpo::{
    BayesianOptimization, Budget, Config, Domain, FnObjective, GeneticAlgorithm, GridSearch,
    Optimizer, RandomSearch, SearchSpace,
};
use auto_model::ml::{cross_val_accuracy, Registry};

fn run_all(space: &SearchSpace, budget: &Budget, mut objective: impl FnMut(&Config) -> f64) {
    let optimizers: Vec<Box<dyn Optimizer>> = vec![
        Box::new(GridSearch::new(8)),
        Box::new(RandomSearch::new(42)),
        Box::new(GeneticAlgorithm::small(42)),
        Box::new(BayesianOptimization::new(42)),
    ];
    for mut optimizer in optimizers {
        let mut obj = FnObjective(&mut objective);
        match optimizer.optimize(space, &mut obj, budget) {
            Some(out) => println!(
                "  {:<22} best = {:>8.4}  (evals: {}, config: {})",
                optimizer.name(),
                out.best_score,
                out.trials.len(),
                out.best_config
            ),
            None => println!("  {:<22} produced no trials", optimizer.name()),
        }
    }
}

fn main() {
    // ---- (a) Branin: the classical BO testbed (minimum ≈ 0.3979).
    println!("Branin (maximizing −branin; optimum ≈ −0.3979), 60 evaluations:");
    let space = SearchSpace::builder()
        .add("x", Domain::float(-5.0, 10.0))
        .add("y", Domain::float(0.0, 15.0))
        .build()
        .unwrap();
    run_all(&space, &Budget::evals(60), |c| {
        -branin(c.float_or("x", 0.0), c.float_or("y", 0.0))
    });

    // ---- (b) Tuning IBk (k-NN) on a noisy dataset: the cheap-evaluation
    // regime where the paper prescribes GA.
    println!("\nTuning IBk on noisy blobs (3-fold CV accuracy), 60 evaluations:");
    let data = SynthSpec::new(
        "tune",
        240,
        4,
        0,
        3,
        SynthFamily::GaussianBlobs { spread: 1.5 },
        3,
    )
    .with_label_noise(0.15)
    .generate();
    let registry = Registry::full();
    let spec = registry.get("IBk").unwrap().clone();
    let space = spec.param_space();
    run_all(&space, &Budget::evals(60), move |c| {
        cross_val_accuracy(|| spec.build(c, 0), &data, 3, 0).unwrap_or(0.0)
    });
}
