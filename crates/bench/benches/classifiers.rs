//! Criterion bench: fit + full-predict throughput of representative
//! registry algorithms on a 300-row mixed dataset. Backs the UDR
//! cheap-vs-expensive evaluation split (the paper's GA/BO rule) with
//! measured per-algorithm costs.

use automodel_data::{SynthFamily, SynthSpec};
use automodel_ml::Registry;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_classifiers(c: &mut Criterion) {
    let data = SynthSpec::new("bench", 300, 5, 2, 3, SynthFamily::Mixed, 7).generate();
    let train: Vec<usize> = (0..240).collect();
    let test: Vec<usize> = (240..300).collect();
    let registry = Registry::full();

    let mut group = c.benchmark_group("classifiers/fit_predict_300rows");
    group.sample_size(10);
    for name in [
        "ZeroR",
        "OneR",
        "NaiveBayes",
        "IBk",
        "J48",
        "REPTree",
        "Logistic",
        "SMO",
        "RandomForest",
        "AdaBoostM1",
        "LogitBoost",
        "BayesNet",
        "VFI",
        "HyperPipes",
    ] {
        let spec = registry.get(name).expect("registered").clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut model = spec.build(&spec.default_config(), 1);
                model.fit(&data, &train).unwrap();
                let mut correct = 0usize;
                for &r in &test {
                    if model.predict(&data, r) == data.label(r) {
                        correct += 1;
                    }
                }
                correct
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
