//! Criterion bench: Table III meta-feature extraction cost (UDR's
//! `O(k·d²)` feature step) across dataset shapes — the online cost every
//! user query pays before `SNA` fires.

use automodel_data::{meta_features, SynthFamily, SynthSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_metafeatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("metafeatures/table3");
    for (label, rows, numeric, categorical, classes) in [
        ("small_108x13", 108usize, 3usize, 10usize, 3usize), // D1's shape
        ("wide_606x101", 606, 100, 1, 2),                    // D9 Hill-Valley
        ("tall_12960x8", 12960, 0, 8, 3),                    // D16 Nursery
        ("big_30000x24", 30000, 14, 10, 2),                  // D20 credit default
    ] {
        let data = SynthSpec::new(
            label,
            rows,
            numeric,
            categorical,
            classes,
            SynthFamily::Mixed,
            11,
        )
        .generate();
        group.bench_function(label, |b| b.iter(|| meta_features(&data)));
    }
    group.finish();
}

criterion_group!(benches, bench_metafeatures);
criterion_main!(benches);
