//! Criterion bench: Algorithm 1 scaling. DMD's complexity analysis in the
//! paper is `O(p² + pm + g)` in the number of experience tuples `p`; this
//! bench measures knowledge acquisition across corpus sizes.

use automodel_knowledge::{knowledge_acquisition, AcquisitionOptions, CorpusSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;

fn corpus(n_instances: usize, n_papers: usize) -> automodel_knowledge::Corpus {
    const ALGOS: [&str; 12] = [
        "RandomForest",
        "J48",
        "NaiveBayes",
        "IBk",
        "Logistic",
        "SMO",
        "REPTree",
        "OneR",
        "BayesNet",
        "ZeroR",
        "LibSVM",
        "PART",
    ];
    let mut rankings = BTreeMap::new();
    for i in 0..n_instances {
        let mut order: Vec<String> = ALGOS.iter().map(|s| s.to_string()).collect();
        order.rotate_left(i % ALGOS.len());
        rankings.insert(format!("ds{i:03}"), order);
    }
    let mut spec = CorpusSpec::new(rankings, 5);
    spec.n_papers = n_papers;
    spec.noise = 0.25;
    spec.build()
}

fn bench_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge/acquisition");
    group.sample_size(10);
    for (instances, papers) in [(10usize, 10usize), (30, 20), (69, 20), (69, 60)] {
        let corpus = corpus(instances, papers);
        let label = format!(
            "{instances}datasets_{papers}papers_{}tuples",
            corpus.experiences.len()
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                knowledge_acquisition(
                    &corpus.experiences,
                    &corpus.papers,
                    &AcquisitionOptions { min_algorithms: 5 },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knowledge);
criterion_main!(benches);
