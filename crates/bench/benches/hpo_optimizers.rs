//! Criterion bench: optimizer overhead and solution quality on standard
//! continuous test functions (fixed 60-evaluation budget). Measures the
//! *analysis* cost the paper discusses in §II — BO's per-iteration surrogate
//! fit vs GA's near-free generation step.

use automodel_hpo::testfns::{branin, rastrigin};
use automodel_hpo::{
    BayesianOptimization, Budget, Domain, FnObjective, GeneticAlgorithm, Optimizer, RandomSearch,
    SearchSpace, SmacLite,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn branin_space() -> SearchSpace {
    SearchSpace::builder()
        .add("x", Domain::float(-5.0, 10.0))
        .add("y", Domain::float(0.0, 15.0))
        .build()
        .unwrap()
}

fn rastrigin_space(dim: usize) -> SearchSpace {
    let mut b = SearchSpace::builder();
    for i in 0..dim {
        b = b.add(&format!("x{i}"), Domain::float(-5.12, 5.12));
    }
    b.build().unwrap()
}

fn branin_obj() -> FnObjective<impl FnMut(&automodel_hpo::Config) -> f64> {
    FnObjective(|cfg: &automodel_hpo::Config| {
        -branin(cfg.float_or("x", 0.0), cfg.float_or("y", 0.0))
    })
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpo/branin_60evals");
    group.sample_size(10);
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut obj = branin_obj();
            RandomSearch::new(1).optimize(&branin_space(), &mut obj, &Budget::evals(60))
        })
    });
    group.bench_function("ga", |b| {
        b.iter(|| {
            let mut obj = branin_obj();
            GeneticAlgorithm::new(1).optimize(&branin_space(), &mut obj, &Budget::evals(60))
        })
    });
    group.bench_function("bo", |b| {
        b.iter(|| {
            let mut obj = branin_obj();
            BayesianOptimization::new(1).optimize(&branin_space(), &mut obj, &Budget::evals(60))
        })
    });
    group.bench_function("smac", |b| {
        b.iter(|| {
            let mut obj = branin_obj();
            SmacLite::new(1).optimize(&branin_space(), &mut obj, &Budget::evals(60))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("hpo/rastrigin4d_ga");
    group.sample_size(10);
    for evals in [100usize, 400] {
        group.bench_function(format!("{evals}evals"), |b| {
            let space = rastrigin_space(4);
            b.iter(|| {
                let mut obj = FnObjective(|cfg: &automodel_hpo::Config| {
                    let x: Vec<f64> = (0..4)
                        .map(|i| cfg.float_or(&format!("x{i}"), 0.0))
                        .collect();
                    -rastrigin(&x)
                });
                GeneticAlgorithm::new(2).optimize(&space, &mut obj, &Budget::evals(evals))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
