//! # automodel-bench
//!
//! Experiment harness for the Auto-Model reproduction: one binary per paper
//! table/figure (see DESIGN.md §4 and EXPERIMENTS.md), plus criterion
//! micro-benchmarks.
//!
//! Binaries (all accept `--scale tiny|small|paper`):
//!
//! * `exp_crelations_quality` — Table VIII (average PORatio of
//!   `CRelations(D)` + top-3 single algorithms), Fig. 3 (PORatio
//!   distribution histogram), Table IX (average `P` + top-3).
//! * `exp_sna_effectiveness` — Tables VI & VII (per-test-dataset `SNA(D)`,
//!   PORatio, `P`, `Pmax`, `Pavg`), Tables XII & XIII (averages + top-3),
//!   with `--ablate-features` / `--ablate-arch` ablations.
//! * `exp_cash_comparison` — Table X (`f(T, D)` for Auto-Model vs Auto-Weka
//!   under a small and a large budget, averaged over repetitions).
//! * `exp_hpo_choice` — the §II GA-vs-BO claim on cheap vs expensive tuning
//!   problems (DESIGN.md ablation).
//! * `exp_knowledge_ablation` — Algorithm 1 vs naive extraction baselines
//!   across corpus noise levels (DESIGN.md ablation).
//! * `exp_parallel_scaling` — GA population evaluation on the shared
//!   executor at 1/2/4/N threads: byte-identical trial histories plus
//!   wall-clock speedup.
//! * `exp_cache_effect` — GA architecture search with cache off vs on:
//!   byte-identical trial histories plus the dedup speedup, recorded into
//!   `BENCH_cache.json`.
//! * `exp_trace_overhead` — structured tracing off vs on: identical trial
//!   histories, byte-identical traces at 1/2/8 threads, and the wall-clock
//!   overhead of tracing (EXPERIMENTS.md targets < 3%).

pub mod pipeline;
pub mod report;
pub mod scale;

pub use pipeline::{KnowledgeBase, PipelineCache};
pub use report::Table;
pub use scale::Scale;

use automodel_trace::Tracer;
use std::sync::Arc;

/// Standard experiment-binary startup: strictly validate every
/// `AUTOMODEL_*` variable (a typo'd knob must abort the experiment, not
/// silently reconfigure it) and build the shared tracer with a progress
/// narrator. Panics with the offending variable's name and value — these
/// are fail-fast binaries, not a library surface.
pub fn tracer_or_die(progress_label: &str) -> Arc<Tracer> {
    if let Err(e) = automodel_parallel::validate_env() {
        panic!("{e}");
    }
    match Tracer::from_env() {
        Ok(tracer) => Arc::new(tracer.with_progress(progress_label)),
        Err(e) => panic!("{e}"),
    }
}

/// A per-process scratch path for intermediate experiment artifacts
/// (store round-trips, checkpoint generations, crash drills). Lives
/// under the system temp directory in a pid-suffixed folder so
/// concurrent bench runs never collide and nothing litters the working
/// directory — deliverables (`BENCH_*.json`, `--out` artifacts) stay in
/// cwd by design. The folder is created on first use; like the rest of
/// the harness this panics on failure rather than limping on.
pub fn scratch_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("automodel-bench-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        panic!("failed to create bench scratch dir {}: {e}", dir.display());
    }
    dir.join(name)
}
