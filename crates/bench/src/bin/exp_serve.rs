//! Serving throughput: warm sessions vs cold sessions on one server.
//!
//! A cold session pays every trial evaluation live; a warm session with
//! an identical context (same dataset, seed, folds, optimizer, fault
//! plan) replays the shared context-keyed trial-cache pool and skips
//! the classifier training entirely. This binary builds a DMD, stands
//! up an in-process [`Server`], drives one cold pass and one warm pass
//! over the same batch of session requests, checks the cache-sharing
//! identity contract (warm history byte-identical to cold, warm hits
//! actually recorded), gates the warm/cold sessions-per-second ratio at
//! ≥ 2× and records the result into `BENCH_serve.json`.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_serve
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::Scale;
use automodel_bench::Table;
use automodel_core::dmd::{DmdConfig, DmdInput};
use automodel_knowledge::corpus::CorpusSpec;
use automodel_parallel::TrialCache;
use automodel_serve::{Server, ServerConfig, SessionResult};
use automodel_trace::TraceEvent;
use std::time::Instant;

/// The gated floor: warm sessions per second over cold sessions per
/// second. Warm sessions replay cached trials instead of training
/// classifiers, so the real ratio is far above this.
const WARM_SPEEDUP_FLOOR: f64 = 2.0;

fn request(id: &str, seed: u64) -> String {
    format!(
        concat!(
            "{{\"id\":\"{}\",\"seed\":{},\"budget\":8,\"folds\":3,",
            "\"algorithm\":\"IBk\",\"dataset\":{{\"synth\":{{\"rows\":240,",
            "\"numeric\":3,\"categorical\":1,\"classes\":2,",
            "\"family\":\"hyperplane\",\"seed\":11}}}}}}"
        ),
        id, seed
    )
}

/// Drive one pass of every request through the server, returning the
/// elapsed seconds and the per-session results (panics on a failed
/// session: the bench's requests are all valid by construction).
fn pass(server: &Server, tag: &str, seeds: &[u64]) -> (f64, Vec<SessionResult>) {
    let start = Instant::now();
    let results: Vec<SessionResult> = seeds
        .iter()
        .enumerate()
        .map(|(i, seed)| server.handle_line(&request(&format!("{tag}-{i}"), *seed)))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    for result in &results {
        assert!(
            result.outcome.is_ok(),
            "bench session failed: {}",
            result.to_line()
        );
    }
    (elapsed, results)
}

/// The identity a session's bytes are compared under: the filtered
/// history plus the raw score bits.
fn identity(result: &SessionResult) -> (Vec<String>, u64) {
    let solution = result.outcome.as_ref().expect("checked by pass()");
    (solution.history.clone(), solution.score.to_bits())
}

fn warm_hits(result: &SessionResult) -> u64 {
    let solution = result.outcome.as_ref().expect("checked by pass()");
    solution.cache_hits + solution.warm_hits
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let tracer = automodel_bench::tracer_or_die("exp_serve");
    tracer.emit(TraceEvent::stage_start(format!("serve ({scale:?})")));

    let sessions = match scale {
        Scale::Tiny => 4,
        Scale::Small => 8,
        Scale::Paper => 16,
    };
    // Distinct seeds: each session is a distinct cache context, so the
    // warm pass exercises the pool lookup per context, not one entry.
    let seeds: Vec<u64> = (0..sessions).map(|i| 9000 + i as u64).collect();

    let corpus = CorpusSpec::small().build();
    let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
    let dmd = DmdConfig::fast().run(&input).expect("dmd build");
    let server = Server::new(dmd, &TrialCache::new(1).snapshot(), ServerConfig::default());

    let (cold_s, cold) = pass(&server, "cold", &seeds);
    let (warm_s, warm) = pass(&server, "warm", &seeds);

    // Cache-sharing identity contract: the warm pass replays the cold
    // pass byte-for-byte and really comes from the shared pools.
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(identity(c), identity(w), "warm session diverged from cold");
        assert!(warm_hits(w) > 0, "warm session never touched its pool");
    }

    let cold_rate = sessions as f64 / cold_s;
    let warm_rate = sessions as f64 / warm_s;
    let speedup = warm_rate / cold_rate;
    assert!(
        speedup >= WARM_SPEEDUP_FLOOR,
        "serve warm-path regression: {speedup:.2}x < {WARM_SPEEDUP_FLOOR}x floor"
    );

    let mut table = Table::new(
        "serve — sessions per second, cold vs warm",
        &["pass", "sessions", "wall s", "sessions/s"],
    );
    table.row(vec![
        "cold".into(),
        sessions.to_string(),
        format!("{cold_s:.3}"),
        format!("{cold_rate:.2}"),
    ]);
    table.row(vec![
        "warm".into(),
        sessions.to_string(),
        format!("{warm_s:.3}"),
        format!("{warm_rate:.2}"),
    ]);
    table.print();

    tracer.emit(TraceEvent::stage_end(
        format!("serve ({scale:?})"),
        format!("warm {speedup:.1}x cold (floor {WARM_SPEEDUP_FLOOR}x)"),
    ));

    let report = serde_json::json!({
        "scale": format!("{scale:?}"),
        "sessions": sessions,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_sessions_per_s": cold_rate,
        "warm_sessions_per_s": warm_rate,
        "warm_speedup": speedup,
        "speedup_floor": WARM_SPEEDUP_FLOOR,
        "identical_history": true,
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    match std::fs::write("BENCH_serve.json", &pretty) {
        Err(e) => tracer.emit(TraceEvent::stage_end(
            "BENCH_serve.json",
            format!("write failed: {e}"),
        )),
        Ok(()) => tracer.emit(TraceEvent::stage_end("BENCH_serve.json", "written")),
    }
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }
    if json {
        println!("{pretty}");
    }
}
