//! Multi-fidelity search: successive halving vs full-fidelity random
//! search at a fixed evaluation-cost budget.
//!
//! A full-fidelity evaluation costs 1 budget unit (all rows, all
//! epochs). A fidelity-`num/den` evaluation costs `num/den` units — the
//! MLP trains on the first `num/den` of the training rows with its epoch
//! count scaled down by the same fraction, so the cost model mirrors the
//! actual work. One successive-halving bracket (η=3, R=27) spends its
//! budget geometrically: 27 trials at 1/27 ≈ 1 unit, 9 at 1/9 ≈ 1 unit,
//! 3 at 1/3 ≈ 1 unit, 1 at full ≈ 1 unit — 40 configurations explored
//! for ~4 units, where full-fidelity random search explores 4. This
//! binary runs both at the same unit budget, asserts the scheduler's
//! byte-identical-history contract at 1/2/8 threads, gates the
//! trials-explored-per-unit ratio at ≥ 1.5× (the observed ratio is ~10×)
//! and records the result into `BENCH_multifidelity.json`.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_multifidelity
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_hpo::{
    Budget, Config, Domain, Executor, Fidelity, OptOutcome, ParamSpec, RandomSearch, SearchSpace,
    SuccessiveHalving,
};
use automodel_nn::{Activation, MlpConfig, MlpRegressor};
use automodel_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The gated floor: configurations explored per budget unit, SHA over
/// full-fidelity random search.
const THROUGHPUT_FLOOR: f64 = 1.5;

/// Cost denominator: every fidelity fraction in the default η=3, R=27
/// bracket has a denominator dividing 27, so costs stay exact integers
/// in units of 1/27.
const COST_DEN: u64 = 27;

fn fingerprint(out: &OptOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in &out.trials {
        let _ = writeln!(s, "{}|{}#{:016x}", t.index, t.config, t.score.to_bits());
    }
    s
}

/// The discrete MLP architecture grid of `exp_cache_effect`, reused here
/// so low-fidelity scores stay informative about full-fidelity ranks.
fn arch_space() -> SearchSpace {
    SearchSpace::new(vec![
        ParamSpec {
            name: "hidden_layers".into(),
            domain: Domain::int(1, 2),
            condition: None,
        },
        ParamSpec {
            name: "hidden_size".into(),
            domain: Domain::cat(&["8", "16", "32"]),
            condition: None,
        },
        ParamSpec {
            name: "activation".into(),
            domain: Domain::cat(&["relu", "tanh", "logistic", "identity"]),
            condition: None,
        },
    ])
    .expect("static space is valid")
}

/// Seeded synthetic regression set: mildly nonlinear, 4 features.
fn regression_data(rows: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(rows);
    let mut ys = Vec::with_capacity(rows);
    for _ in 0..rows {
        let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let noise: f64 = rng.gen_range(-0.05..0.05);
        let y = (1.5 * x[0] - x[1] + 0.5 * x[2] * x[3]).tanh() + noise;
        xs.push(x);
        ys.push(vec![y]);
    }
    (xs, ys)
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let tracer = automodel_bench::tracer_or_die("exp_multifidelity");
    tracer.emit(TraceEvent::stage_start(format!(
        "multifidelity ({scale:?})"
    )));

    let (rows, max_iter) = match scale {
        Scale::Tiny => (96, 30),
        Scale::Small => (160, 40),
        Scale::Paper => (240, 60),
    };
    let (xs, ys) = regression_data(rows, 4051);
    let split = rows * 3 / 4;
    let (train_x, test_x) = xs.split_at(split);
    let (train_y, test_y) = ys.split_at(split);

    let space = arch_space();
    // Fitness = −test MSE of an MLP trained at the trial's fidelity: the
    // first `num/den` training rows (a prefix is trivially nested across
    // rungs) and an epoch count scaled by the same fraction. Spent cost
    // is accumulated in exact 1/27 units; the sum is commutative, so the
    // tally is thread-order-independent.
    let spent = AtomicU64::new(0);
    let objective = |config: &Config, fid: &Fidelity| -> f64 {
        spent.fetch_add(
            fid.num() as u64 * COST_DEN / fid.den() as u64,
            Ordering::Relaxed,
        );
        let n = fid.scale(train_x.len());
        let mlp = MlpConfig {
            hidden_layers: config.int_or("hidden_layers", 1) as usize,
            hidden_size: 8usize << config.cat_or("hidden_size", 0),
            activation: Activation::ALL[config.cat_or("activation", 0)],
            max_iter: fid.scale(max_iter),
            seed: 7,
            ..MlpConfig::default()
        };
        let mut reg = MlpRegressor::new(mlp);
        let report = reg.fit(&train_x[..n], &train_y[..n]);
        if report.diverged {
            return -1.0e9;
        }
        let mse = reg.mse(test_x, test_y);
        if mse.is_finite() {
            -mse
        } else {
            -1.0e9
        }
    };

    // One full bracket: 27 + 9 + 3 + 1 = 40 evaluations.
    let sha_budget = Budget::evals(40);
    let run_sha = |threads: usize| {
        tracer.emit(TraceEvent::stage_start(format!("sha {threads}t")));
        let sha = SuccessiveHalving::new(42);
        let executor = Executor::new(threads);
        let before = spent.load(Ordering::Relaxed);
        let start = Instant::now();
        let out = sha
            .optimize_fidelity_batch(&space, &objective, &sha_budget, &executor)
            .expect("eval budget > 0 always yields an outcome");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let cost = spent.load(Ordering::Relaxed) - before;
        // lint:allow(determinism-taint): wall-clock milliseconds are reported, not gated
        tracer.emit(TraceEvent::stage_end(
            format!("sha {threads}t"),
            format!(
                "{ms:.1} ms, best {:.4}, {} trials for {cost}/{COST_DEN} units",
                out.best_score,
                out.trials.len()
            ),
        ));
        (out, cost, ms)
    };

    let (sha, sha_cost, sha_ms) = run_sha(1);
    let sha_fp = fingerprint(&sha);
    for threads in [2, 8] {
        let (out, cost, _) = run_sha(threads);
        assert_eq!(
            fingerprint(&out),
            sha_fp,
            "multi-fidelity determinism violation: {threads}-thread SHA history diverged"
        );
        assert_eq!(
            cost, sha_cost,
            "{threads}-thread SHA spent a different budget"
        );
    }

    // Full-fidelity random search at the same unit budget: one unit per
    // trial, so it affords floor(sha_cost / 27) configurations.
    let random_trials = (sha_cost / COST_DEN).max(1);
    tracer.emit(TraceEvent::stage_start("random full-fidelity"));
    let full_objective = |config: &Config| objective(config, &Fidelity::full());
    let random = RandomSearch::new(42);
    let executor = Executor::new(1);
    let random_before = spent.load(Ordering::Relaxed);
    let random_start = Instant::now();
    let random_out = random
        .optimize_batch(
            &space,
            &full_objective,
            &Budget::evals(random_trials as usize),
            &executor,
        )
        .expect("eval budget > 0 always yields an outcome");
    let random_ms = random_start.elapsed().as_secs_f64() * 1e3;
    let random_cost = spent.load(Ordering::Relaxed) - random_before;
    // lint:allow(determinism-taint): wall-clock milliseconds are reported, not gated
    tracer.emit(TraceEvent::stage_end(
        "random full-fidelity",
        format!(
            "{random_ms:.1} ms, best {:.4}, {} trials for {random_cost}/{COST_DEN} units",
            random_out.best_score,
            random_out.trials.len()
        ),
    ));

    // Trials explored per budget unit, both searches at the same spend.
    let sha_throughput = sha.trials.len() as f64 / (sha_cost as f64 / COST_DEN as f64);
    let random_throughput = random_out.trials.len() as f64 / (random_cost as f64 / COST_DEN as f64);
    let throughput_ratio = sha_throughput / random_throughput;
    assert!(
        throughput_ratio >= THROUGHPUT_FLOOR,
        "multi-fidelity throughput regression: {throughput_ratio:.2}x < {THROUGHPUT_FLOOR}x floor"
    );

    let mut table = Table::new(
        "MLP architecture search — trials explored at a fixed budget",
        &[
            "search",
            "trials",
            "budget units",
            "trials/unit",
            "best",
            "wall ms",
        ],
    );
    table.row(vec![
        "successive-halving".into(),
        sha.trials.len().to_string(),
        format!("{:.2}", sha_cost as f64 / COST_DEN as f64),
        format!("{sha_throughput:.2}"),
        format!("{:.4}", sha.best_score),
        format!("{sha_ms:.1}"),
    ]);
    table.row(vec![
        "random (full fidelity)".into(),
        random_out.trials.len().to_string(),
        format!("{:.2}", random_cost as f64 / COST_DEN as f64),
        format!("{random_throughput:.2}"),
        format!("{:.4}", random_out.best_score),
        format!("{random_ms:.1}"),
    ]);
    table.print();

    // lint:allow(determinism-taint): wall-clock milliseconds are reported, not gated
    tracer.emit(TraceEvent::stage_end(
        format!("multifidelity ({scale:?})"),
        format!(
            "throughput {throughput_ratio:.2}x (floor {THROUGHPUT_FLOOR}x), sha best {:.4} vs random best {:.4}",
            sha.best_score, random_out.best_score
        ),
    ));

    let report = serde_json::json!({
        "scale": format!("{scale:?}"),
        "sha_trials": sha.trials.len(),
        "sha_budget_units": sha_cost as f64 / COST_DEN as f64,
        "sha_best": sha.best_score,
        "sha_ms": sha_ms,
        "random_trials": random_out.trials.len(),
        "random_budget_units": random_cost as f64 / COST_DEN as f64,
        "random_best": random_out.best_score,
        "random_ms": random_ms,
        "throughput_ratio": throughput_ratio,
        "throughput_floor": THROUGHPUT_FLOOR,
        "identical_history": true,
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    match std::fs::write("BENCH_multifidelity.json", &pretty) {
        Err(e) => tracer.emit(TraceEvent::stage_end(
            "BENCH_multifidelity.json",
            format!("write failed: {e}"),
        )),
        Ok(()) => tracer.emit(TraceEvent::stage_end("BENCH_multifidelity.json", "written")),
    }
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }
    if json {
        println!("{pretty}");
    }
}
