//! Checkpoint-overhead measurement: the durability tax of crash-safe
//! runs.
//!
//! One GA run per configuration, identical seed and budget, over a real
//! objective (J48 cross-validation accuracy on a synthetic dataset):
//!
//! * **baseline** — no checkpoint sink (the default everywhere);
//! * **checkpointed** — a [`Checkpointer`] writing a rotated, digest-
//!   verified `AMSTORE` generation file at every batch boundary, exactly
//!   what `dmd build --checkpoint` wires up.
//!
//! The crash-safety contract says periodic checkpointing must not change
//! results and must cost almost nothing: this binary asserts the trial
//! fingerprints are byte-identical, asserts every checkpoint write
//! succeeded, and records the wall-clock overhead into
//! `BENCH_checkpoint.json` (EXPERIMENTS.md floor: < 5%, gated by
//! `scripts/check.sh`). Checkpoint generations go to the bench scratch
//! directory, not cwd.
//!
//! Run: `cargo run --release -p automodel-bench --bin
//! exp_checkpoint_overhead [--scale tiny|small|paper] [--json]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_data::{SynthFamily, SynthSpec};
use automodel_hpo::{
    Budget, Config, Executor, GaConfig, GeneticAlgorithm, OptOutcome, OptimizerBuilder, TrialCache,
};
use automodel_ml::{cross_val_accuracy, Registry};
use automodel_store::Checkpointer;
use automodel_trace::TraceEvent;
use std::sync::Arc;
use std::time::Instant;

fn fingerprint(out: &OptOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in &out.trials {
        let _ = writeln!(s, "{}|{}#{:016x}", t.index, t.config, t.score.to_bits());
    }
    s
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let tracer = automodel_bench::tracer_or_die("exp_checkpoint_overhead");

    let (rows, evals, reps) = match scale {
        Scale::Tiny => (200, 60, 3),
        Scale::Small => (400, 200, 3),
        Scale::Paper => (1000, 600, 5),
    };
    let data = SynthSpec::new(
        "checkpoint",
        rows,
        5,
        1,
        3,
        SynthFamily::GaussianBlobs { spread: 0.9 },
        91,
    )
    .generate();

    let registry = Registry::fast();
    let spec = registry.get("J48").expect("fast registry carries J48");
    let space = spec.param_space();
    let objective =
        |config: &Config| cross_val_accuracy(|| spec.build(config, 7), &data, 5, 7).unwrap_or(0.0);
    let ga_config = GaConfig {
        population: 16,
        generations: 1000, // bounded by the eval budget
        ..GaConfig::default()
    };
    let budget = Budget::evals(evals);

    // Best-of-`reps` wall clock on a serial executor, so the measurement
    // is durability cost, not scheduler noise. Cache disabled: a shared
    // cache would make every repeat a free replay and hide the real
    // per-batch work the checkpoint piggybacks on. A fresh Checkpointer
    // (fresh generation base) per repetition keeps every rep's write
    // pattern identical.
    let executor = Executor::new(1);
    let timed = |make_sink: &dyn Fn(usize) -> Option<Arc<Checkpointer>>| {
        let mut best_ms = f64::INFINITY;
        let mut out = None;
        let mut written = 0u64;
        for rep in 0..reps {
            let mut ga = GeneticAlgorithm::with_config(42, ga_config.clone())
                .with_cache(Arc::new(TrialCache::disabled()));
            let sink = make_sink(rep);
            if let Some(ck) = &sink {
                ga = ga.with_checkpoint(Arc::clone(ck) as _);
            }
            let start = Instant::now();
            let run = ga
                .optimize_batch(&space, &objective, &budget, &executor)
                .expect("eval budget > 0 always yields an outcome");
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            if let Some(ck) = &sink {
                assert!(
                    ck.last_error().is_none(),
                    "checkpoint write failed during overhead run: {:?}",
                    ck.last_error()
                );
                written = ck.written();
            }
            out = Some(run);
        }
        (out.expect("reps >= 1"), best_ms, written)
    };

    tracer.emit(TraceEvent::stage_start("overhead"));
    let (base, base_ms, _) = timed(&|_| None);
    let (ck, ck_ms, written) = timed(&|rep| {
        Some(Arc::new(Checkpointer::new(automodel_bench::scratch_path(
            &format!("exp_checkpoint_r{rep}.ckpt"),
        ))))
    });
    let overhead = (ck_ms - base_ms) / base_ms.max(1e-9) * 100.0;
    let identical = fingerprint(&base) == fingerprint(&ck);
    assert!(
        identical,
        "checkpointing changed the trial history (checkpointed must equal baseline)"
    );
    assert!(written > 0, "the checkpointed run must actually checkpoint");
    tracer.emit(TraceEvent::stage_end(
        "overhead",
        format!(
            "baseline {base_ms:.1} ms, checkpointed {ck_ms:.1} ms ({written} write(s)), \
             overhead {overhead:+.2}%"
        ),
    ));

    let mut table = Table::new(
        "Crash-safe checkpointing — overhead",
        &[
            "mode",
            "wall ms",
            "overhead %",
            "ckpt writes",
            "best",
            "trials",
        ],
    );
    table.row(vec![
        "baseline".into(),
        format!("{base_ms:.1}"),
        "-".into(),
        "0".into(),
        format!("{:.4}", base.best_score),
        base.trials.len().to_string(),
    ]);
    table.row(vec![
        "checkpointed".into(),
        format!("{ck_ms:.1}"),
        format!("{overhead:+.2}"),
        written.to_string(),
        format!("{:.4}", ck.best_score),
        ck.trials.len().to_string(),
    ]);
    table.print();

    let report = serde_json::json!({
        "scale": format!("{scale:?}"),
        "evals": evals,
        "baseline_ms": base_ms,
        "checkpoint_ms": ck_ms,
        "overhead_pct": overhead,
        "checkpoints_written": written,
        "identical_history": identical,
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    match std::fs::write("BENCH_checkpoint.json", &pretty) {
        Err(e) => tracer.emit(TraceEvent::stage_end(
            "BENCH_checkpoint.json",
            format!("write failed: {e}"),
        )),
        Ok(()) => tracer.emit(TraceEvent::stage_end("BENCH_checkpoint.json", "written")),
    }
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }
    if json {
        println!("{pretty}");
    }
}
