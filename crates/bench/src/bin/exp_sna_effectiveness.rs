//! Tables VI, VII, XII and XIII: effectiveness of the decision model `SNA`.
//!
//! For each Table XI test dataset `D`: the selected algorithm `SNA(D)`,
//! `PORatio(SNA, D)`, `P(SNA(D), D)`, `Pmax(D)` and `Pavg(D)` (Tables VI &
//! VII), then the averages and top-3 single algorithms over the test suite
//! (Tables XII & XIII).
//!
//! Ablations (DESIGN.md §8):
//! * `--ablate-features` — replace the Algorithm 2 mask with all 23 features;
//! * `--ablate-arch` — replace the Algorithm 3 architecture with the default
//!   MLP point.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_sna_effectiveness
//! [--scale tiny|small|paper] [--ablate-features] [--ablate-arch] [--json]`

use automodel_bench::report::{top_k, Table};
use automodel_bench::{PipelineCache, Scale};
use automodel_core::poratio::{po_ratio, EvalContext};
use automodel_ml::Registry;
use automodel_trace::TraceEvent;
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let ablate_features = std::env::args().any(|a| a == "--ablate-features");
    let ablate_arch = std::env::args().any(|a| a == "--ablate-arch");
    let tracer = automodel_bench::tracer_or_die("exp_sna_effectiveness");

    let pipeline = PipelineCache::new(Registry::full(), scale).with_tracer(Arc::clone(&tracer));
    tracer.emit(TraceEvent::stage_start("knowledge base"));
    let kb = pipeline.build_knowledge_base();
    tracer.emit(TraceEvent::stage_end(
        "knowledge base",
        format!(
            "{} dataset(s), ablate_features = {ablate_features}, ablate_arch = {ablate_arch}",
            kb.datasets.len()
        ),
    ));
    let dmd = if ablate_features || ablate_arch {
        // Ablations replace a searched component with its trivial default:
        // all 23 features (no Algorithm 2) / the default MLP point
        // (no Algorithm 3).
        let input = automodel_core::dmd::DmdInput {
            experiences: kb.corpus.experiences.clone(),
            papers: kb.corpus.papers.clone(),
            datasets: kb.datasets.clone(),
        };
        let (fs_pop, fs_gen, arch_pop, arch_gen) = scale.dmd_scale();
        let config = automodel_core::dmd::DmdConfig {
            registry: pipeline.ctx.registry.clone(),
            min_algorithms: 3,
            fs_population: fs_pop,
            fs_generations: fs_gen,
            arch_population: arch_pop,
            arch_generations: arch_gen,
            precision: 0.0015,
            meta_cv_folds: 3,
            mlp_iter_cap: 200,
            feature_mask_override: ablate_features.then_some([true; 23]),
            architecture_override: ablate_arch.then(automodel_core::table2::default_mlp_point),
            seed: 17,
            tracer: Arc::clone(&tracer),
            cache: Arc::new(automodel_parallel::TrialCache::from_env_or_disabled()),
            checkpoint: None,
        };
        config.run(&input).expect("ablated DMD")
    } else {
        pipeline.run_dmd(&kb).expect("DMD must produce a model")
    };

    tracer.emit(TraceEvent::stage_start("test sweeps"));
    let suite = pipeline.test_suite();
    let mut rows = Vec::new();
    let mut sweeps: BTreeMap<String, Vec<(String, Option<f64>)>> = BTreeMap::new();
    for (symbol, data) in &suite {
        let sweep = pipeline.sweep(data);
        sweeps.insert(symbol.clone(), sweep);
    }
    tracer.emit(TraceEvent::stage_end(
        "test sweeps",
        format!("{} test dataset(s)", suite.len()),
    ));

    tracer.emit(TraceEvent::stage_start("score SNA"));
    let mut t67 = Table::new(
        "Tables VI & VII — SNA effectiveness per test dataset",
        &["D", "SNA(D)", "PORatio", "P(SNA,D)", "Pmax", "Pavg"],
    );
    let mut ratios = Vec::new();
    let mut sel_perfs = Vec::new();
    let mut beats_avg = 0usize;
    for (symbol, data) in &suite {
        let sweep = &sweeps[symbol];
        let selected = match dmd.select_algorithm(data) {
            Ok(s) => s,
            Err(e) => {
                tracer.emit(TraceEvent::stage_end(
                    format!("select {symbol}"),
                    format!("failed: {e}"),
                ));
                continue;
            }
        };
        let ratio = po_ratio(sweep, &selected);
        let p_sel = sweep
            .iter()
            .find(|(n, _)| n == &selected)
            .and_then(|(_, p)| *p);
        let p_max = EvalContext::p_max(sweep);
        let p_avg = EvalContext::p_avg(sweep);
        if let Some(r) = ratio {
            ratios.push(r);
        }
        if let Some(p) = p_sel {
            sel_perfs.push(p);
            if p_avg.is_some_and(|a| p >= a) {
                beats_avg += 1;
            }
        }
        t67.row(vec![
            symbol.clone(),
            selected.clone(),
            ratio.map_or("-".into(), |r| format!("{r:.2}")),
            p_sel.map_or("-".into(), |p| format!("{p:.2}")),
            p_max.map_or("-".into(), |p| format!("{p:.2}")),
            p_avg.map_or("-".into(), |p| format!("{p:.2}")),
        ]);
        rows.push((symbol.clone(), selected, ratio, p_sel, p_max, p_avg));
    }
    tracer.emit(TraceEvent::stage_end(
        "score SNA",
        format!("{} selection(s) scored", rows.len()),
    ));
    t67.print();

    // Tables XII & XIII: averages + top-3 single algorithms on the suite.
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut by_alg_ratio: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut by_alg_perf: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for sweep in sweeps.values() {
        for (name, p) in sweep {
            if let Some(p) = p {
                if let Some(r) = po_ratio(sweep, name) {
                    by_alg_ratio.entry(name.clone()).or_default().push(r);
                }
                by_alg_perf.entry(name.clone()).or_default().push(*p);
            }
        }
    }
    // Only rank algorithms measurable on most of the suite: an algorithm
    // applicable on one easy dataset would otherwise "win" with a perfect
    // average (e.g. Id3 on the single all-nominal dataset).
    let min_coverage = (sweeps.len() * 4).div_ceil(5);
    let alg_ratios: Vec<(String, f64)> = by_alg_ratio
        .iter()
        .filter(|(_, v)| v.len() >= min_coverage)
        .map(|(n, v)| (n.clone(), avg(v)))
        .collect();
    let alg_perfs: Vec<(String, f64)> = by_alg_perf
        .iter()
        .filter(|(_, v)| v.len() >= min_coverage)
        .map(|(n, v)| (n.clone(), avg(v)))
        .collect();

    let mut t12 = Table::new(
        "Table XII — average PORatio over the test suite",
        &["entry", "avg PORatio"],
    );
    t12.row(vec!["SNA".into(), format!("{:.2}", avg(&ratios))]);
    for (i, (name, r)) in top_k(&alg_ratios, 3).into_iter().enumerate() {
        t12.row(vec![format!("Top{}-{}", i + 1, name), format!("{r:.2}")]);
    }
    t12.print();

    let mut t13 = Table::new(
        "Table XIII — average performance P over the test suite",
        &["entry", "avg P"],
    );
    t13.row(vec!["SNA(D)".into(), format!("{:.2}", avg(&sel_perfs))]);
    for (i, (name, p)) in top_k(&alg_perfs, 3).into_iter().enumerate() {
        t13.row(vec![format!("Top{}-{}", i + 1, name), format!("{p:.2}")]);
    }
    t13.print();

    println!(
        "key features selected: {} of 23; P(SNA,D) >= Pavg on {}/{} datasets",
        dmd.n_key_features(),
        beats_avg,
        rows.len()
    );
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }

    if json {
        let out = serde_json::json!({
            "scale": format!("{scale:?}"),
            "ablate_features": ablate_features,
            "ablate_arch": ablate_arch,
            "tables67": t67.to_json(),
            "table12": t12.to_json(),
            "table13": t13.to_json(),
            "key_features": dmd.n_key_features(),
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    }
}
