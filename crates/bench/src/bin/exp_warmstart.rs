//! Warm-start effect: GA architecture search cold vs warm-started from a
//! persisted artifact, with the identity contract checked at 1/2/8
//! threads.
//!
//! The `dmd build` / `dmd load` split only pays off if a warm-started
//! rebuild (a) reproduces the cold run's trial history byte for byte and
//! (b) is substantially faster. This experiment measures both on the
//! `exp_cache_effect` workload — a GA over a 24-point architecture grid
//! whose fitness trains a real `MlpRegressor`:
//!
//! 1. run cold (fresh cache), fingerprint the trial history;
//! 2. snapshot the cache and round-trip it through a real `AMSTORE`
//!    artifact file (write, digest-verify, read back) — the exact bytes
//!    `dmd build` persists;
//! 3. run warm-started from the restored snapshot at 1, 2 and 8 threads,
//!    asserting every history is byte-identical to the cold run;
//! 4. record the wall-clock speedup into `BENCH_warmstart.json`
//!    (EXPERIMENTS.md floor: ≥ 1.5×).
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_warmstart
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_hpo::OptimizerBuilder;
use automodel_hpo::{
    Budget, CacheSnapshot, Config, Domain, Executor, GaConfig, GeneticAlgorithm, OptOutcome,
    ParamSpec, SearchSpace, TrialCache,
};
use automodel_nn::{Activation, MlpConfig, MlpRegressor};
use automodel_store::{StoreReader, StoreWriter};
use automodel_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn fingerprint(out: &OptOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in &out.trials {
        let _ = writeln!(s, "{}|{}#{:016x}", t.index, t.config, t.score.to_bits());
    }
    s
}

/// The discrete architecture grid shared with `exp_cache_effect`:
/// 2 depths × 3 widths × 4 activations = 24 distinct genomes.
fn arch_space() -> SearchSpace {
    SearchSpace::new(vec![
        ParamSpec {
            name: "hidden_layers".into(),
            domain: Domain::int(1, 2),
            condition: None,
        },
        ParamSpec {
            name: "hidden_size".into(),
            domain: Domain::cat(&["8", "16", "32"]),
            condition: None,
        },
        ParamSpec {
            name: "activation".into(),
            domain: Domain::cat(&["relu", "tanh", "logistic", "identity"]),
            condition: None,
        },
    ])
    .expect("static space is valid")
}

/// Seeded synthetic regression set: mildly nonlinear, 4 features.
fn regression_data(rows: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(rows);
    let mut ys = Vec::with_capacity(rows);
    for _ in 0..rows {
        let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let noise: f64 = rng.gen_range(-0.05..0.05);
        let y = (1.5 * x[0] - x[1] + 0.5 * x[2] * x[3]).tanh() + noise;
        xs.push(x);
        ys.push(vec![y]);
    }
    (xs, ys)
}

/// Round-trip a cache snapshot through a real artifact file: the bytes on
/// disk are a minimal `AMSTORE` container holding just the `TCHS`
/// section, written, reopened, digest-verified and decoded — so the
/// warm runs below are seeded from *persisted* state, not from memory.
fn persist_and_restore(snapshot: &CacheSnapshot, path: &std::path::Path) -> CacheSnapshot {
    let mut writer = StoreWriter::new();
    writer
        .section(
            automodel_store::TAG_TRIAL_CACHE,
            automodel_store::artifact::encode_cache_snapshot(snapshot),
        )
        .expect("single section cannot duplicate");
    writer.write_to(path).expect("artifact write");
    let reader = StoreReader::open(path).expect("artifact reopen");
    reader.verify_all().expect("artifact digests");
    automodel_store::artifact::decode_cache_snapshot(
        reader
            .section(automodel_store::TAG_TRIAL_CACHE)
            .expect("TCHS section"),
    )
    .expect("TCHS decode")
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let tracer = automodel_bench::tracer_or_die("exp_warmstart");
    tracer.emit(TraceEvent::stage_start(format!("warm start ({scale:?})")));

    let (rows, evals, max_iter) = match scale {
        Scale::Tiny => (96, 120, 30),
        Scale::Small => (160, 240, 40),
        Scale::Paper => (240, 720, 60),
    };
    let (xs, ys) = regression_data(rows, 4051);
    let split = rows * 3 / 4;
    let (train_x, test_x) = xs.split_at(split);
    let (train_y, test_y) = ys.split_at(split);

    let space = arch_space();
    let objective = |config: &Config| {
        let mlp = MlpConfig {
            hidden_layers: config.int_or("hidden_layers", 1) as usize,
            hidden_size: 8usize << config.cat_or("hidden_size", 0),
            activation: Activation::ALL[config.cat_or("activation", 0)],
            max_iter,
            seed: 7,
            ..MlpConfig::default()
        };
        let mut reg = MlpRegressor::new(mlp);
        let report = reg.fit(train_x, train_y);
        if report.diverged {
            return -1.0e9;
        }
        let mse = reg.mse(test_x, test_y);
        if mse.is_finite() {
            -mse
        } else {
            -1.0e9
        }
    };

    let ga_config = GaConfig {
        population: 16,
        generations: 1000, // bounded by the eval budget
        ..GaConfig::default()
    };
    let budget = Budget::evals(evals);

    let run = |label: &str, threads: usize, cache: Arc<TrialCache>| {
        tracer.emit(TraceEvent::stage_start(format!("run {label}")));
        let executor = Executor::new(threads);
        let ga = GeneticAlgorithm::with_config(42, ga_config.clone())
            .with_cache(Arc::clone(&cache))
            .with_tracer(Arc::clone(&tracer));
        let start = Instant::now();
        let out = ga
            .optimize_batch(&space, &objective, &budget, &executor)
            .expect("eval budget > 0 always yields an outcome");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        tracer.emit(TraceEvent::stage_end(
            format!("run {label}"),
            format!(
                "{ms:.1} ms, best {:.4}, {} warm of {} hit(s)",
                out.best_score, out.cache.warm_hits, out.cache.hits
            ),
        ));
        (out, ms)
    };

    // 1. Cold run, cache accumulating from nothing.
    let cold_cache = Arc::new(TrialCache::default());
    let (cold, cold_ms) = run("cold", 1, Arc::clone(&cold_cache));
    let cold_fp = fingerprint(&cold);

    // 2. Persist the snapshot through a real artifact file.
    let path = automodel_bench::scratch_path("exp_warmstart.store");
    let snapshot = cold_cache.snapshot();
    let restored = persist_and_restore(&snapshot, &path);
    let artifact_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let _ = std::fs::remove_file(&path);
    tracer.emit(TraceEvent::ArtifactLoad {
        path: path.display().to_string(),
        sections: 1,
        bytes: artifact_bytes,
    });

    // 3. Warm runs at 1/2/8 threads — byte-identical histories required.
    let mut warm_ms_by_threads = Vec::new();
    let mut warm_stats = None;
    for threads in [1usize, 2, 8] {
        let cache = Arc::new(TrialCache::default());
        assert_eq!(
            cache.restore(&restored),
            snapshot.len(),
            "restore dropped persisted entries"
        );
        let (warm, ms) = run(&format!("warm x{threads}"), threads, cache);
        assert_eq!(
            fingerprint(&warm),
            cold_fp,
            "warm-start identity violation: {threads}-thread history diverged from cold"
        );
        assert!(
            warm.cache.warm_hits > 0,
            "warm run never hit a restored entry"
        );
        warm_ms_by_threads.push((threads, ms));
        if threads == 1 {
            warm_stats = Some(warm.cache);
        }
    }
    let warm_ms = warm_ms_by_threads[0].1;
    let warm = warm_stats.expect("1-thread warm run recorded");

    let speedup = cold_ms / warm_ms.max(1e-9);
    // lint:allow(determinism-taint): wall-clock speedup is the quantity this experiment reports
    tracer.emit(TraceEvent::stage_end(
        format!("warm start ({scale:?})"),
        format!(
            "speedup {speedup:.2}x, {} restored, {} warm hit(s)",
            warm.restored, warm.warm_hits
        ),
    ));

    let mut table = Table::new(
        "GA architecture search — persisted warm start",
        &[
            "run",
            "threads",
            "wall ms",
            "warm hits",
            "hits",
            "identical",
        ],
    );
    table.row(vec![
        "cold".into(),
        "1".into(),
        format!("{cold_ms:.1}"),
        "0".into(),
        cold.cache.hits.to_string(),
        "-".into(),
    ]);
    for (threads, ms) in &warm_ms_by_threads {
        table.row(vec![
            "warm".into(),
            threads.to_string(),
            format!("{ms:.1}"),
            warm.warm_hits.to_string(),
            warm.hits.to_string(),
            "yes".into(),
        ]);
    }
    table.print();

    let report = serde_json::json!({
        "scale": format!("{scale:?}"),
        "evals": evals,
        "snapshot_entries": snapshot.len(),
        "artifact_bytes": artifact_bytes,
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "speedup": speedup,
        "warm_hits": warm.warm_hits,
        "restored": warm.restored,
        "identical_history": true,
        "thread_counts_checked": [1, 2, 8],
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    match std::fs::write("BENCH_warmstart.json", &pretty) {
        Err(e) => tracer.emit(TraceEvent::stage_end(
            "BENCH_warmstart.json",
            format!("write failed: {e}"),
        )),
        Ok(()) => tracer.emit(TraceEvent::stage_end("BENCH_warmstart.json", "written")),
    }
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }
    if json {
        println!("{pretty}");
    }
}
