//! Table X: Auto-Model vs Auto-Weka on the CASH-Weka problem.
//!
//! For each Table XI test dataset and each of two **wall-clock** budgets
//! (the paper's 30 s and 5 min, scaled but keeping the 1:10 ratio), run
//! both CASH solvers `repetitions` times and report the average `f(T, D)`
//! — the CV accuracy of the returned (algorithm, hyperparameter) solution,
//! re-measured with an independent fold seed. Wall-clock budgets matter:
//! the paper's mechanism is Auto-Weka *wasting time* on expensive
//! inappropriate algorithms, which only shows up under time accounting.
//! Cells where a method cannot finish (the paper's `-1` entries for
//! D17/D20 at 5 min) would appear as `-1`.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_cash_comparison
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::report::{fmt_score, Table};
use automodel_bench::{PipelineCache, Scale};
use automodel_core::udr::UdrConfig;
use automodel_core::AutoWekaConfig;
use automodel_hpo::Budget;
use automodel_ml::{cross_val_accuracy, Registry};
use automodel_trace::TraceEvent;
use std::sync::Arc;
use std::time::Duration;

/// Re-measure a solution with an independent fold seed (the paper's f(T,D)).
fn f_t_d(
    registry: &Registry,
    solution: &automodel_core::udr::Solution,
    data: &automodel_data::Dataset,
    folds: usize,
) -> Option<f64> {
    let spec = registry.get(&solution.algorithm)?;
    cross_val_accuracy(|| spec.build(&solution.config, 4242), data, folds, 4242).ok()
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let tracer = automodel_bench::tracer_or_die("exp_cash_comparison");

    let pipeline = PipelineCache::new(Registry::full(), scale).with_tracer(Arc::clone(&tracer));
    tracer.emit(TraceEvent::stage_start("knowledge base"));
    let kb = pipeline.build_knowledge_base();
    tracer.emit(TraceEvent::stage_end(
        "knowledge base",
        format!("{} dataset(s)", kb.datasets.len()),
    ));
    let dmd = pipeline.run_dmd(&kb).expect("DMD must produce a model");

    tracer.emit(TraceEvent::stage_start("CASH comparison"));
    let suite = pipeline.test_suite();
    let (small_budget, large_budget) = scale.cash_budgets();
    let reps = scale.repetitions();
    let folds = scale.cash_folds();

    let budget_label = |b: &Budget| match (b.max_time, b.max_evals) {
        (Some(t), _) => format!("{} ms", t.as_millis()),
        (None, Some(n)) => format!("{n} evals"),
        _ => "unbounded".to_string(),
    };
    let mut table = Table::new(
        "Table X — average f(T, D), Auto-Model vs Auto-Weka",
        &["budget", "method", "dataset", "f(T,D)", "algorithm"],
    );
    let mut summary: Vec<(String, String, f64, usize)> = Vec::new(); // (budget, method, sum, wins)

    let executor = automodel_hpo::Executor::new(scale.threads());
    for (budget_name, budget) in [("small", &small_budget), ("large", &large_budget)] {
        // One independent cell per dataset — fan them out on the executor;
        // every solver call is seeded per-cell, so results are identical at
        // any thread count.
        let registry = &pipeline.ctx.registry;
        let dmd_ref = &dmd;
        let suite_ref = &suite;
        // (am_avg, aw_avg, am_alg, aw_alg, quarantined, cache_hits, cache_misses)
        let cells: Vec<(f64, f64, String, String, usize, u64, u64)> =
            executor.map(suite.len(), |idx| {
                let (symbol, data) = &suite_ref[idx];
                let mut am_avg = 0.0;
                let mut aw_avg = 0.0;
                let mut am_alg = String::new();
                let mut aw_alg = String::new();
                let mut quarantined = 0usize;
                let mut cache_hits = 0u64;
                let mut cache_misses = 0u64;
                for rep in 0..reps {
                    // Auto-Model: UDR with the given tuning budget.
                    let udr = UdrConfig {
                        tuning_budget: budget.clone(),
                        eval_time_threshold: Duration::from_millis(400),
                        cv_folds: folds,
                        seed: 1000 + rep as u64,
                        ..UdrConfig::fast()
                    };
                    if let Ok(am) = udr.solve(dmd_ref, data) {
                        am_avg += f_t_d(registry, &am, data, folds).unwrap_or(0.0);
                        am_alg = am.algorithm;
                        quarantined += am.quarantined;
                        cache_hits += am.cache_hits;
                        cache_misses += am.cache_misses;
                    }
                    // Auto-Weka: SMAC over the hierarchical CASH space.
                    let aw = AutoWekaConfig {
                        budget: budget.clone(),
                        cv_folds: folds,
                        seed: 2000 + rep as u64,
                        ..AutoWekaConfig::fast()
                    }
                    .solve(registry, data);
                    if let Ok(aw) = aw {
                        aw_avg += f_t_d(registry, &aw, data, folds).unwrap_or(0.0);
                        aw_alg = aw.algorithm;
                        quarantined += aw.quarantined;
                        cache_hits += aw.cache_hits;
                        cache_misses += aw.cache_misses;
                    }
                }
                am_avg /= reps as f64;
                aw_avg /= reps as f64;
                // Cells complete in scheduling order, so these narration
                // events interleave under a multi-threaded executor.
                tracer.emit(TraceEvent::stage_end(
                    format!("[{budget_name}] {symbol}"),
                    format!(
                        "AM {am_avg:.3} vs AW {aw_avg:.3} \
                         ({quarantined} config(s) quarantined, \
                         cache {cache_hits} hit(s) / {cache_misses} miss(es))"
                    ),
                ));
                (
                    am_avg,
                    aw_avg,
                    am_alg,
                    aw_alg,
                    quarantined,
                    cache_hits,
                    cache_misses,
                )
            });

        let mut am_scores = Vec::new();
        let mut aw_scores = Vec::new();
        let mut am_wins = 0usize;
        let mut total_quarantined = 0usize;
        let mut total_hits = 0u64;
        let mut total_misses = 0u64;
        for (idx, (am_avg, aw_avg, am_alg, aw_alg, quarantined, hits, misses)) in
            cells.into_iter().enumerate()
        {
            let symbol = &suite[idx].0;
            table.row(vec![
                budget_label(budget),
                "Auto-Model".into(),
                symbol.clone(),
                fmt_score(Some(am_avg)),
                am_alg,
            ]);
            table.row(vec![
                budget_label(budget),
                "Auto-Weka".into(),
                symbol.clone(),
                fmt_score(Some(aw_avg)),
                aw_alg,
            ]);
            am_scores.push(am_avg);
            aw_scores.push(aw_avg);
            total_quarantined += quarantined;
            total_hits += hits;
            total_misses += misses;
            if am_avg >= aw_avg {
                am_wins += 1;
            }
        }
        let lookups = total_hits + total_misses;
        let cache_note = if lookups > 0 {
            format!(
                "cache {total_hits} hit(s) / {total_misses} miss(es) ({:.1}% hit rate)",
                100.0 * total_hits as f64 / lookups as f64
            )
        } else {
            "cache disabled (AUTOMODEL_CACHE=0)".to_string()
        };
        tracer.emit(TraceEvent::stage_end(
            format!("[{budget_name}] suite"),
            format!("{total_quarantined} config(s) quarantined, {cache_note}"),
        ));
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        summary.push((
            budget_label(budget),
            "Auto-Model".into(),
            avg(&am_scores),
            am_wins,
        ));
        summary.push((
            budget_label(budget),
            "Auto-Weka".into(),
            avg(&aw_scores),
            suite.len() - am_wins,
        ));
    }
    tracer.emit(TraceEvent::stage_end(
        "CASH comparison",
        format!("{} dataset(s) x 2 budget(s)", suite.len()),
    ));
    table.print();
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }

    let mut sum_table = Table::new(
        "Table X summary — averages over the suite",
        &["budget", "method", "avg f(T,D)", "wins-or-ties"],
    );
    for (budget, method, avg, wins) in &summary {
        sum_table.row(vec![
            budget.clone(),
            method.clone(),
            format!("{avg:.3}"),
            wins.to_string(),
        ]);
    }
    sum_table.print();

    if json {
        let out = serde_json::json!({
            "scale": format!("{scale:?}"),
            "table10": table.to_json(),
            "summary": sum_table.to_json(),
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    }
}
