//! Trace-overhead measurement plus the cross-thread trace byte-identity
//! gate.
//!
//! One GA run per configuration, identical seed and budget, over a real
//! objective (J48 cross-validation accuracy on a synthetic dataset):
//!
//! * **trace off** — the disabled tracer (the default everywhere);
//! * **trace on** — an enabled in-memory tracer recording the full event
//!   stream (plus JSONL to `AUTOMODEL_TRACE=<path>` when set).
//!
//! The tracer contract says enabling it must not change results and must
//! cost almost nothing: this binary asserts the trial fingerprints are
//! byte-identical, asserts the captured traces are byte-identical at
//! 1/2/8 worker threads (or `AUTOMODEL_THREADS` when set), and reports
//! the wall-clock overhead (EXPERIMENTS.md targets < 3%). `scripts/check.sh`
//! runs it as the tracing determinism gate; any violation aborts.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_trace_overhead
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_data::{SynthFamily, SynthSpec};
use automodel_hpo::{
    Budget, Config, Executor, GaConfig, GeneticAlgorithm, OptOutcome, OptimizerBuilder, TrialCache,
};
use automodel_ml::{cross_val_accuracy, Registry};
use automodel_trace::{TraceEvent, Tracer};
use std::sync::Arc;
use std::time::Instant;

fn fingerprint(out: &OptOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in &out.trials {
        let _ = writeln!(s, "{}|{}#{:016x}", t.index, t.config, t.score.to_bits());
    }
    s
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let narrator = automodel_bench::tracer_or_die("exp_trace_overhead");

    let (rows, evals, reps) = match scale {
        Scale::Tiny => (200, 60, 3),
        Scale::Small => (400, 200, 3),
        Scale::Paper => (1000, 600, 5),
    };
    let data = SynthSpec::new(
        "overhead",
        rows,
        5,
        1,
        3,
        SynthFamily::GaussianBlobs { spread: 0.9 },
        91,
    )
    .generate();

    let registry = Registry::fast();
    let spec = registry.get("J48").expect("fast registry carries J48");
    let space = spec.param_space();
    let objective =
        |config: &Config| cross_val_accuracy(|| spec.build(config, 7), &data, 5, 7).unwrap_or(0.0);
    let ga_config = GaConfig {
        population: 16,
        generations: 1000, // bounded by the eval budget
        ..GaConfig::default()
    };
    let budget = Budget::evals(evals);

    // ---- Overhead: best-of-`reps` wall clock, tracer off vs on, serial
    // executor so the measurement is not scheduler noise.
    let executor = Executor::new(1);
    let timed = |tracer: Arc<Tracer>| {
        // Cache disabled: a shared cache would make every repeat a free
        // replay, leaving nothing but tracer cost in the measurement.
        let ga = GeneticAlgorithm::with_config(42, ga_config.clone())
            .with_cache(Arc::new(TrialCache::disabled()))
            .with_tracer(tracer);
        let mut best_ms = f64::INFINITY;
        let mut out = None;
        for _ in 0..reps {
            let start = Instant::now();
            let run = ga
                .optimize_batch(&space, &objective, &budget, &executor)
                .expect("eval budget > 0 always yields an outcome");
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            out = Some(run);
        }
        (out.expect("reps >= 1"), best_ms)
    };

    narrator.emit(TraceEvent::stage_start("overhead"));
    let (off, off_ms) = timed(Arc::new(Tracer::disabled()));
    let (on, on_ms) = {
        let (tracer, handle) = Tracer::in_memory();
        let (out, ms) = timed(Arc::new(tracer));
        let events = handle.contents().lines().count();
        narrator.emit(TraceEvent::stage_end(
            "capture",
            format!("{events} event(s) over {} trial(s)", out.trials.len()),
        ));
        (out, ms)
    };
    let overhead = (on_ms - off_ms) / off_ms.max(1e-9) * 100.0;
    assert_eq!(
        fingerprint(&off),
        fingerprint(&on),
        "tracing changed the trial history (trace-on must equal trace-off)"
    );
    narrator.emit(TraceEvent::stage_end(
        "overhead",
        format!("off {off_ms:.1} ms, on {on_ms:.1} ms, overhead {overhead:+.2}%"),
    ));

    // ---- Byte-identity: the captured trace must not depend on the thread
    // count. `AUTOMODEL_THREADS=N` narrows the sweep to {1, N}.
    let mut counts = vec![1usize, 2, 8];
    if let Some(n) = std::env::var("AUTOMODEL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        counts = vec![1, n];
    }
    counts.sort_unstable();
    counts.dedup();
    narrator.emit(TraceEvent::stage_start("byte-identity"));
    let mut baseline: Option<String> = None;
    for &threads in &counts {
        let (tracer, handle) = Tracer::in_memory();
        let ga = GeneticAlgorithm::with_config(42, ga_config.clone()).with_tracer(Arc::new(tracer));
        let out = ga
            .optimize_batch(&space, &objective, &budget, &Executor::new(threads))
            .expect("eval budget > 0 always yields an outcome");
        assert_eq!(
            fingerprint(&out),
            fingerprint(&off),
            "determinism violation: {threads}-thread trial history diverged"
        );
        let trace = handle.contents();
        match &baseline {
            None => baseline = Some(trace),
            Some(b) => assert_eq!(
                b, &trace,
                "trace determinism violation: {threads}-thread trace bytes diverged"
            ),
        }
    }
    let trace_lines = baseline.as_deref().map_or(0, |b| b.lines().count());
    narrator.emit(TraceEvent::stage_end(
        "byte-identity",
        format!(
            "{} thread count(s), {trace_lines} line(s), byte-identical",
            counts.len()
        ),
    ));

    let mut table = Table::new(
        "Structured tracing — overhead and determinism",
        &["tracer", "wall ms", "overhead %", "best", "trials"],
    );
    table.row(vec![
        "off".into(),
        format!("{off_ms:.1}"),
        "-".into(),
        format!("{:.4}", off.best_score),
        off.trials.len().to_string(),
    ]);
    table.row(vec![
        "on".into(),
        format!("{on_ms:.1}"),
        format!("{overhead:+.2}"),
        format!("{:.4}", on.best_score),
        on.trials.len().to_string(),
    ]);
    table.print();
    if let Some(summary) = narrator.summary() {
        eprintln!("{}", summary.render());
    }

    if json {
        let out = serde_json::json!({
            "scale": format!("{scale:?}"),
            "evals": evals,
            "off_ms": off_ms,
            "on_ms": on_ms,
            "overhead_pct": overhead,
            "trace_lines": trace_lines,
            "thread_counts": counts,
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    }
}
