//! Table VIII, Fig. 3 and Table IX: the quality of the acquired knowledge.
//!
//! * Table VIII — average `PORatio(CRelations(D), D)` over all knowledge
//!   datasets, next to the top-3 single algorithms by average PORatio.
//! * Fig. 3 — the distribution of those PORatios over the five ranges.
//! * Table IX — average `P(CRelations(D), D)` next to the top-3 single
//!   algorithms by average performance.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_crelations_quality
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::report::{histogram5, top_k, Table};
use automodel_bench::{PipelineCache, Scale};
use automodel_core::poratio::po_ratio;
use automodel_knowledge::{knowledge_acquisition, AcquisitionOptions};
use automodel_ml::Registry;
use automodel_trace::TraceEvent;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let tracer = automodel_bench::tracer_or_die("exp_crelations_quality");

    let pipeline = PipelineCache::new(Registry::full(), scale);
    tracer.emit(TraceEvent::stage_start("knowledge base"));
    let kb = pipeline.build_knowledge_base();
    tracer.emit(TraceEvent::stage_end(
        "knowledge base",
        format!("{} dataset(s) swept", scale.knowledge_datasets()),
    ));

    tracer.emit(TraceEvent::stage_start("algorithm 1"));
    let pairs = knowledge_acquisition(
        &kb.corpus.experiences,
        &kb.corpus.papers,
        &AcquisitionOptions { min_algorithms: 3 },
    );
    tracer.emit(TraceEvent::stage_end(
        "algorithm 1",
        format!("{} CRelations pair(s)", pairs.len()),
    ));

    tracer.emit(TraceEvent::stage_start("score CRelations"));
    // PORatio and P of CRelations(D) per dataset.
    let mut ratios = Vec::new();
    let mut perfs = Vec::new();
    let mut agreement = 0usize;
    for pair in &pairs {
        let Some(sweep) = kb.performances.get(&pair.instance) else {
            continue;
        };
        if let Some(r) = po_ratio(sweep, &pair.best_algorithm) {
            ratios.push(r);
        }
        if let Some(p) = sweep
            .iter()
            .find(|(n, _)| n == &pair.best_algorithm)
            .and_then(|(_, p)| *p)
        {
            perfs.push(p);
        }
        if kb.measured_best(&pair.instance) == Some(pair.best_algorithm.as_str()) {
            agreement += 1;
        }
    }

    tracer.emit(TraceEvent::stage_end(
        "score CRelations",
        format!(
            "{} PORatio(s), {} performance(s)",
            ratios.len(),
            perfs.len()
        ),
    ));

    // Per-algorithm averages over the knowledge datasets (for the top-3).
    let mut by_alg_ratio: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut by_alg_perf: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for sweep in kb.performances.values() {
        for (name, p) in sweep {
            if p.is_some() {
                if let Some(r) = po_ratio(sweep, name) {
                    by_alg_ratio.entry(name.clone()).or_default().push(r);
                }
                by_alg_perf
                    .entry(name.clone())
                    .or_default()
                    .push(p.unwrap());
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    // Only rank algorithms measurable on most datasets (see the note in
    // exp_sna_effectiveness: rarely-applicable algorithms would otherwise
    // dominate with perfect averages on their one easy dataset).
    let min_coverage = (kb.performances.len() * 4).div_ceil(5);
    let alg_ratios: Vec<(String, f64)> = by_alg_ratio
        .iter()
        .filter(|(_, v)| v.len() >= min_coverage)
        .map(|(n, v)| (n.clone(), avg(v)))
        .collect();
    let alg_perfs: Vec<(String, f64)> = by_alg_perf
        .iter()
        .filter(|(_, v)| v.len() >= min_coverage)
        .map(|(n, v)| (n.clone(), avg(v)))
        .collect();

    // ---- Table VIII.
    let mut t8 = Table::new(
        "Table VIII — average PORatio over knowledge datasets",
        &["entry", "avg PORatio"],
    );
    t8.row(vec!["CRelations(D)".into(), format!("{:.2}", avg(&ratios))]);
    for (i, (name, r)) in top_k(&alg_ratios, 3).into_iter().enumerate() {
        t8.row(vec![format!("Top{}-{}", i + 1, name), format!("{r:.2}")]);
    }
    t8.print();

    // ---- Fig. 3.
    let fig3 = histogram5(&ratios);
    fig3.print();

    // ---- Table IX.
    let mut t9 = Table::new(
        "Table IX — average performance P over knowledge datasets",
        &["entry", "avg P"],
    );
    t9.row(vec!["CRelations(D)".into(), format!("{:.2}", avg(&perfs))]);
    for (i, (name, p)) in top_k(&alg_perfs, 3).into_iter().enumerate() {
        t9.row(vec![format!("Top{}-{}", i + 1, name), format!("{p:.2}")]);
    }
    t9.print();

    println!(
        "CRelations pairs: {} / {} datasets; agreement with measured best: {:.0}%",
        pairs.len(),
        kb.datasets.len(),
        100.0 * agreement as f64 / pairs.len().max(1) as f64
    );
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }

    if json {
        let out = serde_json::json!({
            "scale": format!("{scale:?}"),
            "table8": t8.to_json(),
            "fig3": fig3.to_json(),
            "table9": t9.to_json(),
            "pairs": pairs.len(),
            "agreement": agreement,
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    }
}
