//! Evaluation-cache effect: GA architecture search with heavy duplication,
//! cache off vs on.
//!
//! The paper's DMD stage (Algorithm 3) runs a GA over the small discrete
//! MLP architecture grid of Table II — pop 50 × 100 generations against a
//! space with far fewer distinct points, so most fitness evaluations are
//! re-visits of genomes already scored. This experiment reproduces that
//! duplication profile in miniature: a GA over a 24-point architecture grid
//! whose fitness trains a real `MlpRegressor`, run twice with the identical
//! seed and budget — once with the trial cache disabled, once enabled. The
//! cache contract says the trial history must be byte-identical either way;
//! this binary asserts that fingerprint while measuring the wall-clock
//! speedup, and records the result into `BENCH_cache.json`.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_cache_effect
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_hpo::OptimizerBuilder;
use automodel_hpo::{
    Budget, Config, Domain, Executor, GaConfig, GeneticAlgorithm, OptOutcome, ParamSpec,
    SearchSpace, TrialCache,
};
use automodel_nn::{Activation, MlpConfig, MlpRegressor};
use automodel_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn fingerprint(out: &OptOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in &out.trials {
        let _ = writeln!(s, "{}|{}#{:016x}", t.index, t.config, t.score.to_bits());
    }
    s
}

/// The discrete architecture grid: 2 depths × 3 widths × 4 activations
/// = 24 distinct genomes, so a few hundred GA evaluations revisit most
/// points many times — the duplication profile of the paper's Algorithm 3.
fn arch_space() -> SearchSpace {
    SearchSpace::new(vec![
        ParamSpec {
            name: "hidden_layers".into(),
            domain: Domain::int(1, 2),
            condition: None,
        },
        ParamSpec {
            name: "hidden_size".into(),
            domain: Domain::cat(&["8", "16", "32"]),
            condition: None,
        },
        ParamSpec {
            name: "activation".into(),
            domain: Domain::cat(&["relu", "tanh", "logistic", "identity"]),
            condition: None,
        },
    ])
    .expect("static space is valid")
}

/// Seeded synthetic regression set: mildly nonlinear, 4 features.
fn regression_data(rows: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(rows);
    let mut ys = Vec::with_capacity(rows);
    for _ in 0..rows {
        let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let noise: f64 = rng.gen_range(-0.05..0.05);
        let y = (1.5 * x[0] - x[1] + 0.5 * x[2] * x[3]).tanh() + noise;
        xs.push(x);
        ys.push(vec![y]);
    }
    (xs, ys)
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    let tracer = automodel_bench::tracer_or_die("exp_cache_effect");
    tracer.emit(TraceEvent::stage_start(format!("cache effect ({scale:?})")));

    let (rows, evals, max_iter) = match scale {
        Scale::Tiny => (96, 120, 30),
        Scale::Small => (160, 240, 40),
        Scale::Paper => (240, 720, 60),
    };
    let (xs, ys) = regression_data(rows, 4051);
    let split = rows * 3 / 4;
    let (train_x, test_x) = xs.split_at(split);
    let (train_y, test_y) = ys.split_at(split);

    let space = arch_space();
    // Fitness = −test MSE of an MLP trained with the genome's architecture;
    // fully deterministic per config (fixed init + data seed), so cached
    // replays are indistinguishable from live evaluations.
    let objective = |config: &Config| {
        let mlp = MlpConfig {
            hidden_layers: config.int_or("hidden_layers", 1) as usize,
            hidden_size: 8usize << config.cat_or("hidden_size", 0),
            activation: Activation::ALL[config.cat_or("activation", 0)],
            max_iter,
            seed: 7,
            ..MlpConfig::default()
        };
        let mut reg = MlpRegressor::new(mlp);
        let report = reg.fit(train_x, train_y);
        if report.diverged {
            return -1.0e9;
        }
        let mse = reg.mse(test_x, test_y);
        if mse.is_finite() {
            -mse
        } else {
            -1.0e9
        }
    };

    let ga_config = GaConfig {
        population: 16,
        generations: 1000, // bounded by the eval budget
        ..GaConfig::default()
    };
    let budget = Budget::evals(evals);
    let executor = Executor::new(1);

    let run = |label: &str, cache: Arc<TrialCache>| {
        tracer.emit(TraceEvent::stage_start(format!("cache {label}")));
        let ga = GeneticAlgorithm::with_config(42, ga_config.clone())
            .with_cache(cache)
            .with_tracer(Arc::clone(&tracer));
        let start = Instant::now();
        let out = ga
            .optimize_batch(&space, &objective, &budget, &executor)
            .expect("eval budget > 0 always yields an outcome");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        tracer.emit(TraceEvent::stage_end(
            format!("cache {label}"),
            format!(
                "{ms:.1} ms, best {:.4}, {} hit(s) / {} miss(es)",
                out.best_score, out.cache.hits, out.cache.misses
            ),
        ));
        (out, ms)
    };

    let (off, off_ms) = run("off", Arc::new(TrialCache::disabled()));
    let (on, on_ms) = run("on", Arc::new(TrialCache::default()));

    let off_fp = fingerprint(&off);
    let identical = fingerprint(&on) == off_fp;
    assert!(
        identical,
        "cache determinism violation: cached trial history diverged from uncached"
    );
    // The cache must also not disturb the multi-thread contract.
    let executor2 = Executor::new(2);
    let ga2 = GeneticAlgorithm::with_config(42, ga_config.clone())
        .with_cache(Arc::new(TrialCache::default()));
    let out2 = ga2
        .optimize_batch(&space, &objective, &budget, &executor2)
        .expect("eval budget > 0 always yields an outcome");
    assert_eq!(
        fingerprint(&out2),
        off_fp,
        "cache determinism violation: 2-thread cached history diverged"
    );

    let speedup = off_ms / on_ms.max(1e-9);
    let lookups = on.cache.hits + on.cache.misses;
    let hit_rate = if lookups > 0 {
        on.cache.hits as f64 / lookups as f64
    } else {
        0.0
    };
    // lint:allow(determinism-taint): wall-clock speedup is the quantity this experiment reports
    tracer.emit(TraceEvent::stage_end(
        format!("cache effect ({scale:?})"),
        format!(
            "speedup {speedup:.2}x, hit rate {:.1}%, {} distinct of {} trials",
            100.0 * hit_rate,
            on.cache.entries,
            on.trials.len()
        ),
    ));

    let mut table = Table::new(
        "GA architecture search — evaluation cache effect",
        &["cache", "wall ms", "hits", "misses", "best", "trials"],
    );
    table.row(vec![
        "off".into(),
        format!("{off_ms:.1}"),
        off.cache.hits.to_string(),
        off.cache.misses.to_string(),
        format!("{:.4}", off.best_score),
        off.trials.len().to_string(),
    ]);
    table.row(vec![
        "on".into(),
        format!("{on_ms:.1}"),
        on.cache.hits.to_string(),
        on.cache.misses.to_string(),
        format!("{:.4}", on.best_score),
        on.trials.len().to_string(),
    ]);
    table.print();

    let report = serde_json::json!({
        "scale": format!("{scale:?}"),
        "evals": evals,
        "distinct_points": 24,
        "uncached_ms": off_ms,
        "cached_ms": on_ms,
        "speedup": speedup,
        "hits": on.cache.hits,
        "misses": on.cache.misses,
        "hit_rate": hit_rate,
        "entries": on.cache.entries,
        "bytes": on.cache.bytes,
        "identical_history": identical,
    });
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    match std::fs::write("BENCH_cache.json", &pretty) {
        Err(e) => tracer.emit(TraceEvent::stage_end(
            "BENCH_cache.json",
            format!("write failed: {e}"),
        )),
        Ok(()) => tracer.emit(TraceEvent::stage_end("BENCH_cache.json", "written")),
    }
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }
    if json {
        println!("{pretty}");
    }
}
