//! Parallel-evaluation scaling: GA population evaluation on the shared
//! deterministic executor at increasing thread counts.
//!
//! One GA run per thread count, identical seed and budget, over a real
//! objective (J48 cross-validation accuracy on a synthetic dataset). The
//! executor contract says every run must return the *same* trial history —
//! this experiment checks that fingerprint while measuring wall-clock
//! speedup of the population evaluation.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_parallel_scaling
//! [--scale tiny|small|paper] [--json]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_data::{SynthFamily, SynthSpec};
use automodel_hpo::{
    Budget, Config, Executor, GaConfig, GeneticAlgorithm, OptOutcome, OptimizerBuilder,
};
use automodel_ml::{cross_val_accuracy, Registry};
use automodel_trace::TraceEvent;
use std::sync::Arc;
use std::time::Instant;

fn fingerprint(out: &OptOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in &out.trials {
        let _ = writeln!(s, "{}|{}#{:016x}", t.index, t.config, t.score.to_bits());
    }
    s
}

fn main() {
    let scale = Scale::from_args();
    let json = std::env::args().any(|a| a == "--json");
    // Structured narration: stage/run lines on stderr, full JSONL to
    // `AUTOMODEL_TRACE=<path>` when set.
    let tracer = automodel_bench::tracer_or_die("exp_parallel_scaling");
    tracer.emit(TraceEvent::stage_start(format!("scaling ({scale:?})")));

    let (rows, evals) = match scale {
        Scale::Tiny => (200, 60),
        Scale::Small => (400, 200),
        Scale::Paper => (1000, 600),
    };
    let data = SynthSpec::new(
        "scaling",
        rows,
        5,
        1,
        3,
        SynthFamily::GaussianBlobs { spread: 0.9 },
        91,
    )
    .generate();

    let registry = Registry::fast();
    let spec = registry.get("J48").expect("fast registry carries J48");
    let space = spec.param_space();
    let objective =
        |config: &Config| cross_val_accuracy(|| spec.build(config, 7), &data, 5, 7).unwrap_or(0.0);
    let ga = GeneticAlgorithm::with_config(
        42,
        GaConfig {
            population: 16,
            generations: 1000, // bounded by the eval budget
            ..GaConfig::default()
        },
    )
    .with_tracer(Arc::clone(&tracer));
    let budget = Budget::evals(evals);

    let mut counts = vec![1usize, 2, 4, scale.threads()];
    counts.sort_unstable();
    counts.dedup();

    let mut table = Table::new(
        "GA population evaluation — executor scaling",
        &[
            "threads",
            "wall ms",
            "speedup",
            "best",
            "trials",
            "identical",
        ],
    );
    let mut baseline_ms = 0.0f64;
    let mut baseline_fp = String::new();
    let mut rows_json = Vec::new();
    for &threads in &counts {
        tracer.emit(TraceEvent::stage_start(format!("{threads} thread(s)")));
        let executor = Executor::new(threads);
        let start = Instant::now();
        let out = ga
            .optimize_batch(&space, &objective, &budget, &executor)
            .expect("eval budget > 0 always yields an outcome");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let fp = fingerprint(&out);
        if threads == 1 {
            baseline_ms = ms;
            baseline_fp = fp.clone();
        }
        let identical = fp == baseline_fp;
        assert!(
            identical,
            "determinism violation: {threads}-thread trial history diverged from serial"
        );
        let speedup = baseline_ms / ms.max(1e-9);
        // lint:allow(determinism-taint): wall-clock timing is the quantity this experiment reports
        tracer.emit(TraceEvent::stage_end(
            format!("{threads} thread(s)"),
            format!(
                "{ms:.1} ms, speedup {speedup:.2}x, best {:.4}",
                out.best_score
            ),
        ));
        table.row(vec![
            threads.to_string(),
            format!("{ms:.1}"),
            format!("{speedup:.2}"),
            format!("{:.4}", out.best_score),
            out.trials.len().to_string(),
            identical.to_string(),
        ]);
        rows_json.push(serde_json::json!({
            "threads": threads,
            "wall_ms": ms,
            "speedup": speedup,
            "best": out.best_score,
            "trials": out.trials.len(),
        }));
    }
    // lint:allow(determinism-taint): wall-clock timing is the quantity this experiment reports
    tracer.emit(TraceEvent::stage_end(
        format!("scaling ({scale:?})"),
        format!("{} thread count(s), all histories identical", counts.len()),
    ));
    table.print();
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }

    if json {
        let out = serde_json::json!({
            "scale": format!("{scale:?}"),
            "evals": evals,
            "rows": rows_json,
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    }
}
