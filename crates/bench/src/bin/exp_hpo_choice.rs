//! DESIGN.md ablation: the §II claim that GA suits cheap evaluations and BO
//! suits expensive ones.
//!
//! Two tuning problems over the same registry:
//!
//! * **cheap** — tune `IBk` (fast fits) under a *large* evaluation budget;
//! * **expensive** — tune `RandomForest` under a *tiny* evaluation budget
//!   (standing in for "each evaluation costs minutes, so only a few are
//!   affordable").
//!
//! Grid Search and Random Search run as the history-blind baselines. The
//! expected shape: GA leads when evaluations are plentiful; BO leads (or
//! ties) when only a handful of evaluations is affordable.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_hpo_choice
//! [--scale tiny|small|paper]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_data::{SynthFamily, SynthSpec};
use automodel_hpo::{
    BayesianOptimization, Budget, FnObjective, GeneticAlgorithm, GridSearch, Optimizer,
    RandomSearch,
};
use automodel_ml::{cross_val_accuracy, Registry};
use automodel_trace::TraceEvent;

fn main() {
    let scale = Scale::from_args();
    let tracer = automodel_bench::tracer_or_die("exp_hpo_choice");
    tracer.emit(TraceEvent::stage_start(format!("hpo choice ({scale:?})")));
    let registry = Registry::full();
    let folds = scale.cv_folds();

    let data = SynthSpec::new(
        "hpo-bench",
        match scale {
            Scale::Tiny => 150,
            Scale::Small => 250,
            Scale::Paper => 500,
        },
        5,
        1,
        3,
        SynthFamily::GaussianBlobs { spread: 1.4 },
        99,
    )
    .with_label_noise(0.1)
    .generate();

    let (cheap_budget, expensive_budget) = match scale {
        Scale::Tiny => (40, 10),
        Scale::Small => (120, 16),
        Scale::Paper => (600, 30),
    };

    let mut table = Table::new(
        "HPO-technique choice (GA vs BO, §II)",
        &[
            "problem",
            "budget",
            "optimizer",
            "best CV accuracy",
            "evals",
        ],
    );

    for (problem, algorithm, evals) in [
        ("cheap (IBk)", "IBk", cheap_budget),
        ("expensive (RandomForest)", "RandomForest", expensive_budget),
    ] {
        tracer.emit(TraceEvent::stage_start(problem));
        let spec = registry.get(algorithm).unwrap();
        let space = spec.param_space();
        let seeds = match scale {
            Scale::Tiny => 1,
            _ => 3,
        };
        let mut run = |name: &str, mk: &dyn Fn(u64) -> Box<dyn Optimizer>| {
            let mut best_sum = 0.0;
            let mut trials = 0usize;
            for seed in 0..seeds {
                let mut objective = FnObjective(|config: &automodel_hpo::Config| {
                    cross_val_accuracy(|| spec.build(config, seed), &data, folds, seed)
                        .unwrap_or(0.0)
                });
                let mut optimizer = mk(seed);
                if let Some(out) = optimizer.optimize(&space, &mut objective, &Budget::evals(evals))
                {
                    best_sum += out.best_score;
                    trials = out.trials.len();
                }
            }
            table.row(vec![
                problem.to_string(),
                evals.to_string(),
                name.to_string(),
                format!("{:.3}", best_sum / seeds as f64),
                trials.to_string(),
            ]);
        };
        run("grid-search", &|_s| Box::new(GridSearch::new(4)));
        run("random-search", &|s| Box::new(RandomSearch::new(s)));
        run("genetic-algorithm", &|s| {
            Box::new(GeneticAlgorithm::with_config(
                s,
                automodel_hpo::GaConfig {
                    population: 10,
                    generations: 1000,
                    ..automodel_hpo::GaConfig::default()
                },
            ))
        });
        run("bayesian-optimization", &|s| {
            Box::new(BayesianOptimization::new(s))
        });
        tracer.emit(TraceEvent::stage_end(
            problem,
            format!("4 optimizers x {seeds} seed(s) at {evals} evals"),
        ));
    }
    tracer.emit(TraceEvent::stage_end(
        format!("hpo choice ({scale:?})"),
        "done".to_string(),
    ));
    table.print();
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }
}
