//! DESIGN.md ablation: is Algorithm 1's machinery (reliability ranking,
//! transitive closure, conflict resolution) actually doing work?
//!
//! Across corpus noise levels, extraction accuracy against the planted
//! ground truth for three extractors:
//!
//! * **Algorithm 1** — the full pipeline;
//! * **majority vote** — most frequently reported best algorithm, no
//!   reliability, no graph;
//! * **most-reliable paper** — trust the single most reliable paper that
//!   mentioned the instance.
//!
//! Run: `cargo run --release -p automodel-bench --bin exp_knowledge_ablation
//! [--scale tiny|small|paper]`

use automodel_bench::report::Table;
use automodel_bench::Scale;
use automodel_knowledge::paper::rank_papers;
use automodel_knowledge::{knowledge_acquisition, AcquisitionOptions, Corpus, CorpusSpec};
use automodel_trace::TraceEvent;
use std::collections::BTreeMap;

/// Majority-vote extractor.
fn majority_vote(corpus: &Corpus) -> BTreeMap<String, String> {
    let mut votes: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for e in &corpus.experiences {
        *votes
            .entry(e.instance.clone())
            .or_default()
            .entry(e.best.clone())
            .or_insert(0) += 1;
    }
    votes
        .into_iter()
        .map(|(instance, counts)| {
            let best = counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(a, _)| a)
                .unwrap_or_default();
            (instance, best)
        })
        .collect()
}

/// Most-reliable-paper extractor.
fn most_reliable(corpus: &Corpus) -> BTreeMap<String, String> {
    let ranks: BTreeMap<String, usize> = rank_papers(&corpus.papers).into_iter().collect();
    let mut best: BTreeMap<String, (usize, String)> = BTreeMap::new();
    for e in &corpus.experiences {
        let rel = ranks.get(&e.paper).copied().unwrap_or(0);
        let entry = best
            .entry(e.instance.clone())
            .or_insert((rel, e.best.clone()));
        if rel >= entry.0 {
            *entry = (rel, e.best.clone());
        }
    }
    best.into_iter().map(|(i, (_, a))| (i, a)).collect()
}

fn accuracy(corpus: &Corpus, extracted: &BTreeMap<String, String>) -> (usize, usize) {
    let mut correct = 0;
    let mut total = 0;
    for (instance, algorithm) in extracted {
        if let Some(truth) = corpus.true_best(instance) {
            total += 1;
            if truth == algorithm {
                correct += 1;
            }
        }
    }
    (correct, total)
}

fn main() {
    let scale = Scale::from_args();
    let tracer = automodel_bench::tracer_or_die("exp_knowledge_ablation");
    tracer.emit(TraceEvent::stage_start(format!(
        "knowledge ablation ({scale:?})"
    )));
    let seeds: u64 = match scale {
        Scale::Tiny => 2,
        Scale::Small => 5,
        Scale::Paper => 20,
    };

    let mut table = Table::new(
        "Knowledge-extraction ablation (accuracy vs planted truth)",
        &[
            "noise",
            "Algorithm 1",
            "majority vote",
            "most-reliable paper",
            "pairs",
        ],
    );

    for noise in [0.0, 0.15, 0.3, 0.45, 0.6] {
        tracer.emit(TraceEvent::stage_start(format!("noise {noise:.2}")));
        let mut acc = [0.0f64; 3];
        let mut pairs_total = 0usize;
        for seed in 0..seeds {
            let mut spec = CorpusSpec::small();
            spec.noise = noise;
            spec.n_papers = 24;
            spec.seed = 1000 + seed;
            let corpus = spec.build();

            // Algorithm 1.
            let alg1: BTreeMap<String, String> = knowledge_acquisition(
                &corpus.experiences,
                &corpus.papers,
                &AcquisitionOptions { min_algorithms: 3 },
            )
            .into_iter()
            .map(|p| (p.instance, p.best_algorithm))
            .collect();
            let (c1, t1) = accuracy(&corpus, &alg1);
            let (c2, t2) = accuracy(&corpus, &majority_vote(&corpus));
            let (c3, t3) = accuracy(&corpus, &most_reliable(&corpus));
            acc[0] += c1 as f64 / t1.max(1) as f64;
            acc[1] += c2 as f64 / t2.max(1) as f64;
            acc[2] += c3 as f64 / t3.max(1) as f64;
            pairs_total += t1;
        }
        table.row(vec![
            format!("{noise:.2}"),
            format!("{:.2}", acc[0] / seeds as f64),
            format!("{:.2}", acc[1] / seeds as f64),
            format!("{:.2}", acc[2] / seeds as f64),
            (pairs_total / seeds as usize).to_string(),
        ]);
        tracer.emit(TraceEvent::stage_end(
            format!("noise {noise:.2}"),
            format!(
                "{seeds} seed(s), alg1 accuracy {:.2}",
                acc[0] / seeds as f64
            ),
        ));
    }
    tracer.emit(TraceEvent::stage_end(
        format!("knowledge ablation ({scale:?})"),
        "5 noise level(s)".to_string(),
    ));
    table.print();
    if let Some(summary) = tracer.summary() {
        eprintln!("{}", summary.render());
    }
}
