//! Experiment scales.
//!
//! The paper runs 50 Weka algorithms over 69 knowledge + 21 test datasets
//! with a 10³-second GA tuning limit per (algorithm, dataset) pair and
//! 30 s / 5 min CASH budgets. That is days of compute; the harness scales
//! the *budgets and dataset sizes* while preserving every structural ratio
//! (knowledge:test datasets, small:large CASH budget = 1:10, tuning with GA
//! population ≥ the paper's shape). EXPERIMENTS.md records the scale used
//! for each reported table.

use automodel_hpo::Budget;

/// Preset experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale: finishes in well under a minute.
    Tiny,
    /// Default scale: minutes on one machine.
    Small,
    /// Paper-shaped scale (still row-capped; hours).
    Paper,
}

impl Scale {
    /// Parse `--scale` values.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// From argv: `--scale <v>` (default [`Scale::Small`]).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| Scale::parse(v))
            .unwrap_or(Scale::Small)
    }

    /// Number of knowledge datasets (paper: 69).
    pub fn knowledge_datasets(self) -> usize {
        match self {
            Scale::Tiny => 20,
            Scale::Small => 48,
            Scale::Paper => 69,
        }
    }

    /// Row cap on knowledge datasets.
    pub fn knowledge_rows(self) -> usize {
        match self {
            Scale::Tiny => 120,
            Scale::Small => 200,
            Scale::Paper => 400,
        }
    }

    /// Row cap on the Table XI test datasets (paper: uncapped).
    pub fn test_rows(self) -> Option<usize> {
        match self {
            Scale::Tiny => Some(150),
            Scale::Small => Some(250),
            Scale::Paper => Some(1000),
        }
    }

    /// Number of Table XI test datasets to run (prefix of the 21).
    pub fn test_datasets(self) -> usize {
        match self {
            Scale::Tiny => 6,
            Scale::Small => 21,
            Scale::Paper => 21,
        }
    }

    /// GA tuning budget per (algorithm, dataset) pair for `P(A, D)`
    /// (paper: 10³ s wall clock).
    pub fn tuning_budget(self) -> Budget {
        Budget::evals(match self {
            Scale::Tiny => 6,
            Scale::Small => 10,
            Scale::Paper => 40,
        })
    }

    /// CV folds for `f(λ, A, D)` (paper: 10).
    pub fn cv_folds(self) -> usize {
        match self {
            Scale::Tiny => 3,
            Scale::Small => 3,
            Scale::Paper => 10,
        }
    }

    /// The two CASH budgets of Table X, `(small, large)`. These are
    /// **wall-clock**, like the paper's 30 s / 5 min (1:10 ratio preserved):
    /// the paper's mechanism — Auto-Weka wasting its budget evaluating
    /// expensive inappropriate algorithms — only exists under wall-clock
    /// accounting. (An evaluation-count budget would charge a 120-tree
    /// RandomForest CV the same as an IBk CV and erase the effect.)
    pub fn cash_budgets(self) -> (Budget, Budget) {
        use std::time::Duration;
        match self {
            Scale::Tiny => (
                Budget::time(Duration::from_millis(200)),
                Budget::time(Duration::from_millis(2000)),
            ),
            Scale::Small => (
                Budget::time(Duration::from_millis(500)),
                Budget::time(Duration::from_millis(5000)),
            ),
            Scale::Paper => (
                Budget::time(Duration::from_secs(30)),
                Budget::time(Duration::from_secs(300)),
            ),
        }
    }

    /// CV folds used by the Table X comparison objective. Always the
    /// paper's 10: the fold count sets the cost of one configuration
    /// evaluation, and the budget-to-eval-cost ratio is the quantity the
    /// wall-clock budgets above are calibrated against (an average
    /// registry evaluation costs ~100 ms at the Small test shapes, so the
    /// 500 ms budget affords a handful of evaluations — as 30 s did for
    /// Auto-Weka on Weka-scale evaluations).
    pub fn cash_folds(self) -> usize {
        10
    }

    /// Table X repetitions per `f(T, D)` cell (paper: 20).
    pub fn repetitions(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 3,
            Scale::Paper => 20,
        }
    }

    /// Papers in the synthetic corpus (paper: 20).
    pub fn corpus_papers(self) -> usize {
        match self {
            Scale::Tiny => 12,
            Scale::Small => 20,
            Scale::Paper => 20,
        }
    }

    /// DMD meta-search scale `(fs_pop, fs_gen, arch_pop, arch_gen)`
    /// (paper: 50, 100, 50, —).
    pub fn dmd_scale(self) -> (usize, usize, usize, usize) {
        match self {
            Scale::Tiny => (8, 4, 6, 3),
            Scale::Small => (20, 10, 16, 8),
            Scale::Paper => (50, 100, 50, 40),
        }
    }

    /// Worker threads for the performance sweeps. `AUTOMODEL_THREADS=N`
    /// overrides the detected parallelism — `AUTOMODEL_THREADS=1` replays
    /// any experiment serially for determinism debugging (the executors are
    /// thread-count invariant, so the numbers must not change).
    pub fn threads(self) -> usize {
        if let Some(n) = std::env::var("AUTOMODEL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_presets() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn cash_budget_ratio_is_one_to_ten() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
            let (small, large) = scale.cash_budgets();
            let (s, l) = (small.max_time.unwrap(), large.max_time.unwrap());
            assert_eq!(l.as_millis(), s.as_millis() * 10, "{scale:?}");
        }
        // The paper's exact budgets at paper scale.
        let (s, l) = Scale::Paper.cash_budgets();
        assert_eq!(s.max_time.unwrap().as_secs(), 30);
        assert_eq!(l.max_time.unwrap().as_secs(), 300);
    }

    #[test]
    fn paper_scale_matches_paper_counts() {
        assert_eq!(Scale::Paper.knowledge_datasets(), 69);
        assert_eq!(Scale::Paper.test_datasets(), 21);
        assert_eq!(Scale::Paper.corpus_papers(), 20);
        assert_eq!(Scale::Paper.cv_folds(), 10);
        assert_eq!(Scale::Paper.repetitions(), 20);
        assert_eq!(Scale::Paper.dmd_scale().0, 50);
    }
}
