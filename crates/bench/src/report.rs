//! Plain-text table rendering for the experiment binaries, mirroring the
//! row/column structure of the paper's tables, plus a JSON dump so results
//! can be post-processed.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (panics if the width disagrees with the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        // lint:allow(no-adhoc-print): tables on stdout are this type's output
        print!("{}", self.render());
        // lint:allow(no-adhoc-print): blank separator line after the table
        println!();
    }

    /// JSON object `{title, header, rows}`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "title": self.title,
            "header": self.header,
            "rows": self.rows,
        })
    }
}

/// Format an optional score like the paper's tables (−1 for "did not run",
/// as in Table X's D17/D20 cells).
pub fn fmt_score(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "-1".to_string(),
    }
}

/// An ASCII histogram over `[0, 1]` with five buckets, mirroring Fig. 3's
/// PORatio ranges.
pub fn histogram5(values: &[f64]) -> Table {
    let mut counts = [0usize; 5];
    for &v in values {
        let bucket = ((v * 5.0).floor() as usize).min(4);
        counts[bucket] += 1;
    }
    let total = values.len().max(1) as f64;
    let mut table = Table::new(
        "Fig. 3 — PORatio distribution",
        &["range", "count", "percent", "bar"],
    );
    let labels = [
        "[0,0.2)",
        "[0.2,0.4)",
        "[0.4,0.6)",
        "[0.6,0.8)",
        "[0.8,1.0]",
    ];
    for (label, &count) in labels.iter().zip(&counts) {
        let pct = count as f64 / total * 100.0;
        table.row(vec![
            label.to_string(),
            count.to_string(),
            format!("{pct:.1}%"),
            "#".repeat((pct / 2.0).round() as usize),
        ]);
    }
    table
}

/// The top-`k` (name, value) pairs by value, descending.
pub fn top_k(values: &[(String, f64)], k: usize) -> Vec<(String, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    sorted.truncate(k);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", &["a", "long_header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a      long_header"));
        assert!(lines[3].starts_with("xxxxx  1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn histogram_buckets_match_fig3_ranges() {
        let t = histogram5(&[0.1, 0.85, 0.9, 1.0, 0.5]);
        assert_eq!(t.rows[0][1], "1"); // [0,0.2)
        assert_eq!(t.rows[2][1], "1"); // [0.4,0.6)
        assert_eq!(t.rows[4][1], "3"); // [0.8,1.0] — 1.0 included
    }

    #[test]
    fn top_k_sorts_descending_with_stable_ties() {
        let v = vec![
            ("b".to_string(), 0.5),
            ("a".to_string(), 0.5),
            ("c".to_string(), 0.9),
        ];
        let top = top_k(&v, 2);
        assert_eq!(top[0].0, "c");
        assert_eq!(top[1].0, "a");
    }

    #[test]
    fn fmt_score_uses_minus_one_for_missing() {
        assert_eq!(fmt_score(Some(0.876)), "0.88");
        assert_eq!(fmt_score(None), "-1");
    }

    #[test]
    fn json_roundtrip_has_all_fields() {
        let mut t = Table::new("x", &["h"]);
        t.row(vec!["v".into()]);
        let j = t.to_json();
        assert_eq!(j["title"], "x");
        assert_eq!(j["rows"][0][0], "v");
    }
}
