//! The shared experiment pipeline.
//!
//! Every §IV experiment needs the same scaffolding:
//!
//! 1. generate the knowledge datasets ([`automodel_data::suites`]);
//! 2. measure the *true* per-dataset algorithm ranking by sweeping the
//!    registry with GA-tuned CV accuracy (`P(A, D)`) — the honest analog of
//!    "what the literature's experiments would have found";
//! 3. emit a synthetic 20-paper corpus reporting those rankings with
//!    reliability-dependent noise;
//! 4. run DMD over the corpus, and evaluate on the Table XI test suite.
//!
//! [`PipelineCache`] owns the [`EvalContext`] so `P(A, D)` measurements are
//! shared across tables (exactly like the paper, where Tables VI–X reuse
//! the same underlying runs).

use automodel_core::dmd::{Dmd, DmdConfig, DmdInput};
use automodel_core::poratio::EvalContext;
use automodel_core::CoreError;
use automodel_data::suites::{knowledge_suite, paper_test_suite};
use automodel_data::Dataset;
use automodel_knowledge::{Corpus, CorpusSpec};
use automodel_ml::Registry;
use automodel_trace::Tracer;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::scale::Scale;

/// The measured knowledge layer: datasets, per-dataset sweeps and rankings,
/// and the synthetic corpus derived from them.
pub struct KnowledgeBase {
    pub datasets: BTreeMap<String, Dataset>,
    /// Per dataset: the full `P(A, D)` sweep in registry order.
    pub performances: BTreeMap<String, Vec<(String, Option<f64>)>>,
    /// Per dataset: applicable algorithms, best first.
    pub rankings: BTreeMap<String, Vec<String>>,
    pub corpus: Corpus,
}

impl KnowledgeBase {
    /// The measured best algorithm for a knowledge dataset.
    pub fn measured_best(&self, instance: &str) -> Option<&str> {
        self.rankings
            .get(instance)
            .and_then(|r| r.first())
            .map(String::as_str)
    }
}

/// Scale-aware pipeline with a shared evaluation cache.
pub struct PipelineCache {
    pub ctx: EvalContext,
    pub scale: Scale,
    pub seed: u64,
    /// Structured tracer forwarded into DMD runs (default: disabled). The
    /// `P(A, D)` sweeps stay untraced — they run on a multi-threaded
    /// executor, so their streams would interleave in scheduling order.
    pub tracer: Arc<Tracer>,
}

impl PipelineCache {
    pub fn new(registry: Registry, scale: Scale) -> PipelineCache {
        let mut ctx = EvalContext::new(registry, scale.cv_folds(), scale.tuning_budget());
        ctx.seed = 17;
        PipelineCache {
            ctx,
            scale,
            seed: 17,
            tracer: Arc::new(Tracer::disabled()),
        }
    }

    /// Attach a tracer (default: disabled).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> PipelineCache {
        self.tracer = tracer;
        self
    }

    /// Sweep one dataset across the registry (cached, parallel).
    pub fn sweep(&self, data: &Dataset) -> Vec<(String, Option<f64>)> {
        self.ctx.all_performances(data, self.scale.threads())
    }

    /// Ranking (best first) of the applicable algorithms from a sweep.
    pub fn ranking(sweep: &[(String, Option<f64>)]) -> Vec<String> {
        let mut scored: Vec<(&String, f64)> = sweep
            .iter()
            .filter_map(|(n, p)| p.map(|p| (n, p)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        scored.into_iter().map(|(n, _)| n.clone()).collect()
    }

    /// Steps 1–3: knowledge datasets → sweeps → rankings → corpus.
    pub fn build_knowledge_base(&self) -> KnowledgeBase {
        let entries = knowledge_suite(
            self.scale.knowledge_datasets(),
            self.seed,
            self.scale.knowledge_rows(),
        );
        let mut datasets = BTreeMap::new();
        let mut performances = BTreeMap::new();
        let mut rankings = BTreeMap::new();
        for entry in &entries {
            let data = entry.generate();
            let sweep = self.sweep(&data);
            let ranking = Self::ranking(&sweep);
            if ranking.len() < 2 {
                continue; // nothing learnable about this instance
            }
            performances.insert(entry.symbol.clone(), sweep);
            rankings.insert(entry.symbol.clone(), ranking);
            datasets.insert(entry.symbol.clone(), data);
        }
        let mut spec = CorpusSpec::new(rankings.clone(), self.seed ^ 0xC0);
        spec.n_papers = self.scale.corpus_papers();
        // The paper's hand-read corpus is mostly trustworthy; keep the
        // reliability-dependent error rate moderate.
        spec.noise = 0.15;
        // Report up to as many algorithms per experience as the rankings hold
        // (the paper's sources compare up to dozens of classifiers).
        let max_alg = rankings.values().map(Vec::len).min().unwrap_or(6).max(4);
        spec.algorithms_per_paper = (5.min(max_alg), 14.min(max_alg));
        spec.instances_per_paper = (
            4.min(rankings.len()),
            10.min(rankings.len()).max(4.min(rankings.len())),
        );
        let corpus = spec.build();
        KnowledgeBase {
            datasets,
            performances,
            rankings,
            corpus,
        }
    }

    /// Step 4: run DMD over the knowledge base.
    pub fn run_dmd(&self, kb: &KnowledgeBase) -> Result<Dmd, CoreError> {
        let (fs_pop, fs_gen, arch_pop, arch_gen) = self.scale.dmd_scale();
        let config = DmdConfig {
            registry: self.ctx.registry.clone(),
            min_algorithms: 3,
            fs_population: fs_pop,
            fs_generations: fs_gen,
            arch_population: arch_pop,
            arch_generations: arch_gen,
            precision: 0.0015,
            meta_cv_folds: 3,
            mlp_iter_cap: 200,
            feature_mask_override: None,
            architecture_override: None,
            seed: self.seed,
            tracer: Arc::clone(&self.tracer),
            cache: Arc::new(automodel_parallel::TrialCache::from_env_or_disabled()),
            checkpoint: None,
        };
        config.run(&DmdInput {
            experiences: kb.corpus.experiences.clone(),
            papers: kb.corpus.papers.clone(),
            datasets: kb.datasets.clone(),
        })
    }

    /// The Table XI test datasets at this scale.
    pub fn test_suite(&self) -> Vec<(String, Dataset)> {
        paper_test_suite(self.scale.test_rows())
            .into_iter()
            .take(self.scale.test_datasets())
            .map(|e| (e.symbol.clone(), e.generate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pipeline() -> PipelineCache {
        PipelineCache::new(Registry::fast(), Scale::Tiny)
    }

    #[test]
    fn knowledge_base_builds_and_ranks() {
        let pipeline = tiny_pipeline();
        let kb = pipeline.build_knowledge_base();
        assert!(
            kb.datasets.len() >= 8,
            "built {} datasets",
            kb.datasets.len()
        );
        for (name, ranking) in &kb.rankings {
            assert!(!ranking.is_empty(), "{name} has no ranking");
            // Rankings are consistent with the sweep scores.
            let sweep = &kb.performances[name];
            let score = |alg: &str| {
                sweep
                    .iter()
                    .find(|(n, _)| n == alg)
                    .and_then(|(_, p)| *p)
                    .unwrap()
            };
            for pair in ranking.windows(2) {
                assert!(
                    score(&pair[0]) >= score(&pair[1]),
                    "{name}: {} should outrank {}",
                    pair[0],
                    pair[1]
                );
            }
        }
        assert!(!kb.corpus.experiences.is_empty());
    }

    #[test]
    fn dmd_runs_over_the_knowledge_base() {
        let pipeline = tiny_pipeline();
        let kb = pipeline.build_knowledge_base();
        let dmd = pipeline.run_dmd(&kb).unwrap();
        assert!(!dmd.records.is_empty());
        let suite = pipeline.test_suite();
        assert_eq!(suite.len(), Scale::Tiny.test_datasets());
        // SNA must select an algorithm for every test dataset.
        for (symbol, data) in &suite {
            let algorithm = dmd.select_algorithm(data).unwrap();
            assert!(
                pipeline.ctx.registry.get(&algorithm).is_some(),
                "{symbol}: {algorithm}"
            );
        }
    }
}
