//! # automodel-store
//!
//! Versioned, integrity-hashed, seekable on-disk persistence for trained
//! Auto-Model decision models — and the trial-cache snapshots that let a
//! rebuild *warm-start* its meta search.
//!
//! Training DMD (Algorithms 2–4) is the expensive offline phase. This
//! crate makes its outputs durable: one artifact file holds the trained
//! SNA weights, the selected key-feature mask, the winning Table II
//! architecture, the CRelations provenance, and a snapshot of the trial
//! cache accumulated during the meta searches. `dmd build` writes it;
//! `dmd load` verifies and serves from it; a warm-started rebuild
//! restores the cache snapshot so every trial a prior run already paid
//! for replays as a warm hit — with a trial history byte-identical to
//! the cold run at any thread count.
//!
//! Layers, bottom up:
//!
//! * [`codec`] — little-endian primitives, length-prefixed strings, and
//!   the FNV-1a 64 digest; the reader side is bounds-checked and returns
//!   typed errors instead of ever panicking on hostile bytes.
//! * [`format`] — the container: `AMSTORE\0` magic, format version,
//!   section table (tag/offset/length/digest per section), header
//!   digest, packed payloads. Seekable by design; verified on open.
//! * [`artifact`] — the typed content ([`StoreArtifact`]) mapped onto
//!   sections, with canonical float bits for the architecture (matching
//!   the cache-fingerprint canonicalization) and raw float bits for
//!   cached scores (bit-exact replay).
//!
//! This crate is the workspace's **only** legal artifact-persistence
//! site (lint L14 `no-adhoc-persistence`): every other crate goes
//! through [`StoreArtifact::save`]/[`StoreArtifact::load`] instead of
//! scattering `fs::write` calls and ad-hoc formats.

pub mod artifact;
pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod format;
pub mod vfs;

pub use artifact::{
    StoreArtifact, TAG_ALGORITHMS, TAG_ARCHITECTURE, TAG_CRELATIONS, TAG_MASK, TAG_SNA_WEIGHTS,
    TAG_STANDARDIZER, TAG_TRIAL_CACHE,
};
pub use checkpoint::{
    history_fingerprint, load_latest, CheckpointState, Checkpointer, QuarantineEntry,
    RecoveryError, DEFAULT_KEEP, TAG_RUN_CURSOR, TAG_RUN_HISTORY, TAG_RUN_META, TAG_RUN_QUARANTINE,
};
pub use error::StoreError;
pub use format::{StoreReader, StoreWriter, FORMAT_VERSION, MAGIC};
pub use vfs::{atomic_write, default_vfs, read_durable, FaultVfs, StdVfs, Vfs, WRITE_ATTEMPTS};
