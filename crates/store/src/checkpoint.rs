//! Crash-recovery run checkpoints: periodic durable snapshots of an
//! optimizer run, written at batch boundaries, survivable across
//! `kill -9`.
//!
//! A [`Checkpointer`] implements `automodel_hpo`'s `CheckpointSink`: at
//! every batch boundary it packs the committed run state into an
//! `AMSTORE` container (sections below) and atomically replaces the
//! oldest of `keep` rotating *generation* files (`<base>.g0`,
//! `<base>.g1`, …). Because each write goes through
//! [`crate::vfs::atomic_write`] and the previous generation is left
//! untouched, a crash at *any* byte leaves at least one fully
//! verifiable checkpoint on disk.
//!
//! ```text
//! tag   payload
//! RMET  optimizer name, optimizer seed, checkpoint seq, trial count,
//!       recorded evals
//! RHIS  trial-history fingerprint: one "{index}|{config}#{score_bits}"
//!       line per trial (the byte-identity witness)
//! RQUA  quarantined configs: key, failure kind, message, trial index,
//!       attempts
//! TCHS  trial-cache snapshot (same payload as the trained artifact)
//! RCUR  fault-plan seed and next trial index — the deterministic
//!       seed-stream cursor
//! ```
//!
//! [`load_latest`] walks the generations, digest-verifies each, and
//! returns the one with the highest sequence number; corruption is a
//! typed [`RecoveryError`], never a panic. Resume is *replay-based*:
//! the caller restores the `TCHS` snapshot into the trial cache and
//! re-runs the search from the start — completed trials replay as warm
//! hits (paying no evaluation cost) and the cache-identity contract
//! makes the resumed history byte-identical to the uninterrupted run.
//!
//! Checkpoint writes must never take down the run they protect: write
//! failures are latched in [`Checkpointer::last_error`] and `on_batch`
//! returns `None`. The `AUTOMODEL_CRASH_AFTER=n` environment variable
//! aborts the process immediately after the `n`-th *successful*
//! checkpoint write — the kill-drill in `tests/crash_recovery.rs` uses
//! it to simulate `kill -9` at exact batch boundaries.

use crate::artifact::{decode_cache_snapshot, encode_cache_snapshot};
use crate::codec::{ByteReader, ByteWriter};
use crate::error::StoreError;
use crate::format::{StoreReader, StoreWriter};
use crate::vfs::{atomic_write, default_vfs, read_durable, Vfs};
use automodel_hpo::{CheckpointSink, RunCheckpoint};
use automodel_parallel::{CacheSnapshot, FailureKind};
use automodel_trace::TraceEvent;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Run-checkpoint metadata section.
pub const TAG_RUN_META: [u8; 4] = *b"RMET";
/// Trial-history fingerprint section.
pub const TAG_RUN_HISTORY: [u8; 4] = *b"RHIS";
/// Quarantine-state section.
pub const TAG_RUN_QUARANTINE: [u8; 4] = *b"RQUA";
/// Seed-stream cursor section.
pub const TAG_RUN_CURSOR: [u8; 4] = *b"RCUR";

/// Generations retained on disk. Two suffices: the write in flight can
/// destroy at most one, leaving the other verifiable.
pub const DEFAULT_KEEP: usize = 2;

/// Recovery could not produce a usable checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// No generation file exists at all — nothing was ever checkpointed
    /// (or the base path is wrong). Callers cold-start.
    NoCheckpoint(PathBuf),
    /// Generation files exist but none verified; each failure is
    /// recorded per path. Callers cold-start — and should say why.
    AllCorrupt(Vec<(PathBuf, StoreError)>),
    /// A checkpoint write failed (latched by the sink, surfaced at run
    /// end).
    Write(StoreError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoCheckpoint(base) => {
                write!(f, "no checkpoint found at {}", base.display())
            }
            RecoveryError::AllCorrupt(failures) => {
                write!(f, "all {} checkpoint generations corrupt:", failures.len())?;
                for (path, err) in failures {
                    write!(f, " [{}: {}]", path.display(), err)?;
                }
                Ok(())
            }
            RecoveryError::Write(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// One quarantined config as persisted in `RQUA`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// Display form of the config (the quarantine key).
    pub key: String,
    /// The failure class that exhausted the retries.
    pub kind: FailureKind,
    /// Human-readable failure detail.
    pub message: String,
    /// Trial index at which the config was quarantined.
    pub trial_index: u64,
    /// Attempts spent before giving up.
    pub attempts: u64,
}

/// A decoded, digest-verified run checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Wire name of the optimizer that wrote it.
    pub optimizer: String,
    /// The optimizer's RNG seed.
    pub seed: u64,
    /// The fault plan's seed (base of the trial retry seed stream).
    pub fault_seed: u64,
    /// Monotonic checkpoint sequence number (0-based).
    pub seq: u64,
    /// Trials recorded at the boundary.
    pub trials: u64,
    /// Budget consumed at the boundary.
    pub evals: u64,
    /// Next trial index the run would have assigned.
    pub next_index: u64,
    /// Trial-history fingerprint, one line per trial.
    pub history: String,
    /// Quarantined configs at the boundary.
    pub quarantine: Vec<QuarantineEntry>,
    /// Trial-cache snapshot — restore it to warm-replay the run.
    pub cache: CacheSnapshot,
}

/// Render the trial history as the canonical fingerprint: one
/// `"{index}|{config}#{score_bits:016x}"` line per trial. This is the
/// same shape the determinism tests compare, so checkpoint identity is
/// literally test identity.
pub fn history_fingerprint(trials: &[automodel_hpo::Trial]) -> String {
    trials
        .iter()
        .map(|t| format!("{}|{}#{:016x}\n", t.index, t.config, t.score.to_bits()))
        .collect()
}

/// Path of generation `g` under `base` (`<base>.g0`, `<base>.g1`, …).
fn generation_path(base: &Path, g: usize) -> PathBuf {
    let mut name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    name.push_str(&format!(".g{g}"));
    base.with_file_name(name)
}

fn encode_quarantine(records: &[automodel_hpo::QuarantineRecord]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(records.len() as u64);
    for r in records {
        w.put_str(&r.key);
        w.put_u8(match r.failure.kind {
            FailureKind::Panicked => 0,
            FailureKind::Diverged => 1,
            FailureKind::NonFinite => 2,
            FailureKind::TimedOut => 3,
        });
        w.put_str(&r.failure.message);
        w.put_u64(r.trial_index as u64);
        w.put_u64(r.attempts as u64);
    }
    w.into_bytes()
}

fn decode_quarantine(bytes: &[u8]) -> Result<Vec<QuarantineEntry>, StoreError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len("quarantine")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.get_str("quarantine key")?;
        let kind = match r.get_u8("quarantine kind")? {
            0 => FailureKind::Panicked,
            1 => FailureKind::Diverged,
            2 => FailureKind::NonFinite,
            3 => FailureKind::TimedOut,
            other => {
                return Err(StoreError::Malformed(format!(
                    "quarantine: failure kind {other}"
                )))
            }
        };
        let message = r.get_str("quarantine message")?;
        let trial_index = r.get_u64("quarantine trial index")?;
        let attempts = r.get_u64("quarantine attempts")?;
        out.push(QuarantineEntry {
            key,
            kind,
            message,
            trial_index,
            attempts,
        });
    }
    r.expect_end("quarantine")?;
    Ok(out)
}

/// Serialize one batch-boundary state into checkpoint container bytes.
fn encode_checkpoint(state: &RunCheckpoint<'_>, seq: u64) -> Result<Vec<u8>, StoreError> {
    let mut meta = ByteWriter::new();
    meta.put_str(state.optimizer);
    meta.put_u64(state.seed);
    meta.put_u64(seq);
    meta.put_u64(state.trials.len() as u64);
    meta.put_u64(state.evals);
    let mut cursor = ByteWriter::new();
    cursor.put_u64(state.fault_seed);
    cursor.put_u64(state.trials.len() as u64);
    let mut w = StoreWriter::new();
    w.section(TAG_RUN_META, meta.into_bytes())?;
    w.section(
        TAG_RUN_HISTORY,
        history_fingerprint(state.trials).into_bytes(),
    )?;
    w.section(
        TAG_RUN_QUARANTINE,
        encode_quarantine(state.quarantine.records()),
    )?;
    w.section(
        crate::artifact::TAG_TRIAL_CACHE,
        encode_cache_snapshot(&state.cache.snapshot()),
    )?;
    w.section(TAG_RUN_CURSOR, cursor.into_bytes())?;
    Ok(w.finish())
}

/// Decode a digest-verified checkpoint container.
fn decode_checkpoint(reader: &StoreReader) -> Result<CheckpointState, StoreError> {
    let mut meta = ByteReader::new(reader.section(TAG_RUN_META)?);
    let optimizer = meta.get_str("checkpoint optimizer")?;
    let seed = meta.get_u64("checkpoint seed")?;
    let seq = meta.get_u64("checkpoint seq")?;
    let trials = meta.get_u64("checkpoint trials")?;
    let evals = meta.get_u64("checkpoint evals")?;
    meta.expect_end("checkpoint meta")?;
    let history_bytes = reader.section(TAG_RUN_HISTORY)?;
    let history = std::str::from_utf8(history_bytes)
        .map_err(|_| StoreError::Malformed("checkpoint history: invalid utf-8".into()))?
        .to_string();
    let quarantine = decode_quarantine(reader.section(TAG_RUN_QUARANTINE)?)?;
    let cache = decode_cache_snapshot(reader.section(crate::artifact::TAG_TRIAL_CACHE)?)?;
    let mut cursor = ByteReader::new(reader.section(TAG_RUN_CURSOR)?);
    let fault_seed = cursor.get_u64("checkpoint fault seed")?;
    let next_index = cursor.get_u64("checkpoint next index")?;
    cursor.expect_end("checkpoint cursor")?;
    Ok(CheckpointState {
        optimizer,
        seed,
        fault_seed,
        seq,
        trials,
        evals,
        next_index,
        history,
        quarantine,
        cache,
    })
}

/// Load the newest verifiable checkpoint under `base`, trying all
/// `keep` generations. Returns [`RecoveryError::NoCheckpoint`] when no
/// generation file exists, [`RecoveryError::AllCorrupt`] when files
/// exist but none survives digest verification — never panics, however
/// hostile the bytes.
pub fn load_latest(base: &Path, keep: usize) -> Result<CheckpointState, RecoveryError> {
    let vfs = default_vfs();
    let mut best: Option<CheckpointState> = None;
    let mut failures: Vec<(PathBuf, StoreError)> = Vec::new();
    let mut present = 0usize;
    for g in 0..keep.max(1) {
        let path = generation_path(base, g);
        let bytes = match read_durable(vfs.as_ref(), &path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => {
                present += 1;
                failures.push((path, StoreError::from(e)));
                continue;
            }
        };
        present += 1;
        let decoded = StoreReader::open_bytes(bytes)
            .and_then(|r| r.verify_all().map(|()| r))
            .and_then(|r| decode_checkpoint(&r));
        match decoded {
            Ok(state) => {
                if best.as_ref().is_none_or(|b| state.seq > b.seq) {
                    best = Some(state);
                }
            }
            Err(e) => failures.push((path, e)),
        }
    }
    match best {
        Some(state) => Ok(state),
        None if present == 0 => Err(RecoveryError::NoCheckpoint(base.to_path_buf())),
        None => Err(RecoveryError::AllCorrupt(failures)),
    }
}

/// The durable checkpoint sink: rotates `keep` generation files under a
/// base path, writing each atomically. Cloneable into `Arc<dyn
/// CheckpointSink>`; all state is interior so `on_batch` takes `&self`.
#[derive(Debug)]
pub struct Checkpointer {
    base: PathBuf,
    keep: usize,
    vfs: Arc<dyn Vfs>,
    /// Next sequence number to assign.
    seq: AtomicU64,
    /// Successful writes so far (the crash-drill counter).
    written: AtomicU64,
    /// Abort the process after this many successful writes
    /// (`AUTOMODEL_CRASH_AFTER`); absent in normal operation.
    crash_after: Option<u64>,
    last_error: Mutex<Option<RecoveryError>>,
}

impl Checkpointer {
    /// A checkpointer writing `<base>.g0` / `<base>.g1` with the
    /// default retention, honouring `AUTOMODEL_CRASH_AFTER`.
    pub fn new(base: impl Into<PathBuf>) -> Checkpointer {
        let crash_after = std::env::var("AUTOMODEL_CRASH_AFTER")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0);
        Checkpointer {
            base: base.into(),
            keep: DEFAULT_KEEP,
            vfs: default_vfs(),
            seq: AtomicU64::new(0),
            written: AtomicU64::new(0),
            crash_after,
            last_error: Mutex::new(None),
        }
    }

    /// Override the number of retained generations (min 1).
    pub fn with_keep(mut self, keep: usize) -> Checkpointer {
        self.keep = keep.max(1);
        self
    }

    /// The base path this checkpointer rotates under.
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Successful checkpoint writes so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    /// The latched write failure, if any checkpoint write failed.
    /// Checkpointing never aborts the run it protects; callers inspect
    /// this at run end to surface degraded durability.
    pub fn last_error(&self) -> Option<RecoveryError> {
        // lint:allow(no-panic-lib): mutex poisoning requires a prior
        // panic while latching, which this module never does.
        self.last_error.lock().unwrap().clone()
    }
}

impl CheckpointSink for Checkpointer {
    fn on_batch(&self, state: &RunCheckpoint<'_>) -> Option<TraceEvent> {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let bytes = match encode_checkpoint(state, seq) {
            Ok(bytes) => bytes,
            Err(e) => {
                // lint:allow(no-panic-lib): see last_error.
                *self.last_error.lock().unwrap() = Some(RecoveryError::Write(e));
                return None;
            }
        };
        let path = generation_path(&self.base, (seq as usize) % self.keep);
        if let Err(e) = atomic_write(self.vfs.as_ref(), &path, &bytes) {
            // lint:allow(no-panic-lib): see last_error.
            *self.last_error.lock().unwrap() = Some(RecoveryError::Write(StoreError::from(e)));
            return None;
        }
        let written = self.written.fetch_add(1, Ordering::SeqCst) + 1;
        if self.crash_after == Some(written) {
            // The kill-drill's simulated `kill -9`: no unwinding, no
            // destructors, no flushes — the process just stops.
            // lint:allow(no-adhoc-print): the process aborts on the next line; a TraceEvent would die in a buffer
            eprintln!("AUTOMODEL_CRASH_AFTER: aborting after checkpoint {written}");
            std::process::abort();
        }
        Some(TraceEvent::Checkpoint {
            seq,
            trials: state.trials.len() as u64,
            bytes: bytes.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_hpo::{
        Budget, Config, Domain, FnObjective, Optimizer, OptimizerBuilder, RandomSearch, SearchSpace,
    };

    fn space1d() -> SearchSpace {
        SearchSpace::builder()
            .add("x", Domain::float(-1.0, 1.0))
            .build()
            .unwrap()
    }

    fn run_with_checkpointer(dir: &Path, evals: usize) -> (String, PathBuf) {
        let base = dir.join("run.ckpt");
        let sink = Arc::new(Checkpointer::new(&base));
        let mut obj = FnObjective(|c: &Config| -c.float_or("x", 0.0).abs());
        let out = RandomSearch::new(11)
            .with_checkpoint(sink.clone())
            .optimize(&space1d(), &mut obj, &Budget::evals(evals))
            .unwrap();
        assert!(sink.last_error().is_none());
        assert_eq!(sink.written(), evals as u64);
        (history_fingerprint(&out.trials), base)
    }

    #[test]
    fn checkpoint_round_trips_the_run_state() {
        let dir = std::env::temp_dir().join(format!("amckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (history, base) = run_with_checkpointer(&dir, 7);
        let state = load_latest(&base, DEFAULT_KEEP).unwrap();
        assert_eq!(state.optimizer, "random-search");
        assert_eq!(state.seed, 11);
        assert_eq!(state.seq, 6);
        assert_eq!(state.trials, 7);
        assert_eq!(state.next_index, 7);
        assert_eq!(state.history, history);
        assert!(state.quarantine.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generations_rotate_and_newest_wins() {
        let dir = std::env::temp_dir().join(format!("amckpt-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_, base) = run_with_checkpointer(&dir, 5);
        // 5 writes over 2 generations: g0 holds seq 4, g1 holds seq 3.
        assert!(generation_path(&base, 0).exists());
        assert!(generation_path(&base, 1).exists());
        assert_eq!(load_latest(&base, DEFAULT_KEEP).unwrap().seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupting_newest_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join(format!("amckpt-fall-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_, base) = run_with_checkpointer(&dir, 5);
        let newest = generation_path(&base, 0);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let state = load_latest(&base, DEFAULT_KEEP).unwrap();
        assert_eq!(state.seq, 3, "fallback must pick the surviving generation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_corrupt_checkpoints_are_typed_never_panic() {
        let dir = std::env::temp_dir().join(format!("amckpt-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("nothing.ckpt");
        assert!(matches!(
            load_latest(&base, DEFAULT_KEEP),
            Err(RecoveryError::NoCheckpoint(_))
        ));
        // Both generations garbage → AllCorrupt with one failure each.
        std::fs::write(generation_path(&base, 0), b"garbage").unwrap();
        std::fs::write(generation_path(&base, 1), b"more garbage").unwrap();
        match load_latest(&base, DEFAULT_KEEP) {
            Err(RecoveryError::AllCorrupt(failures)) => assert_eq!(failures.len(), 2),
            other => panic!("expected AllCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_and_bitflip_of_a_checkpoint_is_survivable() {
        // The crown-jewel corruption sweep at checkpoint scope: whatever
        // a torn write leaves in the newest generation, recovery either
        // falls back to the previous generation or fails typed.
        let dir = std::env::temp_dir().join(format!("amckpt-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (_, base) = run_with_checkpointer(&dir, 5);
        let newest = generation_path(&base, 0);
        let good = std::fs::read(&newest).unwrap();
        for len in (0..good.len()).step_by(7) {
            std::fs::write(&newest, &good[..len]).unwrap();
            let state = load_latest(&base, DEFAULT_KEEP).unwrap();
            assert_eq!(state.seq, 3, "truncation at {len} must fall back");
        }
        for i in (0..good.len()).step_by(5) {
            let mut corrupt = good.clone();
            corrupt[i] ^= 0x01;
            std::fs::write(&newest, &corrupt).unwrap();
            let state = load_latest(&base, DEFAULT_KEEP).unwrap();
            assert_eq!(state.seq, 3, "bit flip at {i} must fall back");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_replays_to_an_identical_history() {
        use automodel_parallel::TrialCache;
        let dir = std::env::temp_dir().join(format!("amckpt-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let space = space1d();
        let obj = |c: &Config| -c.float_or("x", 0.0).abs();
        let base = dir.join("run.ckpt");
        // "Interrupted" run: checkpoint every batch, stop caring at 9.
        let sink = Arc::new(Checkpointer::new(&base));
        let full = {
            let mut o = FnObjective(obj);
            RandomSearch::new(3)
                .with_cache(Arc::new(TrialCache::default()))
                .with_checkpoint(sink)
                .optimize(&space, &mut o, &Budget::evals(9))
                .unwrap()
        };
        // Resume path: restore the snapshot, re-run from the start.
        let state = load_latest(&base, DEFAULT_KEEP).unwrap();
        let cache = Arc::new(TrialCache::default());
        cache.restore(&state.cache);
        let resumed = {
            let mut o = FnObjective(|_c: &Config| panic!("must replay from cache"));
            RandomSearch::new(3)
                .with_cache(cache)
                .with_policy(automodel_hpo::TrialPolicy::default())
                .optimize(&space, &mut o, &Budget::evals(9))
                .unwrap()
        };
        assert_eq!(
            history_fingerprint(&full.trials),
            history_fingerprint(&resumed.trials),
            "warm replay must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
