//! Typed failures of the artifact store.
//!
//! Every way a persisted artifact can be wrong — truncated file, flipped
//! digest bit, unknown format version, garbage payload — maps to a
//! distinct [`StoreError`] variant. The reader never panics on hostile
//! bytes: corruption is a value, not a crash.

use std::fmt;

/// A persisted artifact could not be written, read, or verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level read/write failure (the `io::ErrorKind` plus message;
    /// `io::Error` itself is neither `Clone` nor `PartialEq`).
    Io(String),
    /// The file does not start with the `AMSTORE\0` magic — not an
    /// artifact at all.
    BadMagic,
    /// The artifact declares a format version this build cannot decode.
    UnsupportedVersion(u32),
    /// The file ends before the named structure is complete.
    Truncated(&'static str),
    /// The header digest does not match the header bytes: the section
    /// table itself cannot be trusted.
    HeaderDigest,
    /// A section's payload digest does not match its stored bytes.
    SectionDigest([u8; 4]),
    /// A section the decoder requires is absent from the table.
    MissingSection([u8; 4]),
    /// The same section tag appears twice in the table.
    DuplicateSection([u8; 4]),
    /// A digest-valid payload failed structural decoding (bad UTF-8, an
    /// unknown type tag, an impossible length).
    Malformed(String),
    /// A JSON-encoded section failed to parse back into its type.
    Json(String),
}

/// Render a section tag: ASCII where possible, hex otherwise.
fn tag_str(tag: &[u8; 4]) -> String {
    if tag.iter().all(|b| b.is_ascii_graphic()) {
        tag.iter().map(|&b| b as char).collect()
    } else {
        format!("{:02x}{:02x}{:02x}{:02x}", tag[0], tag[1], tag[2], tag[3])
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact i/o: {e}"),
            StoreError::BadMagic => write!(f, "not an AMSTORE artifact (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact format version {v}")
            }
            StoreError::Truncated(what) => write!(f, "artifact truncated reading {what}"),
            StoreError::HeaderDigest => write!(f, "artifact header digest mismatch"),
            StoreError::SectionDigest(tag) => {
                write!(f, "section '{}' digest mismatch", tag_str(tag))
            }
            StoreError::MissingSection(tag) => {
                write!(f, "required section '{}' missing", tag_str(tag))
            }
            StoreError::DuplicateSection(tag) => {
                write!(f, "section '{}' appears twice", tag_str(tag))
            }
            StoreError::Malformed(what) => write!(f, "malformed artifact payload: {what}"),
            StoreError::Json(e) => write!(f, "artifact json payload: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(format!("{} ({:?})", e, e.kind()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_site() {
        let cases: Vec<(StoreError, &str)> = vec![
            (StoreError::Io("denied".into()), "denied"),
            (StoreError::BadMagic, "magic"),
            (StoreError::UnsupportedVersion(9), "version 9"),
            (StoreError::Truncated("section table"), "section table"),
            (StoreError::HeaderDigest, "header digest"),
            (StoreError::SectionDigest(*b"SNAW"), "'SNAW'"),
            (StoreError::MissingSection(*b"ARCH"), "'ARCH'"),
            (StoreError::DuplicateSection(*b"MASK"), "'MASK'"),
            (StoreError::Malformed("bad tag".into()), "bad tag"),
            (StoreError::Json("eof".into()), "eof"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }

    #[test]
    fn non_ascii_tags_render_as_hex() {
        let err = StoreError::MissingSection([0x00, 0xff, 0x41, 0x42]);
        assert!(err.to_string().contains("00ff4142"), "{err}");
    }
}
