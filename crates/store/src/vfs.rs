//! The store's injectable filesystem — every byte the crate persists or
//! reads back flows through a [`Vfs`].
//!
//! Two implementations:
//!
//! * [`StdVfs`] — the real filesystem with *durable* semantics: writes
//!   are `fsync`ed before they count, renames are followed by a
//!   best-effort directory sync so the new name survives a crash.
//! * [`FaultVfs`] — wraps `StdVfs` and injects seeded IO faults (torn
//!   writes, short reads, ENOSPC) from the same [`FaultPlan`] hash
//!   stream that drives trial-level fault injection, keyed by a
//!   per-instance operation counter. Deterministic per seed; a guard
//!   bit keeps two consecutive operations from both faulting, so the
//!   bounded retry below always converges.
//!
//! On top of the trait sit the two durability helpers the rest of the
//! crate uses instead of raw `fs` calls (enforced by lint L15
//! `durable-write`):
//!
//! * [`atomic_write`] — write-to-temp + fsync + rename, with up to
//!   [`WRITE_ATTEMPTS`] deterministic retries on transient errors. A
//!   reader can never observe a half-written file: it sees the old
//!   bytes or the new bytes, nothing in between.
//! * [`read_durable`] — a read with the same bounded retry on
//!   transient errors. Short reads are *not* retried here: they return
//!   `Ok` with truncated bytes and are caught downstream by the
//!   container's digest verification (and, for checkpoints, by
//!   generation fallback).

use automodel_parallel::FaultPlan;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum attempts for one logical durable operation (first try plus
/// retries on transient errors).
pub const WRITE_ATTEMPTS: u32 = 3;

/// The filesystem surface the store needs. Implementations must be
/// usable from multiple threads (the checkpointer is shared behind an
/// `Arc`).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create/truncate `path` with `bytes` and make the *data* durable
    /// (`fsync`) before returning.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically replace `to` with `from`, then make the *name* durable
    /// (directory sync, best effort).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem, with fsync-on-write durability.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // lint:allow(durable-write): this is the atomic-write primitive itself
        let mut file = fs::File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)?;
        // Make the rename itself durable. Directory fsync is not
        // supported everywhere (and never on Windows); failing to sync
        // the directory weakens crash safety but does not corrupt data,
        // so it stays best-effort.
        if let Some(parent) = to.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// Marker prefix on injected fault messages; [`is_transient`] treats
/// these as retryable, mirroring how a real transient IO error would be.
const INJECTED_PREFIX: &str = "injected ";

/// A [`StdVfs`] that injects seeded IO faults per [`FaultPlan`].
///
/// Each read/write operation draws from the plan's hash stream keyed by
/// this instance's operation counter, so a given seed produces the same
/// fault schedule every run. The `last_faulted` guard clears after one
/// injection, guaranteeing the *next* operation is clean — bounded
/// retry ([`WRITE_ATTEMPTS`]) therefore always recovers.
#[derive(Debug)]
pub struct FaultVfs {
    inner: StdVfs,
    plan: FaultPlan,
    ops: AtomicU64,
    last_faulted: AtomicBool,
}

impl FaultVfs {
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            inner: StdVfs,
            plan,
            ops: AtomicU64::new(0),
            last_faulted: AtomicBool::new(false),
        }
    }

    /// Claim the next operation index and decide whether it may fault.
    /// Returns `None` when the previous operation already faulted (the
    /// guard guarantees forward progress under retry).
    fn next_op(&self) -> Option<u64> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.last_faulted.swap(false, Ordering::Relaxed) {
            None
        } else {
            Some(op)
        }
    }

    fn arm(&self) {
        self.last_faulted.store(true, Ordering::Relaxed);
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let bytes = self.inner.read(path)?;
        if let Some(op) = self.next_op() {
            if self.plan.injects_short_read(op) && bytes.len() > 1 {
                // A short read is not an error at the syscall layer: the
                // caller gets truncated bytes and the container digests
                // catch it. Truncate to roughly half.
                self.arm();
                let keep = bytes.len() / 2;
                return Ok(bytes[..keep].to_vec());
            }
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some(op) = self.next_op() {
            if self.plan.injects_enospc(op) {
                self.arm();
                return Err(io::Error::other(format!(
                    "{INJECTED_PREFIX}enospc at io op {op}"
                )));
            }
            if self.plan.injects_torn_write(op) && !bytes.is_empty() {
                // Land a partial prefix, then fail — the classic torn
                // write. The caller's retry overwrites the torn bytes.
                self.arm();
                let keep = bytes.len() / 2;
                let _ = self.inner.write(path, &bytes[..keep]);
                return Err(io::Error::other(format!(
                    "{INJECTED_PREFIX}torn write at io op {op}"
                )));
            }
        }
        self.inner.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}

/// Whether an IO error is worth retrying: OS-transient kinds, plus the
/// injected faults (which model transient conditions).
pub fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) || err.to_string().contains(INJECTED_PREFIX)
}

/// Deterministic backoff before retry `attempt` (1-based): 2^attempt ms.
fn backoff(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
}

fn temp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| "store".into(), |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Durably replace `path` with `bytes`: write a sibling `.tmp` file,
/// fsync it, rename it over `path`. Transient failures (including
/// injected torn writes and ENOSPC) are retried up to
/// [`WRITE_ATTEMPTS`] times with deterministic backoff; on final
/// failure the temp file is cleaned up and the previous contents of
/// `path` are untouched.
pub fn atomic_write(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_path(path);
    let mut last = None;
    for attempt in 0..WRITE_ATTEMPTS {
        if attempt > 0 {
            backoff(attempt);
        }
        match vfs.write(&tmp, bytes).and_then(|()| vfs.rename(&tmp, path)) {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) => last = Some(e),
            Err(e) => {
                let _ = vfs.remove(&tmp);
                return Err(e);
            }
        }
    }
    let _ = vfs.remove(&tmp);
    Err(last.unwrap_or_else(|| io::Error::other("atomic write failed")))
}

/// Read `path`, retrying transient errors up to [`WRITE_ATTEMPTS`]
/// times. Short reads come back `Ok` (see module docs) — integrity is
/// the container verifier's job, not this layer's.
pub fn read_durable(vfs: &dyn Vfs, path: &Path) -> io::Result<Vec<u8>> {
    let mut last = None;
    for attempt in 0..WRITE_ATTEMPTS {
        if attempt > 0 {
            backoff(attempt);
        }
        match vfs.read(path) {
            Ok(bytes) => return Ok(bytes),
            Err(e) if is_transient(&e) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("durable read failed")))
}

/// The process-wide default VFS: a [`FaultVfs`] when `AUTOMODEL_FAULTS`
/// carries IO-fault rates, a plain [`StdVfs`] otherwise (including when
/// the variable is malformed — entry points validate it separately).
pub fn default_vfs() -> Arc<dyn Vfs> {
    match FaultPlan::from_env() {
        Ok(plan) if plan.has_io_faults() => Arc::new(FaultVfs::new(plan)),
        _ => Arc::new(StdVfs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!("automodel_vfs_{label}_{}", std::process::id()))
    }

    #[test]
    fn std_vfs_round_trips_bytes() {
        let path = scratch("roundtrip");
        let vfs = StdVfs;
        vfs.write(&path, b"hello").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        vfs.remove(&path).unwrap();
        assert!(vfs.read(&path).is_err());
    }

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_temp() {
        let path = scratch("atomic");
        let vfs = StdVfs;
        atomic_write(&vfs, &path, b"one").unwrap();
        atomic_write(&vfs, &path, b"two").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"two");
        assert!(
            !temp_path(&path).exists(),
            "temp file must not survive a successful write"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fault_vfs_torn_write_is_recovered_by_atomic_write() {
        let path = scratch("torn");
        let _ = fs::remove_file(&path);
        // torn=1.0 faults every write op the guard allows: the first
        // attempt tears, the guarded retry lands the full payload.
        let plan = FaultPlan::parse("seed=7,torn=1.0").unwrap();
        let vfs = FaultVfs::new(plan);
        atomic_write(&vfs, &path, b"payload-bytes").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"payload-bytes");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fault_vfs_enospc_is_recovered_by_atomic_write() {
        let path = scratch("enospc");
        let _ = fs::remove_file(&path);
        let plan = FaultPlan::parse("seed=9,enospc=1.0").unwrap();
        let vfs = FaultVfs::new(plan);
        atomic_write(&vfs, &path, b"still lands").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"still lands");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fault_vfs_short_read_returns_truncated_ok() {
        let path = scratch("short");
        let vfs = StdVfs;
        vfs.write(&path, b"0123456789").unwrap();
        let plan = FaultPlan::parse("seed=3,short_read=1.0").unwrap();
        let faulty = FaultVfs::new(plan);
        let first = faulty.read(&path).unwrap();
        assert_eq!(first, b"01234", "short read truncates to half");
        // The guard makes the very next read clean.
        let second = faulty.read(&path).unwrap();
        assert_eq!(second, b"0123456789");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let plan = FaultPlan::parse("seed=5,torn=0.3,short_read=0.3,enospc=0.2").unwrap();
        let a: Vec<bool> = (0..64).map(|op| plan.injects_torn_write(op)).collect();
        let b: Vec<bool> = (0..64).map(|op| plan.injects_torn_write(op)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "rate 0.3 over 64 ops should fire");
    }

    #[test]
    fn injected_errors_are_transient_real_missing_file_is_not() {
        assert!(is_transient(&io::Error::other(
            "injected enospc at io op 3"
        )));
        assert!(is_transient(&io::Error::from(io::ErrorKind::Interrupted)));
        assert!(!is_transient(&io::Error::from(io::ErrorKind::NotFound)));
    }
}
