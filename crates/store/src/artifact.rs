//! The typed content of a DMD artifact, mapped onto container sections.
//!
//! | tag    | payload |
//! |--------|---------|
//! | `ALGS` | registry algorithm names at training time, OneHot' order |
//! | `MASK` | the Algorithm 2 key-feature mask, one byte per feature |
//! | `STDZ` | the feature standardizer, JSON |
//! | `SNAW` | the trained SNA regressor (weights), JSON |
//! | `ARCH` | the winning Table II configuration, binary typed values |
//! | `CREL` | `(instance, algorithm)` CRelations provenance pairs |
//! | `TCHS` | the trial-cache snapshot, FIFO order |
//!
//! `ARCH` floats are stored as [`canonical_f64_bits`] — the same
//! canonicalization the trial cache's fingerprints use, so an
//! architecture read back from disk fingerprints identically to the one
//! that was written. `TCHS` scores are stored as *raw* `f64` bits: a
//! replayed cached score must be bit-exact (the warm-start identity
//! contract diffs trial histories by bits, and canonicalizing `-0.0`
//! would change them).
//!
//! JSON sections (`STDZ`, `SNAW`) are digest-protected byte-for-byte
//! like every other section; their float *text* is serde_json's, which
//! round-trips within one ulp — fine for serving scores, which is all
//! the weights are used for.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::StoreError;
use crate::format::{StoreReader, StoreWriter};
use automodel_data::encoding::VecStandardizer;
use automodel_hpo::{Config, ParamValue};
use automodel_nn::MlpRegressor;
use automodel_parallel::{CacheSnapshot, CachedTrial, TrialOutcome};
use automodel_trace::canonical_f64_bits;
use std::path::Path;

pub const TAG_ALGORITHMS: [u8; 4] = *b"ALGS";
pub const TAG_MASK: [u8; 4] = *b"MASK";
pub const TAG_STANDARDIZER: [u8; 4] = *b"STDZ";
pub const TAG_SNA_WEIGHTS: [u8; 4] = *b"SNAW";
pub const TAG_ARCHITECTURE: [u8; 4] = *b"ARCH";
pub const TAG_CRELATIONS: [u8; 4] = *b"CREL";
pub const TAG_TRIAL_CACHE: [u8; 4] = *b"TCHS";

/// Everything a deployment needs to serve a trained DMD — plus the
/// trial-cache snapshot that lets a rebuild warm-start its meta search.
#[derive(Debug, Clone)]
pub struct StoreArtifact {
    /// Registry algorithm names at training time, in OneHot' order.
    pub algorithms: Vec<String>,
    /// The Algorithm 2 key-feature mask.
    pub key_features: Vec<bool>,
    /// The feature standardizer fitted on the training CRelations.
    pub standardizer: VecStandardizer,
    /// The trained SNA regressor.
    pub sna: MlpRegressor,
    /// The winning Table II architecture.
    pub architecture: Config,
    /// `(instance, algorithm)` provenance of the training knowledge.
    pub crelations: Vec<(String, String)>,
    /// Trial-cache snapshot taken after training (warm-start seed).
    pub cache: CacheSnapshot,
}

fn encode_strings(items: impl ExactSizeIterator<Item = impl AsRef<str>>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(items.len() as u64);
    for s in items {
        w.put_str(s.as_ref());
    }
    w.into_bytes()
}

fn encode_mask(mask: &[bool]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(mask.len() as u64);
    for &b in mask {
        w.put_u8(u8::from(b));
    }
    w.into_bytes()
}

fn encode_config(config: &Config) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(config.len() as u64);
    for (name, value) in config.iter() {
        w.put_str(name);
        match value {
            ParamValue::Int(i) => {
                w.put_u8(0);
                w.put_i64(*i);
            }
            ParamValue::Float(x) => {
                w.put_u8(1);
                w.put_u64(canonical_f64_bits(*x));
            }
            ParamValue::Cat(c) => {
                w.put_u8(2);
                w.put_u64(*c as u64);
            }
            ParamValue::Bool(b) => {
                w.put_u8(3);
                w.put_u8(u8::from(*b));
            }
        }
    }
    w.into_bytes()
}

fn encode_crelations(pairs: &[(String, String)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(pairs.len() as u64);
    for (instance, algorithm) in pairs {
        w.put_str(instance);
        w.put_str(algorithm);
    }
    w.into_bytes()
}

fn encode_cache(snapshot: &CacheSnapshot) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(snapshot.entries.len() as u64);
    for (key, trial) in &snapshot.entries {
        w.put_str(key);
        w.put_u64(trial.attempts as u64);
        match &trial.outcome {
            TrialOutcome::Ok(score) => {
                w.put_u8(0);
                // Raw bits: a replayed score must be bit-exact, so -0.0
                // and any other representable value survive unchanged.
                w.put_u64(score.to_bits());
            }
            TrialOutcome::Panicked(msg) => {
                w.put_u8(1);
                w.put_str(msg);
            }
            TrialOutcome::Diverged(msg) => {
                w.put_u8(2);
                w.put_str(msg);
            }
            TrialOutcome::NonFinite => w.put_u8(3),
            TrialOutcome::TimedOut => w.put_u8(4),
        }
    }
    w.into_bytes()
}

fn decode_strings(bytes: &[u8], what: &'static str) -> Result<Vec<String>, StoreError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len(what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_str(what)?);
    }
    r.expect_end(what)?;
    Ok(out)
}

fn decode_mask(bytes: &[u8]) -> Result<Vec<bool>, StoreError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len("feature mask")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match r.get_u8("feature mask")? {
            0 => out.push(false),
            1 => out.push(true),
            other => {
                return Err(StoreError::Malformed(format!(
                    "feature mask: flag byte {other}"
                )))
            }
        }
    }
    r.expect_end("feature mask")?;
    Ok(out)
}

fn decode_config(bytes: &[u8]) -> Result<Config, StoreError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len("architecture")?;
    let mut config = Config::new();
    for _ in 0..n {
        let name = r.get_str("architecture param name")?;
        let value = match r.get_u8("architecture type tag")? {
            0 => ParamValue::Int(r.get_i64("architecture int")?),
            1 => ParamValue::Float(f64::from_bits(r.get_u64("architecture float")?)),
            2 => ParamValue::Cat(r.get_u64("architecture cat")? as usize),
            3 => match r.get_u8("architecture bool")? {
                0 => ParamValue::Bool(false),
                1 => ParamValue::Bool(true),
                other => {
                    return Err(StoreError::Malformed(format!(
                        "architecture: bool byte {other}"
                    )))
                }
            },
            other => {
                return Err(StoreError::Malformed(format!(
                    "architecture: type tag {other}"
                )))
            }
        };
        config.set(name, value);
    }
    r.expect_end("architecture")?;
    Ok(config)
}

fn decode_crelations(bytes: &[u8]) -> Result<Vec<(String, String)>, StoreError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len("crelations")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let instance = r.get_str("crelations instance")?;
        let algorithm = r.get_str("crelations algorithm")?;
        out.push((instance, algorithm));
    }
    r.expect_end("crelations")?;
    Ok(out)
}

/// Encode a cache snapshot as `TCHS` payload bytes. Public so harnesses
/// (e.g. `exp_warmstart`) can persist a snapshot standalone without a
/// full trained artifact.
pub fn encode_cache_snapshot(snapshot: &CacheSnapshot) -> Vec<u8> {
    encode_cache(snapshot)
}

/// Decode `TCHS` payload bytes back into a cache snapshot.
pub fn decode_cache_snapshot(bytes: &[u8]) -> Result<CacheSnapshot, StoreError> {
    decode_cache(bytes)
}

fn decode_cache(bytes: &[u8]) -> Result<CacheSnapshot, StoreError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_len("trial cache")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.get_str("trial cache key")?;
        let attempts = r.get_u64("trial cache attempts")? as usize;
        let outcome = match r.get_u8("trial cache outcome tag")? {
            0 => TrialOutcome::Ok(f64::from_bits(r.get_u64("trial cache score")?)),
            1 => TrialOutcome::Panicked(r.get_str("trial cache message")?),
            2 => TrialOutcome::Diverged(r.get_str("trial cache message")?),
            3 => TrialOutcome::NonFinite,
            4 => TrialOutcome::TimedOut,
            other => {
                return Err(StoreError::Malformed(format!(
                    "trial cache: outcome tag {other}"
                )))
            }
        };
        entries.push((key, CachedTrial { outcome, attempts }));
    }
    r.expect_end("trial cache")?;
    Ok(CacheSnapshot { entries })
}

impl StoreArtifact {
    /// Serialize into the container format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let mut w = StoreWriter::new();
        w.section(TAG_ALGORITHMS, encode_strings(self.algorithms.iter()))?;
        w.section(TAG_MASK, encode_mask(&self.key_features))?;
        let stdz = serde_json::to_string(&self.standardizer)
            .map_err(|e| StoreError::Json(e.to_string()))?;
        w.section(TAG_STANDARDIZER, stdz.into_bytes())?;
        let sna = serde_json::to_string(&self.sna).map_err(|e| StoreError::Json(e.to_string()))?;
        w.section(TAG_SNA_WEIGHTS, sna.into_bytes())?;
        w.section(TAG_ARCHITECTURE, encode_config(&self.architecture))?;
        w.section(TAG_CRELATIONS, encode_crelations(&self.crelations))?;
        w.section(TAG_TRIAL_CACHE, encode_cache(&self.cache))?;
        Ok(w.finish())
    }

    /// Durably write to `path` via [`crate::vfs::atomic_write`]: a crash
    /// mid-save leaves either the previous artifact or the new one,
    /// never a torn hybrid.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let bytes = self.to_bytes()?;
        Ok(crate::vfs::atomic_write(
            crate::vfs::default_vfs().as_ref(),
            path,
            &bytes,
        )?)
    }

    /// Decode from a verified [`StoreReader`] (each section is
    /// digest-checked as it is pulled).
    pub fn from_reader(reader: &StoreReader) -> Result<StoreArtifact, StoreError> {
        let algorithms = decode_strings(reader.section(TAG_ALGORITHMS)?, "algorithms")?;
        let key_features = decode_mask(reader.section(TAG_MASK)?)?;
        let stdz_bytes = reader.section(TAG_STANDARDIZER)?;
        let stdz_text = std::str::from_utf8(stdz_bytes)
            .map_err(|_| StoreError::Malformed("standardizer: invalid utf-8".into()))?;
        let standardizer: VecStandardizer =
            serde_json::from_str(stdz_text).map_err(|e| StoreError::Json(e.to_string()))?;
        let sna_bytes = reader.section(TAG_SNA_WEIGHTS)?;
        let sna_text = std::str::from_utf8(sna_bytes)
            .map_err(|_| StoreError::Malformed("sna weights: invalid utf-8".into()))?;
        let sna: MlpRegressor =
            serde_json::from_str(sna_text).map_err(|e| StoreError::Json(e.to_string()))?;
        let architecture = decode_config(reader.section(TAG_ARCHITECTURE)?)?;
        let crelations = decode_crelations(reader.section(TAG_CRELATIONS)?)?;
        let cache = decode_cache(reader.section(TAG_TRIAL_CACHE)?)?;
        Ok(StoreArtifact {
            algorithms,
            key_features,
            standardizer,
            sna,
            architecture,
            crelations,
            cache,
        })
    }

    /// Decode from raw bytes (header + all used sections verified).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<StoreArtifact, StoreError> {
        StoreArtifact::from_reader(&StoreReader::open_bytes(bytes)?)
    }

    /// Read and decode the artifact at `path` (transient-retrying read;
    /// see [`crate::vfs::read_durable`]).
    pub fn load(path: &Path) -> Result<StoreArtifact, StoreError> {
        StoreArtifact::from_bytes(crate::vfs::read_durable(
            crate::vfs::default_vfs().as_ref(),
            path,
        )?)
    }
}
