//! Byte-level primitives of the artifact format.
//!
//! Everything in an artifact reduces to four shapes, all little-endian:
//! fixed-width integers, length-prefixed UTF-8 strings, raw byte runs,
//! and FNV-1a 64 digests over byte runs. The writer is infallible (it
//! appends to a growable buffer); the reader returns
//! [`StoreError::Truncated`] or [`StoreError::Malformed`] instead of ever
//! indexing out of bounds — hostile bytes must produce errors, not
//! panics.

use crate::error::StoreError;

/// FNV-1a 64-bit over a byte run — tiny, stable, dependency-free; the
/// same construction the workspace diagnostics use. Artifact digests are
/// integrity checks against truncation and bit rot, not authentication.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `u64` length prefix + UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Every payload decoder ends with this: leftover bytes mean the
    /// declared counts did not cover the section, i.e. corruption the
    /// digest could not catch (it was computed over the same bad bytes).
    pub fn expect_end(&self, what: &'static str) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::Malformed(format!(
                "{what}: {} trailing byte(s)",
                self.remaining()
            )))
        }
    }

    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StoreError::Truncated(what))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        // lint:allow(no-panic-lib): take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        // lint:allow(no-panic-lib): take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub fn get_i64(&mut self, what: &'static str) -> Result<i64, StoreError> {
        let b = self.take(8, what)?;
        // lint:allow(no-panic-lib): take(8) returned exactly 8 bytes
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// A length the payload must actually contain. Guards the "4 GiB
    /// count in a 40-byte file" class of hostile input before any
    /// allocation sized by it.
    pub fn get_len(&mut self, what: &'static str) -> Result<usize, StoreError> {
        let n = self.get_u64(what)?;
        if n > self.remaining() as u64 {
            return Err(StoreError::Truncated(what));
        }
        Ok(n as usize)
    }

    pub fn get_str(&mut self, what: &'static str) -> Result<String, StoreError> {
        let n = self.get_len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Malformed(format!("{what}: invalid utf-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64("d").unwrap(), -42);
        assert_eq!(r.get_str("e").unwrap(), "héllo");
        assert!(r.expect_end("buffer").is_ok());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(9); // declares 9 bytes of string that never follow
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str("s").unwrap_err(), StoreError::Truncated("s"));

        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32("int"),
            Err(StoreError::Truncated("int"))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // a length no file could hold
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_len("len"),
            Err(StoreError::Truncated("len"))
        ));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = ByteWriter::new();
        w.put_u64(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str("s"), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut r = ByteReader::new(&[0u8; 3]);
        let _ = r.get_u8("x").unwrap();
        assert!(matches!(
            r.expect_end("payload"),
            Err(StoreError::Malformed(_))
        ));
    }
}
