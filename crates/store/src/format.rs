//! The on-disk container: header, section table, digests.
//!
//! ```text
//! offset  size  field
//! 0       8     magic "AMSTORE\0"
//! 8       4     format version (u32 LE) — currently 1
//! 12      4     section count N (u32 LE)
//! 16      28·N  section table: [tag: 4 ASCII bytes][offset: u64]
//!               [len: u64][fnv1a64(payload): u64]
//! 16+28N  8     fnv1a64 of bytes [0, 16+28N) — the header digest
//! …             section payloads, packed in table order
//! ```
//!
//! Offsets are absolute file offsets, so a reader can verify the header
//! digest, then seek straight to any one section — loading the
//! architecture does not require paging in the SNA weights. This build
//! reads the whole file in one `fs::read` (memory-mapping needs `unsafe`,
//! which the workspace denies), but the format stays seekable for any
//! future reader.
//!
//! Verification order on load: magic → version → table bounds → header
//! digest → per-section digest (each section only when accessed, or all
//! at once via [`StoreReader::verify_all`]). Every failure is a typed
//! [`StoreError`]; hostile bytes can never panic the reader.

use crate::codec::{fnv1a64, ByteReader, ByteWriter};
use crate::error::StoreError;
use std::path::Path;

/// First 8 bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"AMSTORE\0";

/// The one format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes per section-table row: tag + offset + len + digest.
const TABLE_ROW: usize = 4 + 8 + 8 + 8;

/// One section-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Row {
    tag: [u8; 4],
    offset: u64,
    len: u64,
    digest: u64,
}

/// Assembles an artifact: sections are appended, the header and digests
/// are derived at [`StoreWriter::finish`].
#[derive(Debug, Default)]
pub struct StoreWriter {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl StoreWriter {
    pub fn new() -> StoreWriter {
        StoreWriter::default()
    }

    /// Append one section. Duplicate tags are a writer bug surfaced as
    /// [`StoreError::DuplicateSection`] (the reader enforces the same
    /// law, so a corrupt writer cannot produce a readable file).
    pub fn section(&mut self, tag: [u8; 4], payload: Vec<u8>) -> Result<(), StoreError> {
        if self.sections.iter().any(|(t, _)| *t == tag) {
            return Err(StoreError::DuplicateSection(tag));
        }
        self.sections.push((tag, payload));
        Ok(())
    }

    /// Serialize: header, table, header digest, payloads.
    pub fn finish(self) -> Vec<u8> {
        let header_len = 16 + TABLE_ROW * self.sections.len();
        let mut payload_offset = (header_len + 8) as u64; // + header digest
        let mut head = ByteWriter::new();
        head.put_bytes(&MAGIC);
        head.put_u32(FORMAT_VERSION);
        head.put_u32(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            head.put_bytes(tag);
            head.put_u64(payload_offset);
            head.put_u64(payload.len() as u64);
            head.put_u64(fnv1a64(payload));
            payload_offset += payload.len() as u64;
        }
        let mut out = head.into_bytes();
        let digest = fnv1a64(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        for (_, payload) in self.sections {
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Serialize and durably write to `path` (the workspace's single
    /// legal artifact-persistence site; see lint L14
    /// `no-adhoc-persistence`). Goes through [`crate::vfs::atomic_write`]
    /// — temp file, fsync, rename — so a crash mid-write can never leave
    /// a half-written container behind (lint L15 `durable-write`).
    pub fn write_to(self, path: &Path) -> Result<(), StoreError> {
        Ok(crate::vfs::atomic_write(
            crate::vfs::default_vfs().as_ref(),
            path,
            &self.finish(),
        )?)
    }
}

/// A parsed, header-verified artifact. Section payloads are
/// digest-checked on access.
#[derive(Debug)]
pub struct StoreReader {
    bytes: Vec<u8>,
    rows: Vec<Row>,
}

impl StoreReader {
    /// Parse and verify the header and section table of `bytes`.
    pub fn open_bytes(bytes: Vec<u8>) -> Result<StoreReader, StoreError> {
        let mut r = ByteReader::new(&bytes);
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.get_u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let count = r.get_u32("section count")? as usize;
        let header_len = 16usize
            .checked_add(
                TABLE_ROW
                    .checked_mul(count)
                    .ok_or(StoreError::Truncated("section table"))?,
            )
            .ok_or(StoreError::Truncated("section table"))?;
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let tag_bytes = r.take(4, "section tag")?;
            // lint:allow(no-panic-lib): take(4) returned exactly 4 bytes
            let tag: [u8; 4] = tag_bytes.try_into().expect("4-byte slice");
            let offset = r.get_u64("section offset")?;
            let len = r.get_u64("section length")?;
            let digest = r.get_u64("section digest")?;
            rows.push(Row {
                tag,
                offset,
                len,
                digest,
            });
        }
        let stored_header_digest = r.get_u64("header digest")?;
        if fnv1a64(&bytes[..header_len]) != stored_header_digest {
            return Err(StoreError::HeaderDigest);
        }
        for (i, row) in rows.iter().enumerate() {
            if rows[..i].iter().any(|prev| prev.tag == row.tag) {
                return Err(StoreError::DuplicateSection(row.tag));
            }
            row.offset
                .checked_add(row.len)
                .filter(|&e| e <= bytes.len() as u64)
                .ok_or(StoreError::Truncated("section payload"))?;
        }
        Ok(StoreReader { bytes, rows })
    }

    /// Read and verify the artifact at `path`. Reads through
    /// [`crate::vfs::read_durable`], which retries transient IO errors;
    /// anything that still comes back wrong (e.g. an injected short
    /// read) fails digest verification below.
    pub fn open(path: &Path) -> Result<StoreReader, StoreError> {
        StoreReader::open_bytes(crate::vfs::read_durable(
            crate::vfs::default_vfs().as_ref(),
            path,
        )?)
    }

    /// Tags present, in table order.
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.rows.iter().map(|r| r.tag).collect()
    }

    /// Total payload bytes across all sections.
    pub fn payload_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.len).sum()
    }

    /// The digest-verified payload of `tag`.
    pub fn section(&self, tag: [u8; 4]) -> Result<&[u8], StoreError> {
        let row = self
            .rows
            .iter()
            .find(|r| r.tag == tag)
            .ok_or(StoreError::MissingSection(tag))?;
        let start = row.offset as usize;
        let end = start + row.len as usize; // bounds proven in open_bytes
        let payload = &self.bytes[start..end];
        if fnv1a64(payload) != row.digest {
            return Err(StoreError::SectionDigest(tag));
        }
        Ok(payload)
    }

    /// Digest-verify every section (a full integrity sweep).
    pub fn verify_all(&self) -> Result<(), StoreError> {
        for row in &self.rows {
            self.section(row.tag)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_artifact() -> Vec<u8> {
        let mut w = StoreWriter::new();
        w.section(*b"AAAA", b"first payload".to_vec()).unwrap();
        w.section(*b"BBBB", vec![0u8; 64]).unwrap();
        w.finish()
    }

    #[test]
    fn round_trips_sections_in_order() {
        let bytes = two_section_artifact();
        let reader = StoreReader::open_bytes(bytes).unwrap();
        assert_eq!(reader.tags(), vec![*b"AAAA", *b"BBBB"]);
        assert_eq!(reader.section(*b"AAAA").unwrap(), b"first payload");
        assert_eq!(reader.section(*b"BBBB").unwrap(), &[0u8; 64][..]);
        assert_eq!(reader.payload_bytes(), 13 + 64);
        assert!(reader.verify_all().is_ok());
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        assert_eq!(
            StoreReader::open_bytes(b"NOTSTORE........".to_vec()).unwrap_err(),
            StoreError::BadMagic
        );
        let mut bytes = two_section_artifact();
        bytes[8] = 99; // version field
        assert_eq!(
            StoreReader::open_bytes(bytes).unwrap_err(),
            StoreError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn every_truncation_point_is_an_error() {
        let full = two_section_artifact();
        for len in 0..full.len() {
            let outcome =
                StoreReader::open_bytes(full[..len].to_vec()).and_then(|r| r.verify_all());
            assert!(outcome.is_err(), "truncation at {len} was accepted");
        }
    }

    #[test]
    fn flipping_any_byte_fails_some_digest() {
        let full = two_section_artifact();
        for i in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[i] ^= 0x01;
            let outcome = StoreReader::open_bytes(corrupt).and_then(|r| r.verify_all());
            assert!(outcome.is_err(), "flipped byte {i} went unnoticed");
        }
    }

    #[test]
    fn missing_and_duplicate_sections_are_typed() {
        let reader = StoreReader::open_bytes(two_section_artifact()).unwrap();
        assert_eq!(
            reader.section(*b"ZZZZ").unwrap_err(),
            StoreError::MissingSection(*b"ZZZZ")
        );
        let mut w = StoreWriter::new();
        w.section(*b"AAAA", vec![1]).unwrap();
        assert_eq!(
            w.section(*b"AAAA", vec![2]).unwrap_err(),
            StoreError::DuplicateSection(*b"AAAA")
        );
    }

    #[test]
    fn empty_artifact_is_valid() {
        let reader = StoreReader::open_bytes(StoreWriter::new().finish()).unwrap();
        assert!(reader.tags().is_empty());
        assert!(reader.verify_all().is_ok());
    }
}
