//! Full-artifact round-trip and corruption tests: a realistic
//! [`StoreArtifact`] — trained MLP weights, fitted standardizer, mixed
//! typed architecture, failure-carrying cache snapshot — must survive
//! encode → decode bit-for-bit, and every way of damaging the bytes must
//! come back as a typed [`StoreError`], never a panic. The in-crate
//! `format` tests cover the container with toy payloads; these cover the
//! typed layer with real content.

use automodel_data::encoding::VecStandardizer;
use automodel_hpo::{Config, ParamValue};
use automodel_nn::{MlpConfig, MlpRegressor};
use automodel_parallel::{CacheSnapshot, CachedTrial, TrialOutcome};
use automodel_store::{StoreArtifact, StoreError, StoreReader, FORMAT_VERSION};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small but real artifact: the MLP is actually trained (non-trivial
/// weights), the standardizer actually fitted, and the cache snapshot
/// carries every [`TrialOutcome`] variant plus awkward float values.
fn realistic_artifact(seed: u64) -> StoreArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..40)
        .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![(x[0] - x[2]).tanh()]).collect();
    let mut sna = MlpRegressor::new(MlpConfig {
        hidden_layers: 1,
        hidden_size: 4,
        max_iter: 10,
        seed: seed.wrapping_add(7),
        ..MlpConfig::default()
    });
    sna.fit(&xs, &ys);

    let mut architecture = Config::new();
    architecture.set("hidden_layers".to_string(), ParamValue::Int(2));
    architecture.set("hidden_size".to_string(), ParamValue::Cat(1));
    architecture.set("momentum".to_string(), ParamValue::Float(0.9));
    architecture.set("nesterov".to_string(), ParamValue::Bool(true));

    let cache = CacheSnapshot {
        entries: vec![
            (
                "a=1;b=relu".to_string(),
                CachedTrial {
                    outcome: TrialOutcome::Ok(-0.0),
                    attempts: 1,
                },
            ),
            (
                "a=2;b=tanh".to_string(),
                CachedTrial {
                    outcome: TrialOutcome::Ok(f64::MIN_POSITIVE),
                    attempts: 1,
                },
            ),
            (
                "a=3;b=識別".to_string(),
                CachedTrial {
                    outcome: TrialOutcome::Panicked("boom \u{0} bytes".to_string()),
                    attempts: 3,
                },
            ),
            (
                "a=4".to_string(),
                CachedTrial {
                    outcome: TrialOutcome::Diverged("nan loss".to_string()),
                    attempts: 2,
                },
            ),
            (
                "a=5".to_string(),
                CachedTrial {
                    outcome: TrialOutcome::NonFinite,
                    attempts: 1,
                },
            ),
            (
                "a=6".to_string(),
                CachedTrial {
                    outcome: TrialOutcome::TimedOut,
                    attempts: 4,
                },
            ),
        ],
    };

    StoreArtifact {
        algorithms: vec![
            "J48".to_string(),
            "NaiveBayes".to_string(),
            "RandomForest".to_string(),
        ],
        key_features: (0..23).map(|i| i % 3 != 0).collect(),
        standardizer: VecStandardizer::fit(&xs),
        sna,
        architecture,
        crelations: vec![
            ("wine".to_string(), "J48".to_string()),
            ("iris-拡張".to_string(), "NaiveBayes".to_string()),
        ],
        cache,
    }
}

fn assert_artifacts_equal(a: &StoreArtifact, b: &StoreArtifact) {
    assert_eq!(a.algorithms, b.algorithms);
    assert_eq!(a.key_features, b.key_features);
    assert_eq!(a.crelations, b.crelations);
    assert_eq!(a.cache, b.cache, "cache snapshot must be bit-exact");
    // Config equality must hold down to float bits (−0.0 ≠ 0.0 here is
    // fine as long as the round trip preserves what was written).
    assert_eq!(
        format!("{:?}", a.architecture),
        format!("{:?}", b.architecture)
    );
    // Weights travel as JSON; the decoded regressor must predict
    // identically to within JSON float-text round-off (≤ 1 ulp).
    let probe: Vec<f64> = vec![0.3, -0.4, 0.1];
    for (ya, yb) in a.sna.predict(&probe).iter().zip(b.sna.predict(&probe)) {
        assert!((ya - yb).abs() < 1e-12, "{ya} vs {yb}");
    }
    let ta = a.standardizer.transform(&probe);
    let tb = b.standardizer.transform(&probe);
    for (va, vb) in ta.iter().zip(&tb) {
        assert!((va - vb).abs() < 1e-12, "{va} vs {vb}");
    }
}

#[test]
fn realistic_artifacts_round_trip_for_several_seeds() {
    for seed in [3u64, 17, 4051] {
        let artifact = realistic_artifact(seed);
        let bytes = artifact.to_bytes().expect("encodes");
        let restored = StoreArtifact::from_bytes(bytes).expect("decodes");
        assert_artifacts_equal(&artifact, &restored);
    }
}

/// `ARCH` floats travel as canonical bits — the same canonicalization
/// the cache fingerprints use — so `-0.0` reads back as `0.0` and the
/// restored architecture fingerprints identically to the written one.
/// (`TCHS` scores, by contrast, travel raw: the round-trip tests above
/// include an `Ok(-0.0)` cache entry that must survive bit-exact.)
#[test]
fn architecture_floats_are_canonicalized_on_write() {
    let mut artifact = realistic_artifact(13);
    artifact
        .architecture
        .set("zero".to_string(), ParamValue::Float(-0.0));
    let restored =
        StoreArtifact::from_bytes(artifact.to_bytes().expect("encodes")).expect("decodes");
    let rendered = format!("{:?}", restored.architecture);
    assert!(
        rendered.contains("\"zero\": Float(0.0)") && !rendered.contains("-0.0"),
        "ARCH must store canonical float bits: {rendered}"
    );
}

#[test]
fn encoding_is_deterministic() {
    let a = realistic_artifact(11).to_bytes().expect("encodes");
    let b = realistic_artifact(11).to_bytes().expect("encodes");
    assert_eq!(a, b, "same artifact must serialize to the same bytes");
}

#[test]
fn save_load_round_trips_through_a_file() {
    let artifact = realistic_artifact(29);
    let path = std::env::temp_dir().join(format!("amstore_rt_{}.store", std::process::id()));
    artifact.save(&path).expect("saves");
    let restored = StoreArtifact::load(&path).expect("loads");
    let _ = std::fs::remove_file(&path);
    assert_artifacts_equal(&artifact, &restored);
}

#[test]
fn every_truncation_of_a_real_artifact_is_a_typed_error() {
    let bytes = realistic_artifact(5).to_bytes().expect("encodes");
    for len in 0..bytes.len() {
        let result = StoreArtifact::from_bytes(bytes[..len].to_vec());
        assert!(
            result.is_err(),
            "prefix of {len}/{} bytes decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_of_a_real_artifact_is_a_typed_error() {
    let bytes = realistic_artifact(5).to_bytes().expect("encodes");
    // One flipped bit per byte position: either a digest catches it or a
    // typed decode error does — an `Ok` would mean silent corruption.
    for i in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 0x01;
        let result = StoreArtifact::from_bytes(damaged);
        assert!(result.is_err(), "flipping byte {i} went undetected");
    }
}

#[test]
fn wrong_version_and_magic_fail_with_the_specific_variant() {
    let bytes = realistic_artifact(5).to_bytes().expect("encodes");

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        StoreArtifact::from_bytes(wrong_magic),
        Err(StoreError::BadMagic)
    ));

    let mut wrong_version = bytes;
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    wrong_version[8..12].copy_from_slice(&future);
    assert!(matches!(
        StoreArtifact::from_bytes(wrong_version),
        Err(StoreError::UnsupportedVersion(v)) if v == FORMAT_VERSION + 1
    ));
}

#[test]
fn missing_section_reports_its_tag() {
    // A valid container that simply lacks the SNAW section: the typed
    // layer must name the missing tag rather than index out of bounds.
    let artifact = realistic_artifact(5);
    let mut writer = automodel_store::StoreWriter::new();
    writer
        .section(
            automodel_store::TAG_TRIAL_CACHE,
            automodel_store::artifact::encode_cache_snapshot(&artifact.cache),
        )
        .expect("fresh writer accepts the tag");
    let bytes = writer.finish();
    let reader = StoreReader::open_bytes(bytes).expect("container itself is valid");
    let err = StoreArtifact::from_reader(&reader).expect_err("artifact is incomplete");
    assert!(
        matches!(err, StoreError::MissingSection(tag) if tag == automodel_store::TAG_ALGORITHMS)
    );
}

#[test]
fn garbage_inside_a_digest_valid_section_is_a_typed_error() {
    // Corruption *before* hashing: the digests all verify, so the typed
    // decoders are the last line of defense and must error, not panic.
    let artifact = realistic_artifact(5);
    let mut writer = automodel_store::StoreWriter::new();
    writer
        .section(automodel_store::TAG_ALGORITHMS, vec![0xFF; 12])
        .expect("fresh writer accepts the tag");
    writer
        .section(automodel_store::TAG_MASK, b"not a mask".to_vec())
        .expect("fresh writer accepts the tag");
    writer
        .section(automodel_store::TAG_STANDARDIZER, b"{broken json".to_vec())
        .expect("fresh writer accepts the tag");
    writer
        .section(automodel_store::TAG_SNA_WEIGHTS, vec![0xC0, 0xAF])
        .expect("fresh writer accepts the tag");
    writer
        .section(automodel_store::TAG_ARCHITECTURE, vec![9; 30])
        .expect("fresh writer accepts the tag");
    writer
        .section(automodel_store::TAG_CRELATIONS, vec![1])
        .expect("fresh writer accepts the tag");
    writer
        .section(
            automodel_store::TAG_TRIAL_CACHE,
            automodel_store::artifact::encode_cache_snapshot(&artifact.cache),
        )
        .expect("fresh writer accepts the tag");
    let bytes = writer.finish();
    let reader = StoreReader::open_bytes(bytes).expect("digests are internally consistent");
    assert!(reader.verify_all().is_ok(), "payloads were hashed as-is");
    assert!(
        StoreArtifact::from_reader(&reader).is_err(),
        "garbage payloads must fail typed decoding"
    );
}

#[test]
fn oversized_length_prefixes_do_not_allocate() {
    // A TCHS section claiming u64::MAX entries: the length guard must
    // reject it before `Vec::with_capacity` can be asked for it.
    let mut payload = Vec::new();
    payload.extend_from_slice(&u64::MAX.to_le_bytes());
    let mut writer = automodel_store::StoreWriter::new();
    writer
        .section(automodel_store::TAG_TRIAL_CACHE, payload)
        .expect("fresh writer accepts the tag");
    let bytes = writer.finish();
    let reader = StoreReader::open_bytes(bytes).expect("container is valid");
    let err = automodel_store::artifact::decode_cache_snapshot(
        reader
            .section(automodel_store::TAG_TRIAL_CACHE)
            .expect("section present"),
    )
    .expect_err("absurd count must be rejected");
    assert!(
        matches!(err, StoreError::Truncated(_) | StoreError::Malformed(_)),
        "unexpected variant: {err:?}"
    );
}
