//! Hidden-layer activations of Table II: relu, tanh, logistic, identity.

use serde::{Deserialize, Serialize};

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    Tanh,
    Logistic,
    Identity,
}

impl Activation {
    /// The Table II option list, in the paper's order.
    pub const ALL: [Activation; 4] = [
        Activation::Relu,
        Activation::Tanh,
        Activation::Logistic,
        Activation::Identity,
    ];

    /// Apply the activation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Logistic => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *activated* value `y = f(x)`
    /// (all four functions permit this, which spares storing pre-activations).
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Logistic => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }

    /// Parse the scikit-learn-style name used in Table II.
    pub fn from_name(name: &str) -> Option<Activation> {
        match name {
            "relu" => Some(Activation::Relu),
            "tanh" => Some(Activation::Tanh),
            "logistic" => Some(Activation::Logistic),
            "identity" => Some(Activation::Identity),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Logistic => "logistic",
            Activation::Identity => "identity",
        }
    }
}

/// Numerically stable softmax in place.
pub fn softmax(logits: &mut [f64]) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in logits.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_match_definitions() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert!((Activation::Tanh.apply(0.5) - 0.5f64.tanh()).abs() < 1e-15);
        assert!((Activation::Logistic.apply(0.0) - 0.5).abs() < 1e-15);
        assert_eq!(Activation::Identity.apply(1.25), 1.25);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in Activation::ALL {
            for &x in &[-1.5, -0.3, 0.4, 2.0] {
                let y = act.apply(x);
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let an = act.derivative_from_output(y);
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{act:?} at {x}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut v = vec![1000.0, 1001.0, 999.0];
        softmax(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v.iter().all(|&p| p.is_finite() && p >= 0.0));
        assert!(v[1] > v[0] && v[0] > v[2]);
    }

    #[test]
    fn names_roundtrip() {
        for act in Activation::ALL {
            assert_eq!(Activation::from_name(act.name()), Some(act));
        }
        assert_eq!(Activation::from_name("swish"), None);
    }
}
