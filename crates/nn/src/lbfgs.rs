//! Limited-memory BFGS with backtracking line search.
//!
//! One of the three solvers of Table II. Operates on any smooth objective
//! given as a `loss_and_grad` closure over a flat parameter vector — the
//! network trainer passes the full-batch loss. Uses the standard two-loop
//! recursion with curvature-pair history and an Armijo backtracking line
//! search; non-descent directions fall back to steepest descent.

/// Options for an L-BFGS run.
#[derive(Debug, Clone)]
pub struct LbfgsOptions {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// History size `m`.
    pub history: usize,
    /// Stop when the gradient max-norm falls below this.
    pub grad_tol: f64,
    /// Stop when the loss improves by less than this between iterations.
    pub loss_tol: f64,
}

impl Default for LbfgsOptions {
    fn default() -> LbfgsOptions {
        LbfgsOptions {
            max_iter: 200,
            history: 10,
            grad_tol: 1e-6,
            loss_tol: 1e-10,
        }
    }
}

/// Result of an L-BFGS run.
#[derive(Debug, Clone)]
pub struct LbfgsReport {
    pub final_loss: f64,
    pub iterations: usize,
    pub converged: bool,
    /// The objective produced a non-finite loss or gradient; `x` holds the
    /// last finite iterate, not a NaN-poisoned one.
    pub diverged: bool,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Minimize `f` starting from `x` (updated in place).
pub fn minimize<F>(x: &mut [f64], mut f: F, opts: &LbfgsOptions) -> LbfgsReport
where
    F: FnMut(&[f64]) -> (f64, Vec<f64>),
{
    let n = x.len();
    let (mut loss, mut grad) = f(x);
    if !loss.is_finite() || grad.iter().any(|g| !g.is_finite()) {
        return LbfgsReport {
            final_loss: loss,
            iterations: 0,
            converged: false,
            diverged: true,
        };
    }
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();
    let mut flat_iters = 0usize;

    for iter in 0..opts.max_iter {
        let gmax = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        if gmax < opts.grad_tol {
            return LbfgsReport {
                final_loss: loss,
                iterations: iter,
                converged: true,
                diverged: false,
            };
        }

        // Two-loop recursion for the search direction d = -H g.
        let mut d: Vec<f64> = grad.iter().map(|g| -g).collect();
        let k = s_hist.len();
        let mut alphas = vec![0.0; k];
        for i in (0..k).rev() {
            alphas[i] = rho_hist[i] * dot(&s_hist[i], &d);
            for (dj, yj) in d.iter_mut().zip(&y_hist[i]) {
                *dj -= alphas[i] * yj;
            }
        }
        if k > 0 {
            let gamma = dot(&s_hist[k - 1], &y_hist[k - 1])
                / dot(&y_hist[k - 1], &y_hist[k - 1]).max(1e-12);
            for dj in d.iter_mut() {
                *dj *= gamma.max(1e-8);
            }
        }
        for i in 0..k {
            let beta = rho_hist[i] * dot(&y_hist[i], &d);
            for (dj, sj) in d.iter_mut().zip(&s_hist[i]) {
                *dj += (alphas[i] - beta) * sj;
            }
        }

        // Ensure descent; otherwise fall back to -g.
        let mut dir_deriv = dot(&grad, &d);
        if dir_deriv >= 0.0 {
            for (dj, g) in d.iter_mut().zip(&grad) {
                *dj = -g;
            }
            dir_deriv = -dot(&grad, &grad);
        }

        // Weak-Wolfe line search (Lewis–Overton bisection): the curvature
        // condition keeps steps long enough that the `(s, y)` pairs capture
        // real curvature — Armijo-only backtracking lets a single tiny first
        // step poison the inverse-Hessian scaling for the whole run.
        let c1 = 1e-4;
        let c2 = 0.9;
        let x_old = x.to_vec();
        let mut step = 1.0f64;
        let mut lo = 0.0f64;
        let mut hi = f64::INFINITY;
        let mut accepted = false;
        let mut new_loss = loss;
        let mut new_grad = grad.clone();
        // Remember the best Armijo-satisfying point in case Wolfe never holds.
        let mut fallback: Option<(f64, f64, Vec<f64>)> = None;
        for _ in 0..40 {
            for i in 0..n {
                x[i] = x_old[i] + step * d[i];
            }
            let (l, g) = f(x);
            if !l.is_finite() || l > loss + c1 * step * dir_deriv {
                hi = step;
                step = 0.5 * (lo + hi);
            } else if dot(&g, &d) < c2 * dir_deriv {
                if fallback.as_ref().is_none_or(|(_, fl, _)| l < *fl) {
                    fallback = Some((step, l, g.clone()));
                }
                lo = step;
                step = if hi.is_finite() {
                    0.5 * (lo + hi)
                } else {
                    2.0 * step
                };
            } else {
                new_loss = l;
                new_grad = g;
                accepted = true;
                break;
            }
        }
        if !accepted {
            if let Some((fstep, fl, fg)) = fallback {
                for i in 0..n {
                    x[i] = x_old[i] + fstep * d[i];
                }
                new_loss = fl;
                new_grad = fg;
            } else {
                x.copy_from_slice(&x_old);
                return LbfgsReport {
                    final_loss: loss,
                    iterations: iter,
                    converged: false,
                    diverged: false,
                };
            }
        }

        // Divergence guard: the line search only vets the *loss* for
        // finiteness, so an accepted step can still carry a NaN/Inf gradient.
        // Roll back to the last finite iterate instead of poisoning history.
        if !new_loss.is_finite() || new_grad.iter().any(|g| !g.is_finite()) {
            x.copy_from_slice(&x_old);
            return LbfgsReport {
                final_loss: loss,
                iterations: iter,
                converged: false,
                diverged: true,
            };
        }

        // Update curvature history.
        let s: Vec<f64> = x.iter().zip(&x_old).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = new_grad.iter().zip(&grad).map(|(a, b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-10 {
            s_hist.push(s);
            y_hist.push(y);
            rho_hist.push(1.0 / sy);
            if s_hist.len() > opts.history {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
        }

        let improved = loss - new_loss;
        loss = new_loss;
        grad = new_grad;
        // Rosenbrock-style valleys produce transiently tiny improvements;
        // only stop after several consecutive flat iterations.
        if improved.abs() < opts.loss_tol * (1.0 + loss.abs()) {
            flat_iters += 1;
            if flat_iters >= 3 {
                return LbfgsReport {
                    final_loss: loss,
                    iterations: iter + 1,
                    converged: true,
                    diverged: false,
                };
            }
        } else {
            flat_iters = 0;
        }
    }
    LbfgsReport {
        final_loss: loss,
        iterations: opts.max_iter,
        converged: false,
        diverged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_exactly() {
        // f(x) = Σ (x_i − i)²
        let mut x = vec![0.0; 5];
        let report = minimize(
            &mut x,
            |x| {
                let loss: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v - i as f64).powi(2))
                    .sum();
                let grad = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| 2.0 * (v - i as f64))
                    .collect();
                (loss, grad)
            },
            &LbfgsOptions::default(),
        );
        assert!(report.converged);
        for (i, v) in x.iter().enumerate() {
            assert!((v - i as f64).abs() < 1e-5, "x[{i}] = {v}");
        }
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let mut x = vec![-1.2, 1.0];
        let report = minimize(
            &mut x,
            |x| {
                let (a, b) = (x[0], x[1]);
                let loss = 100.0 * (b - a * a).powi(2) + (1.0 - a).powi(2);
                let grad = vec![
                    -400.0 * a * (b - a * a) - 2.0 * (1.0 - a),
                    200.0 * (b - a * a),
                ];
                (loss, grad)
            },
            &LbfgsOptions {
                max_iter: 500,
                ..LbfgsOptions::default()
            },
        );
        assert!(report.final_loss < 1e-6, "loss = {}", report.final_loss);
        assert!((x[0] - 1.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn stops_immediately_at_a_minimum() {
        let mut x = vec![0.0];
        let report = minimize(
            &mut x,
            |x| (x[0] * x[0], vec![2.0 * x[0]]),
            &LbfgsOptions::default(),
        );
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn non_finite_start_reports_divergence() {
        let mut x = vec![1.0, 2.0];
        let report = minimize(
            &mut x,
            |_| (f64::NAN, vec![0.0, 0.0]),
            &LbfgsOptions::default(),
        );
        assert!(report.diverged);
        assert!(!report.converged);
        assert_eq!(report.iterations, 0);
        assert_eq!(x, vec![1.0, 2.0], "iterate must be left untouched");
    }

    #[test]
    fn mid_run_gradient_blowup_restores_last_finite_iterate() {
        // Finite loss everywhere, but the gradient turns NaN once the iterate
        // crosses into |x| < 0.5 — the line search cannot see that.
        let mut x = vec![1.0];
        let report = minimize(
            &mut x,
            |x| {
                let g = if x[0].abs() < 0.5 {
                    f64::NAN
                } else {
                    2.0 * x[0]
                };
                (x[0] * x[0], vec![g])
            },
            &LbfgsOptions::default(),
        );
        assert!(report.diverged);
        assert!(x[0].is_finite(), "x = {}", x[0]);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn beats_fixed_iteration_gradient_descent() {
        // Badly conditioned quadratic: f = x² + 100 y².
        let f = |x: &[f64]| {
            (
                x[0] * x[0] + 100.0 * x[1] * x[1],
                vec![2.0 * x[0], 200.0 * x[1]],
            )
        };
        let mut x = vec![1.0, 1.0];
        minimize(
            &mut x,
            f,
            &LbfgsOptions {
                max_iter: 50,
                ..Default::default()
            },
        );
        let lbfgs_loss = f(&x).0;
        // 50 steps of lr-0.005 gradient descent.
        let mut y = vec![1.0, 1.0];
        for _ in 0..50 {
            let (_, g) = f(&y);
            for (yi, gi) in y.iter_mut().zip(&g) {
                *yi -= 0.005 * gi;
            }
        }
        let gd_loss = f(&y).0;
        assert!(
            lbfgs_loss < gd_loss / 10.0,
            "lbfgs {lbfgs_loss} vs gd {gd_loss}"
        );
    }
}
