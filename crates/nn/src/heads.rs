//! High-level classifier and regressor wrappers.
//!
//! [`MlpClassifier`] is the CV-scored model of Algorithm 2 (feature
//! selection); [`MlpRegressor`] is the decision-making model `SNA` of
//! Algorithm 3, predicting the OneHot' vector over all algorithms at once.
//! Both own their [`MlpConfig`] and a trained [`Network`].

use crate::network::{Network, OutputKind};
use crate::trainer::{train, MlpConfig, TrainReport};
use serde::{Deserialize, Serialize};

/// MLP classifier over dense feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpClassifier {
    config: MlpConfig,
    net: Option<Network>,
    n_classes: usize,
}

impl MlpClassifier {
    pub fn new(config: MlpConfig) -> MlpClassifier {
        MlpClassifier {
            config,
            net: None,
            n_classes: 0,
        }
    }

    /// Train on `(xs, labels)` with `n_classes` classes.
    pub fn fit(&mut self, xs: &[Vec<f64>], labels: &[usize], n_classes: usize) -> TrainReport {
        assert_eq!(xs.len(), labels.len());
        assert!(n_classes >= 2, "need at least two classes");
        assert!(!xs.is_empty(), "cannot fit on empty data");
        let input_dim = xs[0].len();
        let mut net = Network::new(
            input_dim,
            self.config.hidden_layers,
            self.config.hidden_size,
            n_classes,
            self.config.activation,
            OutputKind::SoftmaxCrossEntropy,
            self.config.seed,
        );
        let targets: Vec<Vec<f64>> = labels
            .iter()
            .map(|&l| {
                let mut t = vec![0.0; n_classes];
                t[l] = 1.0;
                t
            })
            .collect();
        let report = train(&mut net, xs, &targets, &self.config);
        self.net = Some(net);
        self.n_classes = n_classes;
        report
    }

    /// Class-probability vector for one input.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.net
            .as_ref()
            // lint:allow(no-panic-lib): documented contract, has a should_panic test
            .expect("predict before fit")
            .forward(x)
    }

    /// Most likely class for one input.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_proba(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Fraction of `(xs, labels)` classified correctly.
    pub fn accuracy(&self, xs: &[Vec<f64>], labels: &[usize]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(labels)
            .filter(|(x, &l)| self.predict(x) == l)
            .count();
        correct as f64 / xs.len() as f64
    }
}

/// Multi-output MLP regressor over dense feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpRegressor {
    config: MlpConfig,
    net: Option<Network>,
}

impl MlpRegressor {
    pub fn new(config: MlpConfig) -> MlpRegressor {
        MlpRegressor { config, net: None }
    }

    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Train on `(xs, targets)`; target vectors may have any fixed width.
    pub fn fit(&mut self, xs: &[Vec<f64>], targets: &[Vec<f64>]) -> TrainReport {
        assert_eq!(xs.len(), targets.len());
        assert!(!xs.is_empty(), "cannot fit on empty data");
        let input_dim = xs[0].len();
        let output_dim = targets[0].len();
        let mut net = Network::new(
            input_dim,
            self.config.hidden_layers,
            self.config.hidden_size,
            output_dim,
            self.config.activation,
            OutputKind::LinearMse,
            self.config.seed,
        );
        let report = train(&mut net, xs, targets, &self.config);
        self.net = Some(net);
        report
    }

    /// Predicted output vector.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.net
            .as_ref()
            // lint:allow(no-panic-lib): documented contract, mirrors MlpClassifier
            .expect("predict before fit")
            .forward(x)
    }

    /// Mean squared error over a test set (averaged over outputs and rows).
    pub fn mse(&self, xs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for (x, t) in xs.iter().zip(targets) {
            let p = self.predict(x);
            for (pi, ti) in p.iter().zip(t) {
                total += (pi - ti) * (pi - ti);
                count += 1;
            }
        }
        total / count.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::trainer::Solver;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [[-2.0, 0.0], [2.0, 0.0], [0.0, 2.5]];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let c = i % 3;
            xs.push(vec![
                centers[c][0] + rng.gen_range(-0.7..0.7),
                centers[c][1] + rng.gen_range(-0.7..0.7),
            ]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn classifier_learns_blobs() {
        let (xs, ys) = blob_data(150);
        let mut clf = MlpClassifier::new(MlpConfig {
            solver: Solver::Lbfgs,
            max_iter: 200,
            hidden_layers: 1,
            hidden_size: 16,
            validation_fraction: 0.0,
            ..MlpConfig::default()
        });
        clf.fit(&xs, &ys, 3);
        assert!(clf.accuracy(&xs, &ys) > 0.95);
    }

    #[test]
    fn predict_proba_is_a_distribution() {
        let (xs, ys) = blob_data(60);
        let mut clf = MlpClassifier::new(MlpConfig {
            max_iter: 30,
            ..MlpConfig::default()
        });
        clf.fit(&xs, &ys, 3);
        let p = clf.predict_proba(&xs[0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regressor_learns_multi_output_map() {
        let xs: Vec<Vec<f64>> = (0..120).map(|i| vec![(i as f64 / 60.0) - 1.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * x[0], 1.0 - x[0]]).collect();
        let mut reg = MlpRegressor::new(MlpConfig {
            solver: Solver::Lbfgs,
            hidden_layers: 2,
            hidden_size: 16,
            activation: Activation::Tanh,
            max_iter: 400,
            validation_fraction: 0.0,
            ..MlpConfig::default()
        });
        reg.fit(&xs, &ys);
        let mse = reg.mse(&xs, &ys);
        assert!(mse < 1e-3, "mse = {mse}");
        let p = reg.predict(&[0.0]);
        assert!(p[0].abs() < 0.1 && (p[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn regressor_handles_negative_targets_like_onehot_prime() {
        // OneHot' targets contain −1 for inapplicable algorithms; the linear
        // head must reach them.
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 30.0 - 1.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|_| vec![-1.0, 1.0, 0.0]).collect();
        let mut reg = MlpRegressor::new(MlpConfig {
            solver: Solver::Lbfgs,
            max_iter: 200,
            validation_fraction: 0.0,
            ..MlpConfig::default()
        });
        reg.fit(&xs, &ys);
        let p = reg.predict(&[0.3]);
        assert!((p[0] + 1.0).abs() < 0.05);
        assert!((p[1] - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let clf = MlpClassifier::new(MlpConfig::default());
        clf.predict(&[0.0]);
    }
}
