//! # automodel-nn
//!
//! Neural-network substrate for the Auto-Model reproduction.
//!
//! The paper's DMD component (§III-C) uses scikit-learn MLPs in two roles:
//! an MLP *classifier* scores candidate feature subsets (Algorithm 2), and
//! an MLP *regressor* with the 10-hyperparameter architecture space of
//! Table II becomes the decision-making model `SNA` (Algorithm 3). The UDR
//! registry also exposes `MultilayerPerceptron` as one of the Weka
//! classifiers. This crate implements the full stack from scratch:
//!
//! * dense feed-forward networks with relu/tanh/logistic/identity hidden
//!   activations ([`activation`], [`network`]);
//! * the three solvers of Table II — SGD with momentum and
//!   constant/invscaling/adaptive learning-rate schedules, Adam with
//!   tunable β₁/β₂, and L-BFGS ([`trainer`], [`lbfgs`]);
//! * early stopping on a held-out validation fraction;
//! * classifier (softmax + cross-entropy) and multi-output regressor
//!   (linear + MSE) heads ([`heads`]) — the regressor is multi-output
//!   because `SNA` predicts the OneHot' vector over all algorithms at once.

pub mod activation;
pub mod heads;
pub mod lbfgs;
pub mod network;
pub mod trainer;

pub use activation::Activation;
pub use heads::{MlpClassifier, MlpRegressor};
pub use network::{Network, OutputKind};
pub use trainer::{LearningRateSchedule, MlpConfig, Solver, TrainReport};
