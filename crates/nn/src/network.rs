//! Dense feed-forward network with backprop.
//!
//! Parameters live in one flat `Vec<f64>` so the solvers (SGD/Adam in the
//! trainer, L-BFGS in [`crate::lbfgs`]) can treat the model as a plain
//! vector-valued optimization variable. Layer views index into that vector.

use crate::activation::{softmax, Activation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Output head: classification (softmax + cross-entropy) or multi-output
/// regression (linear + 0.5·MSE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputKind {
    SoftmaxCrossEntropy,
    LinearMse,
}

/// Shape of one dense layer within the flat parameter vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LayerShape {
    in_dim: usize,
    out_dim: usize,
    /// Offset of the weight block (row-major `out_dim × in_dim`).
    w_off: usize,
    /// Offset of the bias block (`out_dim`).
    b_off: usize,
}

/// A dense feed-forward network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    shapes: Vec<LayerShape>,
    pub params: Vec<f64>,
    activation: Activation,
    output: OutputKind,
    input_dim: usize,
    output_dim: usize,
}

/// Scratch buffers reused across forward/backward passes.
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    /// Activations per layer (index 0 = input copy).
    acts: Vec<Vec<f64>>,
    /// Backprop deltas per layer.
    deltas: Vec<Vec<f64>>,
}

impl Network {
    /// Build a network with `hidden` hidden layers of width `width`.
    /// Weights use scaled uniform (Glorot-style) initialization.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        width: usize,
        output_dim: usize,
        activation: Activation,
        output: OutputKind,
        seed: u64,
    ) -> Network {
        assert!(input_dim > 0 && output_dim > 0 && width > 0);
        let mut dims = Vec::with_capacity(hidden + 2);
        dims.push(input_dim);
        for _ in 0..hidden {
            dims.push(width);
        }
        dims.push(output_dim);

        let mut shapes = Vec::with_capacity(dims.len() - 1);
        let mut offset = 0usize;
        for w in dims.windows(2) {
            let (in_dim, out_dim) = (w[0], w[1]);
            shapes.push(LayerShape {
                in_dim,
                out_dim,
                w_off: offset,
                b_off: offset + in_dim * out_dim,
            });
            offset += in_dim * out_dim + out_dim;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = vec![0.0; offset];
        for shape in &shapes {
            let bound = (6.0 / (shape.in_dim + shape.out_dim) as f64).sqrt();
            for i in 0..shape.in_dim * shape.out_dim {
                params[shape.w_off + i] = rng.gen_range(-bound..bound);
            }
        }
        Network {
            shapes,
            params,
            activation,
            output,
            input_dim,
            output_dim,
        }
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    pub fn output_kind(&self) -> OutputKind {
        self.output
    }

    /// Forward pass for a single input; returns the output vector
    /// (probabilities for the softmax head, raw values for regression).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.input_dim);
        let mut current = input.to_vec();
        for (li, shape) in self.shapes.iter().enumerate() {
            let mut next = vec![0.0; shape.out_dim];
            for (o, out) in next.iter_mut().enumerate() {
                let row = &self.params[shape.w_off + o * shape.in_dim..][..shape.in_dim];
                let mut sum = self.params[shape.b_off + o];
                for (w, x) in row.iter().zip(&current) {
                    sum += w * x;
                }
                *out = sum;
            }
            let is_last = li == self.shapes.len() - 1;
            if !is_last {
                for v in &mut next {
                    *v = self.activation.apply(*v);
                }
            } else if self.output == OutputKind::SoftmaxCrossEntropy {
                softmax(&mut next);
            }
            current = next;
        }
        current
    }

    /// Loss of a batch plus its parameter gradient (flat, same layout as
    /// `params`). `targets` for the softmax head are one-hot-like vectors
    /// (any distribution works); for the MSE head they are raw target
    /// vectors. `target_mask` optionally zeroes per-output residuals — the
    /// OneHot' trick marks inapplicable algorithms with −1 but they still
    /// participate; the mask exists for callers that want to ignore outputs.
    /// `l2` is the ridge penalty coefficient (per-sample, sklearn-style).
    pub fn loss_and_grad(
        &self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        l2: f64,
        ws: &mut Workspace,
    ) -> (f64, Vec<f64>) {
        assert_eq!(inputs.len(), targets.len());
        let n = inputs.len().max(1) as f64;
        let (mut loss, mut grad) = self.loss_and_grad_scaled(inputs, targets, n, ws);
        self.add_ridge(l2, n, &mut loss, &mut grad);
        (loss, grad)
    }

    /// Like [`loss_and_grad`](Network::loss_and_grad), but samples are split
    /// into fixed-size chunks evaluated on `executor` and reduced in chunk
    /// order. The chunking (and therefore every floating-point reduction)
    /// depends only on the sample count, never on the thread count, so the
    /// result is byte-identical at any parallelism — though it may differ
    /// from the unchunked serial path in the last ulp.
    pub fn loss_and_grad_threaded(
        &self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        l2: f64,
        executor: &automodel_parallel::Executor,
    ) -> (f64, Vec<f64>) {
        // Large enough to amortize per-chunk workspace setup, small enough
        // to spread a full-batch L-BFGS pass over all workers.
        const CHUNK: usize = 256;
        assert_eq!(inputs.len(), targets.len());
        let n = inputs.len().max(1) as f64;
        let n_chunks = inputs.len().div_ceil(CHUNK).max(1);
        let parts = executor.map(n_chunks, |c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(inputs.len());
            let mut ws = Workspace::default();
            self.loss_and_grad_scaled(&inputs[lo..hi], &targets[lo..hi], n, &mut ws)
        });
        let mut loss = 0.0;
        let mut grad = vec![0.0; self.params.len()];
        for (part_loss, part_grad) in parts {
            loss += part_loss;
            for (g, p) in grad.iter_mut().zip(&part_grad) {
                *g += p;
            }
        }
        self.add_ridge(l2, n, &mut loss, &mut grad);
        (loss, grad)
    }

    /// Batch loss + gradient with an explicit normalizer `n` (the full-batch
    /// sample count, which may exceed `inputs.len()` when this is one chunk
    /// of a larger batch). Excludes the ridge term — see
    /// [`add_ridge`](Network::add_ridge).
    fn loss_and_grad_scaled(
        &self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        n: f64,
        ws: &mut Workspace,
    ) -> (f64, Vec<f64>) {
        let n_layers = self.shapes.len();
        let mut grad = vec![0.0; self.params.len()];
        let mut loss = 0.0;

        ws.acts.resize(n_layers + 1, Vec::new());
        ws.deltas.resize(n_layers, Vec::new());

        for (input, target) in inputs.iter().zip(targets) {
            // Forward, caching activations.
            ws.acts[0].clear();
            ws.acts[0].extend_from_slice(input);
            for (li, shape) in self.shapes.iter().enumerate() {
                let (before, after) = ws.acts.split_at_mut(li + 1);
                let current = &before[li];
                let next = &mut after[0];
                next.clear();
                next.resize(shape.out_dim, 0.0);
                for (o, out) in next.iter_mut().enumerate() {
                    let row = &self.params[shape.w_off + o * shape.in_dim..][..shape.in_dim];
                    let mut sum = self.params[shape.b_off + o];
                    for (w, x) in row.iter().zip(current.iter()) {
                        sum += w * x;
                    }
                    *out = sum;
                }
                let is_last = li == n_layers - 1;
                if !is_last {
                    for v in next.iter_mut() {
                        *v = self.activation.apply(*v);
                    }
                } else if self.output == OutputKind::SoftmaxCrossEntropy {
                    softmax(next);
                }
            }

            // Output delta; both heads reduce to (prediction − target) / n.
            let out_act = &ws.acts[n_layers];
            match self.output {
                OutputKind::SoftmaxCrossEntropy => {
                    for (p, t) in out_act.iter().zip(target) {
                        if *t > 0.0 {
                            loss -= t * p.max(1e-12).ln() / n;
                        }
                    }
                }
                OutputKind::LinearMse => {
                    for (p, t) in out_act.iter().zip(target) {
                        loss += 0.5 * (p - t) * (p - t) / n;
                    }
                }
            }
            let delta_out: Vec<f64> = out_act
                .iter()
                .zip(target)
                .map(|(p, t)| (p - t) / n)
                .collect();
            ws.deltas[n_layers - 1] = delta_out;

            // Backward.
            for li in (0..n_layers).rev() {
                let shape = &self.shapes[li];
                // Accumulate weight/bias gradients.
                for o in 0..shape.out_dim {
                    let d = ws.deltas[li][o];
                    if d == 0.0 {
                        continue;
                    }
                    let grad_row = &mut grad[shape.w_off + o * shape.in_dim..][..shape.in_dim];
                    for (g, x) in grad_row.iter_mut().zip(ws.acts[li].iter()) {
                        *g += d * x;
                    }
                    grad[shape.b_off + o] += d;
                }
                if li == 0 {
                    continue;
                }
                // Propagate delta to the previous (hidden) layer.
                let prev_shape_out = self.shapes[li - 1].out_dim;
                let mut prev_delta = vec![0.0; prev_shape_out];
                for o in 0..shape.out_dim {
                    let d = ws.deltas[li][o];
                    if d == 0.0 {
                        continue;
                    }
                    let row = &self.params[shape.w_off + o * shape.in_dim..][..shape.in_dim];
                    for (pd, w) in prev_delta.iter_mut().zip(row) {
                        *pd += d * w;
                    }
                }
                for (pd, y) in prev_delta.iter_mut().zip(ws.acts[li].iter()) {
                    *pd *= self.activation.derivative_from_output(*y);
                }
                ws.deltas[li - 1] = prev_delta;
            }
        }

        (loss, grad)
    }

    /// Ridge penalty on weights only (biases excluded, as in sklearn),
    /// applied once per full batch of `n` samples.
    fn add_ridge(&self, l2: f64, n: f64, loss: &mut f64, grad: &mut [f64]) {
        if l2 > 0.0 {
            for shape in &self.shapes {
                for i in 0..shape.in_dim * shape.out_dim {
                    let w = self.params[shape.w_off + i];
                    *loss += 0.5 * l2 * w * w / n;
                    grad[shape.w_off + i] += l2 * w / n;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(output: OutputKind) -> Network {
        Network::new(2, 1, 3, 2, Activation::Tanh, output, 7)
    }

    #[test]
    fn forward_softmax_outputs_distribution() {
        let net = tiny_net(OutputKind::SoftmaxCrossEntropy);
        let out = net.forward(&[0.3, -1.2]);
        assert_eq!(out.len(), 2);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences_classifier() {
        check_gradients(tiny_net(OutputKind::SoftmaxCrossEntropy), vec![1.0, 0.0]);
    }

    #[test]
    fn gradient_matches_finite_differences_regressor() {
        check_gradients(tiny_net(OutputKind::LinearMse), vec![0.7, -1.0]);
    }

    #[test]
    fn gradient_matches_finite_differences_all_activations() {
        for act in Activation::ALL {
            let net = Network::new(3, 2, 4, 2, act, OutputKind::LinearMse, 11);
            check_gradients(net, vec![0.5, -0.25]);
        }
    }

    #[test]
    fn threaded_gradients_are_thread_count_invariant_and_match_serial() {
        use automodel_parallel::Executor;
        // > 256 samples so the batch spans several chunks.
        let net = Network::new(3, 2, 8, 2, Activation::Tanh, OutputKind::LinearMse, 13);
        let xs: Vec<Vec<f64>> = (0..600)
            .map(|i| {
                let t = i as f64 / 600.0;
                vec![t, (7.0 * t).sin(), 1.0 - t]
            })
            .collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] + x[1], x[2]]).collect();
        let l2 = 0.01;
        let (l1, g1) = net.loss_and_grad_threaded(&xs, &ys, l2, &Executor::new(1));
        let (l2t, g2) = net.loss_and_grad_threaded(&xs, &ys, l2, &Executor::new(2));
        let (l8, g8) = net.loss_and_grad_threaded(&xs, &ys, l2, &Executor::new(8));
        // Chunk layout is thread-independent → byte-identical results.
        assert_eq!(l1.to_bits(), l2t.to_bits());
        assert_eq!(l1.to_bits(), l8.to_bits());
        assert_eq!(g1, g2);
        assert_eq!(g1, g8);
        // And the chunked sum agrees with the serial path up to rounding.
        let mut ws = Workspace::default();
        let (ls, gs) = net.loss_and_grad(&xs, &ys, l2, &mut ws);
        assert!((l1 - ls).abs() <= 1e-9 * ls.abs().max(1.0), "{l1} vs {ls}");
        for (a, b) in g1.iter().zip(&gs) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    fn check_gradients(mut net: Network, target: Vec<f64>) {
        let inputs = vec![vec![0.4, -0.6, 0.9][..net.input_dim()].to_vec(), {
            let mut v = vec![-1.1, 0.2, 0.3];
            v.truncate(net.input_dim());
            v
        }];
        let targets = vec![target.clone(), target];
        let mut ws = Workspace::default();
        let (_, grad) = net.loss_and_grad(&inputs, &targets, 0.01, &mut ws);
        let eps = 1e-6;
        // Check a spread of parameter indices.
        let indices: Vec<usize> = (0..net.n_params())
            .step_by(net.n_params() / 13 + 1)
            .collect();
        for &i in &indices {
            let orig = net.params[i];
            net.params[i] = orig + eps;
            let (lp, _) = net.loss_and_grad(&inputs, &targets, 0.01, &mut ws);
            net.params[i] = orig - eps;
            let (lm, _) = net.loss_and_grad(&inputs, &targets, 0.01, &mut ws);
            net.params[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn deeper_networks_have_more_params() {
        let shallow = Network::new(5, 1, 10, 3, Activation::Relu, OutputKind::LinearMse, 1);
        let deep = Network::new(5, 4, 10, 3, Activation::Relu, OutputKind::LinearMse, 1);
        assert!(deep.n_params() > shallow.n_params());
        // Exact: (5*10+10) + (10*3+3) = 93; deep adds 3×(10*10+10).
        assert_eq!(shallow.n_params(), 93);
        assert_eq!(deep.n_params(), 93 + 3 * 110);
    }

    #[test]
    fn initialization_is_seeded() {
        let a = Network::new(4, 2, 8, 2, Activation::Relu, OutputKind::LinearMse, 42);
        let b = Network::new(4, 2, 8, 2, Activation::Relu, OutputKind::LinearMse, 42);
        assert_eq!(a.params, b.params);
        let c = Network::new(4, 2, 8, 2, Activation::Relu, OutputKind::LinearMse, 43);
        assert_ne!(a.params, c.params);
    }
}
