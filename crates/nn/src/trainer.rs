//! Training loop implementing the Table II hyperparameters.
//!
//! | Table II name        | field                 |
//! |----------------------|-----------------------|
//! | hidden layer         | `hidden_layers`       |
//! | hidden layer size    | `hidden_size`         |
//! | activation           | `activation`          |
//! | solver               | `solver`              |
//! | learning rate        | `lr_schedule`         |
//! | max iter             | `max_iter`            |
//! | momentum             | `momentum`            |
//! | validation fraction  | `validation_fraction` |
//! | beta 1               | `beta1`               |
//! | beta 2               | `beta2`               |
//!
//! SGD/Adam run minibatched with early stopping on the validation split;
//! L-BFGS runs full-batch (as in scikit-learn, where `learning_rate`,
//! `momentum` and the betas are ignored for solvers that don't use them).

use crate::activation::Activation;
use crate::lbfgs::{self, LbfgsOptions};
use crate::network::{Network, Workspace};
use automodel_parallel::Executor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Optimizer choice of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Solver {
    Lbfgs,
    Sgd,
    Adam,
}

impl Solver {
    /// The Table II option list, in the paper's order.
    pub const ALL: [Solver; 3] = [Solver::Lbfgs, Solver::Sgd, Solver::Adam];

    pub fn name(self) -> &'static str {
        match self {
            Solver::Lbfgs => "lbfgs",
            Solver::Sgd => "sgd",
            Solver::Adam => "adam",
        }
    }
}

/// SGD learning-rate schedule of Table II ("only used when solver is sgd").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LearningRateSchedule {
    Constant,
    /// `lr_t = lr / t^0.5`
    InvScaling,
    /// Halve the rate whenever validation stops improving.
    Adaptive,
}

impl LearningRateSchedule {
    /// The Table II option list, in the paper's order.
    pub const ALL: [LearningRateSchedule; 3] = [
        LearningRateSchedule::Constant,
        LearningRateSchedule::InvScaling,
        LearningRateSchedule::Adaptive,
    ];
}

/// Full MLP hyperparameter set (Table II plus the fixed sklearn-style
/// defaults the paper inherits implicitly: initial learning rate, ridge
/// penalty, batch size, convergence tolerance).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    pub hidden_layers: usize,
    pub hidden_size: usize,
    pub activation: Activation,
    pub solver: Solver,
    pub lr_schedule: LearningRateSchedule,
    pub max_iter: usize,
    pub momentum: f64,
    pub validation_fraction: f64,
    pub beta1: f64,
    pub beta2: f64,
    /// Initial learning rate for SGD/Adam.
    pub learning_rate_init: f64,
    /// Ridge (L2) penalty.
    pub alpha: f64,
    /// Minibatch size; 0 = `min(200, n)`.
    pub batch_size: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Minimum loss improvement that counts as progress (sklearn `tol`).
    pub tol: f64,
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            hidden_layers: 1,
            hidden_size: 100,
            activation: Activation::Relu,
            solver: Solver::Adam,
            lr_schedule: LearningRateSchedule::Constant,
            max_iter: 200,
            momentum: 0.9,
            validation_fraction: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            learning_rate_init: 1e-3,
            alpha: 1e-4,
            batch_size: 0,
            patience: 10,
            tol: 1e-4,
            seed: 0,
        }
    }
}

impl MlpConfig {
    /// Cap the training epochs at `cap` (a no-op for `cap == 0` or a cap
    /// already above `max_iter`). Multi-fidelity rungs use this to train
    /// the MLP for a fraction of its configured epochs without otherwise
    /// touching the hyperparameters — the capped config is a *different
    /// measurement*, which is why fidelity participates in the trial
    /// fingerprint upstream.
    pub fn with_iteration_cap(mut self, cap: usize) -> MlpConfig {
        if cap > 0 {
            self.max_iter = self.max_iter.min(cap).max(1);
        }
        self
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub final_loss: f64,
    pub epochs: usize,
    pub stopped_early: bool,
    /// Training hit a non-finite loss and aborted; the network holds the
    /// last finite parameters, never NaN-poisoned ones.
    pub diverged: bool,
}

/// Train `net` in place on `(inputs, targets)` under `config`.
pub fn train(
    net: &mut Network,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    config: &MlpConfig,
) -> TrainReport {
    assert_eq!(inputs.len(), targets.len());
    assert!(!inputs.is_empty(), "cannot train on an empty batch");
    match config.solver {
        Solver::Lbfgs => train_lbfgs(net, inputs, targets, config, None),
        Solver::Sgd | Solver::Adam => train_first_order(net, inputs, targets, config),
    }
}

/// Like [`train`], but full-batch gradient evaluations run on `executor`.
///
/// Only L-BFGS is full-batch, so only it parallelizes; SGD/Adam minibatches
/// (≤ 200 rows by default) are smaller than one gradient chunk and take the
/// serial path unchanged. The threaded L-BFGS path is byte-identical at any
/// thread count (chunk layout depends only on the sample count — see
/// [`Network::loss_and_grad_threaded`]) but may differ from [`train`] in the
/// last ulp because the chunked reduction associates additions differently.
/// The thread count is a call-site argument, not an [`MlpConfig`] field, so
/// serialized configs stay portable across machines.
pub fn train_threaded(
    net: &mut Network,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    config: &MlpConfig,
    executor: &Executor,
) -> TrainReport {
    assert_eq!(inputs.len(), targets.len());
    assert!(!inputs.is_empty(), "cannot train on an empty batch");
    match config.solver {
        Solver::Lbfgs => train_lbfgs(net, inputs, targets, config, Some(executor)),
        Solver::Sgd | Solver::Adam => train_first_order(net, inputs, targets, config),
    }
}

fn train_lbfgs(
    net: &mut Network,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    config: &MlpConfig,
    executor: Option<&Executor>,
) -> TrainReport {
    let mut ws = Workspace::default();
    let mut probe = net.clone();
    let mut params = net.params.clone();
    let report = lbfgs::minimize(
        &mut params,
        |p| {
            probe.params.copy_from_slice(p);
            match executor {
                Some(ex) => probe.loss_and_grad_threaded(inputs, targets, config.alpha, ex),
                None => probe.loss_and_grad(inputs, targets, config.alpha, &mut ws),
            }
        },
        &LbfgsOptions {
            max_iter: config.max_iter,
            ..LbfgsOptions::default()
        },
    );
    net.params = params;
    TrainReport {
        final_loss: report.final_loss,
        epochs: report.iterations,
        stopped_early: report.converged,
        diverged: report.diverged,
    }
}

fn train_first_order(
    net: &mut Network,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    config: &MlpConfig,
) -> TrainReport {
    let n = inputs.len();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7EA1);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);

    // Validation split (early stopping) — only when there is enough data.
    let n_val = if config.validation_fraction > 0.0 && n >= 10 {
        ((n as f64 * config.validation_fraction).round() as usize).clamp(1, n / 2)
    } else {
        0
    };
    let (val_idx, train_idx) = order.split_at(n_val);
    let val_idx = val_idx.to_vec();
    let mut train_idx = train_idx.to_vec();

    let batch_size = if config.batch_size == 0 {
        train_idx.len().min(200)
    } else {
        config.batch_size.min(train_idx.len())
    }
    .max(1);

    let mut ws = Workspace::default();
    let mut velocity = vec![0.0; net.n_params()];
    let mut adam_m = vec![0.0; net.n_params()];
    let mut adam_v = vec![0.0; net.n_params()];
    let mut adam_t = 0usize;

    let mut lr = config.learning_rate_init;
    let mut best_val = f64::INFINITY;
    let mut best_params: Option<Vec<f64>> = None;
    let mut stale = 0usize;
    // The adaptive schedule follows *training* loss (as in scikit-learn),
    // independent of the validation-based early stopping.
    let mut best_train = f64::INFINITY;
    let mut lr_stale = 0usize;

    let val_loss = |net: &Network, ws: &mut Workspace| -> f64 {
        if val_idx.is_empty() {
            return f64::NAN;
        }
        let vi: Vec<Vec<f64>> = val_idx.iter().map(|&i| inputs[i].clone()).collect();
        let vt: Vec<Vec<f64>> = val_idx.iter().map(|&i| targets[i].clone()).collect();
        net.loss_and_grad(&vi, &vt, 0.0, ws).0
    };

    let mut epochs_run = 0usize;
    let mut stopped_early = false;
    let mut diverged = false;
    for epoch in 0..config.max_iter {
        epochs_run = epoch + 1;
        // Snapshot for the divergence guard below: if this epoch blows up,
        // the mid-epoch updates are already poisoned and must be undone.
        let epoch_start = net.params.clone();
        train_idx.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in train_idx.chunks(batch_size) {
            let bi: Vec<Vec<f64>> = chunk.iter().map(|&i| inputs[i].clone()).collect();
            let bt: Vec<Vec<f64>> = chunk.iter().map(|&i| targets[i].clone()).collect();
            let (loss, grad) = net.loss_and_grad(&bi, &bt, config.alpha, &mut ws);
            epoch_loss += loss;
            batches += 1;
            match config.solver {
                Solver::Sgd => {
                    let effective_lr = match config.lr_schedule {
                        LearningRateSchedule::Constant | LearningRateSchedule::Adaptive => lr,
                        LearningRateSchedule::InvScaling => {
                            config.learning_rate_init / ((epoch + 1) as f64).sqrt()
                        }
                    };
                    for ((p, v), g) in net.params.iter_mut().zip(&mut velocity).zip(&grad) {
                        *v = config.momentum * *v - effective_lr * g;
                        *p += *v;
                    }
                }
                Solver::Adam => {
                    adam_t += 1;
                    let b1 = config.beta1;
                    let b2 = config.beta2;
                    let bias1 = 1.0 - b1.powi(adam_t as i32);
                    let bias2 = 1.0 - b2.powi(adam_t as i32);
                    for (((p, m), v), g) in net
                        .params
                        .iter_mut()
                        .zip(&mut adam_m)
                        .zip(&mut adam_v)
                        .zip(&grad)
                    {
                        *m = b1 * *m + (1.0 - b1) * g;
                        *v = b2 * *v + (1.0 - b2) * g * g;
                        let mh = *m / bias1;
                        let vh = *v / bias2;
                        *p -= lr * mh / (vh.sqrt() + 1e-8);
                    }
                }
                // lint:allow(no-panic-lib): `train` dispatches Lbfgs to `train_lbfgs`
                Solver::Lbfgs => unreachable!(),
            }
        }
        let epoch_loss = epoch_loss / batches.max(1) as f64;

        // Divergence guard: a non-finite mean batch loss means the updates
        // have left the representable region — roll back to the epoch-start
        // parameters and abort instead of returning NaN weights.
        if !epoch_loss.is_finite() {
            net.params = epoch_start;
            diverged = true;
            break;
        }

        // Adaptive learning-rate schedule: divide by 5 after `patience`
        // consecutive epochs without `tol` training-loss improvement
        // (sklearn semantics with its default n_iter_no_change).
        if epoch_loss < best_train - config.tol {
            best_train = epoch_loss;
            lr_stale = 0;
        } else {
            lr_stale += 1;
            if config.solver == Solver::Sgd
                && config.lr_schedule == LearningRateSchedule::Adaptive
                && lr_stale >= config.patience.max(2)
            {
                lr /= 5.0;
                lr_stale = 0;
            }
        }

        // Early stopping on the validation split.
        if n_val > 0 {
            let v = val_loss(net, &mut ws);
            if v < best_val - config.tol {
                best_val = v;
                best_params = Some(net.params.clone());
                stale = 0;
            } else {
                stale += 1;
                if stale >= config.patience {
                    stopped_early = true;
                    break;
                }
            }
        } else if lr_stale >= config.patience {
            stopped_early = true;
            break;
        }
    }
    if let Some(best) = best_params {
        net.params = best;
    }
    let final_loss = {
        let (l, _) = net.loss_and_grad(inputs, targets, 0.0, &mut ws);
        l
    };
    TrainReport {
        final_loss,
        epochs: epochs_run,
        stopped_early,
        diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::OutputKind;
    use rand::Rng;

    /// Two-moon-ish XOR data: label = sign parity of the two inputs.
    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            let label = ((a > 0.0) ^ (b > 0.0)) as usize;
            xs.push(vec![a, b]);
            let mut y = vec![0.0, 0.0];
            y[label] = 1.0;
            ys.push(y);
        }
        (xs, ys)
    }

    fn accuracy(net: &Network, xs: &[Vec<f64>], ys: &[Vec<f64>]) -> f64 {
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, y)| {
                let out = net.forward(x);
                let pred = out
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0;
                y[pred] == 1.0
            })
            .count();
        correct as f64 / xs.len() as f64
    }

    fn solve_xor(solver: Solver, schedule: LearningRateSchedule) -> f64 {
        let (xs, ys) = xor_data(300, 5);
        let mut net = Network::new(
            2,
            2,
            12,
            2,
            Activation::Tanh,
            OutputKind::SoftmaxCrossEntropy,
            3,
        );
        let config = MlpConfig {
            hidden_layers: 2,
            hidden_size: 12,
            solver,
            lr_schedule: schedule,
            max_iter: 300,
            learning_rate_init: match solver {
                Solver::Sgd => 0.05,
                _ => 1e-3,
            },
            validation_fraction: 0.1,
            patience: 50,
            ..MlpConfig::default()
        };
        train(&mut net, &xs, &ys, &config);
        accuracy(&net, &xs, &ys)
    }

    #[test]
    fn adam_solves_xor() {
        let acc = solve_xor(Solver::Adam, LearningRateSchedule::Constant);
        assert!(acc > 0.9, "adam accuracy = {acc}");
    }

    #[test]
    fn sgd_with_momentum_solves_xor() {
        let acc = solve_xor(Solver::Sgd, LearningRateSchedule::Constant);
        assert!(acc > 0.85, "sgd accuracy = {acc}");
    }

    #[test]
    fn sgd_adaptive_schedule_solves_xor() {
        let acc = solve_xor(Solver::Sgd, LearningRateSchedule::Adaptive);
        assert!(acc > 0.85, "sgd-adaptive accuracy = {acc}");
    }

    #[test]
    fn lbfgs_solves_xor() {
        let acc = solve_xor(Solver::Lbfgs, LearningRateSchedule::Constant);
        assert!(acc > 0.9, "lbfgs accuracy = {acc}");
    }

    #[test]
    fn threaded_lbfgs_is_thread_count_invariant_and_solves_xor() {
        let (xs, ys) = xor_data(300, 5);
        let config = MlpConfig {
            hidden_layers: 2,
            hidden_size: 12,
            solver: Solver::Lbfgs,
            max_iter: 300,
            patience: 50,
            ..MlpConfig::default()
        };
        let run = |threads: usize| {
            let mut net = Network::new(
                2,
                2,
                12,
                2,
                Activation::Tanh,
                OutputKind::SoftmaxCrossEntropy,
                3,
            );
            train_threaded(&mut net, &xs, &ys, &config, &Executor::new(threads));
            net
        };
        let n1 = run(1);
        let n2 = run(2);
        let n8 = run(8);
        assert_eq!(n1.params, n2.params, "2 threads diverged from 1");
        assert_eq!(n1.params, n8.params, "8 threads diverged from 1");
        let acc = accuracy(&n1, &xs, &ys);
        assert!(acc > 0.9, "threaded lbfgs accuracy = {acc}");
    }

    #[test]
    fn regressor_fits_linear_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 50.0 - 1.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0] + 0.5, -x[0]]).collect();
        let mut net = Network::new(1, 1, 8, 2, Activation::Identity, OutputKind::LinearMse, 2);
        let report = train(
            &mut net,
            &xs,
            &ys,
            &MlpConfig {
                solver: Solver::Lbfgs,
                max_iter: 300,
                validation_fraction: 0.0,
                ..MlpConfig::default()
            },
        );
        assert!(report.final_loss < 1e-4, "loss = {}", report.final_loss);
        let out = net.forward(&[0.5]);
        assert!((out[0] - 1.5).abs() < 0.05);
        assert!((out[1] + 0.5).abs() < 0.05);
    }

    #[test]
    fn early_stopping_triggers_on_plateau() {
        // Pure-noise targets: validation cannot improve for long.
        let mut rng = StdRng::seed_from_u64(8);
        let xs: Vec<Vec<f64>> = (0..80).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
        let ys: Vec<Vec<f64>> = (0..80)
            .map(|_| {
                let label = rng.gen_range(0..2usize);
                let mut y = vec![0.0, 0.0];
                y[label] = 1.0;
                y
            })
            .collect();
        let mut net = Network::new(
            1,
            1,
            4,
            2,
            Activation::Relu,
            OutputKind::SoftmaxCrossEntropy,
            4,
        );
        let report = train(
            &mut net,
            &xs,
            &ys,
            &MlpConfig {
                max_iter: 500,
                patience: 5,
                validation_fraction: 0.2,
                ..MlpConfig::default()
            },
        );
        assert!(
            report.epochs < 500,
            "should stop early, ran {}",
            report.epochs
        );
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let (xs, ys) = xor_data(100, 1);
        let run = || {
            let mut net = Network::new(
                2,
                1,
                6,
                2,
                Activation::Tanh,
                OutputKind::SoftmaxCrossEntropy,
                9,
            );
            train(
                &mut net,
                &xs,
                &ys,
                &MlpConfig {
                    max_iter: 20,
                    seed: 33,
                    ..MlpConfig::default()
                },
            );
            net.params
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exploding_sgd_reports_divergence_with_finite_params() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 20.0 - 1.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![3.0 * x[0]]).collect();
        let mut net = Network::new(1, 1, 4, 1, Activation::Identity, OutputKind::LinearMse, 7);
        let report = train(
            &mut net,
            &xs,
            &ys,
            &MlpConfig {
                solver: Solver::Sgd,
                learning_rate_init: 1e40,
                momentum: 0.0,
                validation_fraction: 0.0,
                max_iter: 50,
                patience: 50,
                ..MlpConfig::default()
            },
        );
        assert!(report.diverged, "1e40 learning rate must diverge");
        assert!(
            net.params.iter().all(|p| p.is_finite()),
            "diverged training must leave finite params"
        );
    }

    #[test]
    fn healthy_training_does_not_report_divergence() {
        let (xs, ys) = xor_data(100, 3);
        let mut net = Network::new(
            2,
            1,
            6,
            2,
            Activation::Tanh,
            OutputKind::SoftmaxCrossEntropy,
            1,
        );
        let report = train(
            &mut net,
            &xs,
            &ys,
            &MlpConfig {
                max_iter: 20,
                ..MlpConfig::default()
            },
        );
        assert!(!report.diverged);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_batch_is_rejected() {
        let mut net = Network::new(1, 1, 2, 2, Activation::Relu, OutputKind::LinearMse, 0);
        train(&mut net, &[], &[], &MlpConfig::default());
    }
}
