//! Seeded property tests: network gradient correctness and trainer
//! robustness across random architectures and data. Cases are generated
//! from explicit seeds (no proptest: the build is offline, and
//! deterministic replay is a workspace invariant).

use automodel_nn::network::{Network, OutputKind, Workspace};
use automodel_nn::{Activation, MlpClassifier, MlpConfig, MlpRegressor, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACTIVATIONS: [Activation; 4] = [
    Activation::Relu,
    Activation::Tanh,
    Activation::Logistic,
    Activation::Identity,
];

/// Smooth activations only: finite differences are invalid at ReLU kinks
/// (a pre-activation near zero makes `f(x±ε)` straddle the kink), so the
/// FD-vs-analytic property is restricted to C¹ activations. ReLU gradients
/// are covered by the unit tests at hand-picked kink-free points.
const SMOOTH_ACTIVATIONS: [Activation; 3] =
    [Activation::Tanh, Activation::Logistic, Activation::Identity];

fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

#[test]
fn gradients_match_finite_differences() {
    for case in 0..32u64 {
        let mut rng = case_rng(21, case);
        let act = SMOOTH_ACTIVATIONS[rng.gen_range(0..SMOOTH_ACTIVATIONS.len())];
        let hidden = rng.gen_range(0usize..3);
        let width = rng.gen_range(2usize..8);
        let in_dim = rng.gen_range(1usize..5);
        let out_dim = rng.gen_range(1usize..4);
        let classifier: bool = rng.gen();
        let seed = rng.gen_range(0u64..10_000);

        let kind = if classifier {
            OutputKind::SoftmaxCrossEntropy
        } else {
            OutputKind::LinearMse
        };
        let mut net = Network::new(in_dim, hidden, width, out_dim, act, kind, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let inputs: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..in_dim).map(|_| rng.gen_range(-1.5..1.5)).collect())
            .collect();
        let targets: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                if classifier {
                    let mut t = vec![0.0; out_dim];
                    t[rng.gen_range(0..out_dim)] = 1.0;
                    t
                } else {
                    (0..out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                }
            })
            .collect();
        let mut ws = Workspace::default();
        let (_, grad) = net.loss_and_grad(&inputs, &targets, 0.01, &mut ws);
        let eps = 1e-6;
        // Spot-check a few parameters.
        let step = (net.n_params() / 7).max(1);
        for i in (0..net.n_params()).step_by(step) {
            let orig = net.params[i];
            net.params[i] = orig + eps;
            let (lp, _) = net.loss_and_grad(&inputs, &targets, 0.01, &mut ws);
            net.params[i] = orig - eps;
            let (lm, _) = net.loss_and_grad(&inputs, &targets, 0.01, &mut ws);
            net.params[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-4 * (1.0 + fd.abs()),
                "case {case} param {i} ({act:?}, hidden {hidden}): fd {fd} vs {g}",
                g = grad[i]
            );
        }
    }
}

#[test]
fn classifier_training_never_panics_and_probabilities_hold() {
    const SOLVERS: [Solver; 3] = [Solver::Lbfgs, Solver::Sgd, Solver::Adam];
    for case in 0..32u64 {
        let mut rng = case_rng(22, case);
        let solver = SOLVERS[rng.gen_range(0..SOLVERS.len())];
        let act = ACTIVATIONS[rng.gen_range(0..ACTIVATIONS.len())];
        let n = rng.gen_range(12usize..60);
        let seed = rng.gen_range(0u64..5_000);

        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let labels: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.0)).collect();
        let mut clf = MlpClassifier::new(MlpConfig {
            hidden_layers: 1,
            hidden_size: 6,
            activation: act,
            solver,
            max_iter: 25,
            seed,
            ..MlpConfig::default()
        });
        clf.fit(&xs, &labels, 2);
        let p = clf.predict_proba(&xs[0]);
        assert_eq!(p.len(), 2, "case {case}");
        assert!(
            (p.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "case {case}: {p:?}"
        );
        assert!(clf.predict(&xs[0]) < 2, "case {case}");
    }
}

#[test]
fn regressor_outputs_are_finite() {
    for case in 0..32u64 {
        let mut rng = case_rng(23, case);
        let act = ACTIVATIONS[rng.gen_range(0..ACTIVATIONS.len())];
        let seed = rng.gen_range(0u64..5_000);

        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..30).map(|_| vec![rng.gen_range(-2.0..2.0)]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * 0.5, -x[0]]).collect();
        let mut reg = MlpRegressor::new(MlpConfig {
            hidden_layers: 1,
            hidden_size: 5,
            activation: act,
            solver: Solver::Adam,
            max_iter: 20,
            seed,
            ..MlpConfig::default()
        });
        reg.fit(&xs, &ys);
        let out = reg.predict(&[0.3]);
        assert_eq!(out.len(), 2, "case {case}");
        assert!(out.iter().all(|v| v.is_finite()), "case {case}: {out:?}");
        assert!(reg.mse(&xs, &ys).is_finite(), "case {case}");
    }
}
