//! Injectable monotonic time source — the canonical definitions live in
//! `automodel-trace` so budgets and trace timestamps share one clock type
//! (a budget test's `ManualClock` is the same object stamping the trace).
//! This module re-exports them under the historical `crate::clock` path.

pub use automodel_trace::{Clock, ManualClock, MonotonicClock};
