//! Trial-level fault containment and deterministic fault injection.
//!
//! CASH-scale search runs hundreds of trial evaluations, and any one of
//! them can panic (a degenerate fold), diverge (a NaN loss), or stall. The
//! searches must survive all of that — Auto-WEKA and Auto-sklearn both
//! quarantine failing configurations rather than abort — *without* giving
//! up the byte-identical determinism contract of [`crate::Executor`].
//!
//! This module is the single containment point:
//!
//! * [`TrialOutcome`] — the closed taxonomy of how one trial can end.
//! * [`contain`] — the only `catch_unwind` in the workspace (the
//!   `no-adhoc-catch-unwind` lint, L7, bans it everywhere outside
//!   `crates/parallel`); converts a panicking evaluation into
//!   [`TrialOutcome::Panicked`] with the payload preserved.
//! * [`TrialPolicy`] / [`run_trial`] — bounded deterministic retries. Each
//!   attempt draws its RNG stream from
//!   [`seed_stream`]`(base, index, attempt)`, so attempt 0 replays the
//!   fault-free stream exactly and retries decorrelate without consulting
//!   ambient state.
//! * [`FaultPlan`] — seeded fault *injection* for tests and drills: panics,
//!   NaN scores, timeouts and delays fired at chosen trial indices (or at a
//!   deterministic per-index rate). Faults are a pure function of
//!   `(plan seed, trial index)` and fire only on attempt 0, which is what
//!   lets tests prove both that containment works and that the retry path
//!   actually recovers.
//!
//! Because an injected fault depends only on the trial index, a plan
//! perturbs every thread count identically: results under faults stay
//! byte-identical at 1, 2 or 8 workers.

use crate::seed::seed_stream;
use automodel_trace::EnvError;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// How a single trial evaluation ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOutcome {
    /// The evaluation completed with a finite score.
    Ok(f64),
    /// The evaluation panicked; the payload message is preserved.
    Panicked(String),
    /// The evaluation detected divergence (e.g. a non-finite training loss)
    /// and aborted itself.
    Diverged(String),
    /// The evaluation returned a non-finite score (NaN or ±∞).
    NonFinite,
    /// The evaluation exceeded its time allowance.
    TimedOut,
}

impl TrialOutcome {
    /// Classify a raw objective value: finite scores are [`Ok`], anything
    /// else is [`NonFinite`].
    ///
    /// [`Ok`]: TrialOutcome::Ok
    /// [`NonFinite`]: TrialOutcome::NonFinite
    pub fn from_score(score: f64) -> TrialOutcome {
        if score.is_finite() {
            TrialOutcome::Ok(score)
        } else {
            TrialOutcome::NonFinite
        }
    }

    /// The score, when the trial succeeded.
    pub fn score(&self) -> Option<f64> {
        match self {
            TrialOutcome::Ok(s) => Some(*s),
            _ => None,
        }
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, TrialOutcome::Ok(_))
    }

    /// The failure record, when the trial failed.
    pub fn failure(&self) -> Option<TrialFailure> {
        let (kind, message) = match self {
            TrialOutcome::Ok(_) => return None,
            TrialOutcome::Panicked(m) => (FailureKind::Panicked, m.clone()),
            TrialOutcome::Diverged(m) => (FailureKind::Diverged, m.clone()),
            TrialOutcome::NonFinite => (FailureKind::NonFinite, "non-finite score".to_string()),
            TrialOutcome::TimedOut => (FailureKind::TimedOut, "trial timed out".to_string()),
        };
        Some(TrialFailure { kind, message })
    }
}

/// The failure arm of the [`TrialOutcome`] taxonomy, as a plain error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureKind {
    Panicked,
    Diverged,
    NonFinite,
    TimedOut,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Panicked => "panicked",
            FailureKind::Diverged => "diverged",
            FailureKind::NonFinite => "non-finite",
            FailureKind::TimedOut => "timed out",
        };
        f.write_str(s)
    }
}

/// A failed trial: the failure class plus its human-readable detail.
/// Implements [`std::error::Error`] so callers can wrap it into their own
/// error enums (`CoreError` carries one per aborted search).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialFailure {
    pub kind: FailureKind,
    pub message: String,
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial {}: {}", self.kind, self.message)
    }
}

impl std::error::Error for TrialFailure {}

/// Run `f`, converting a panic into [`TrialOutcome::Panicked`].
///
/// This is the workspace's only legal `catch_unwind` site (lint L7). The
/// `AssertUnwindSafe` is justified because every caller hands in a closure
/// whose captured state is either owned or discarded on failure: a failed
/// trial's partial state is never observed again.
pub fn contain<F: FnOnce() -> TrialOutcome>(f: F) -> TrialOutcome {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                "<non-string panic payload>".to_string()
            };
            TrialOutcome::Panicked(message)
        }
    }
}

/// Salt separating the fault draws so one trial index (or IO operation
/// index) can carry each fault class independently.
const PANIC_SALT: u64 = 0x70_61_6E_69; // "pani"
const NAN_SALT: u64 = 0x6E_61_6E_00; // "nan"
const DELAY_SALT: u64 = 0x64_6C_61_79; // "dlay"
const TORN_SALT: u64 = 0x74_6F_72_6E; // "torn"
const SHORT_SALT: u64 = 0x73_68_72_74; // "shrt"
const ENOSPC_SALT: u64 = 0x6E_6F_73_70; // "nosp"

/// A seeded plan of faults to inject into trial evaluations.
///
/// Faults are a pure function of `(seed, trial index)`: rate-based faults
/// draw a uniform fraction from [`seed_stream`] and fire when it falls
/// below the rate; explicit `*_at` sets fire at exactly those indices.
/// All faults fire on attempt 0 only, so the bounded retry in
/// [`run_trial`] recovers from every injected fault — injection exercises
/// the containment machinery without changing converged results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability that a trial's first attempt panics.
    pub panic_rate: f64,
    /// Probability that a trial's first attempt scores NaN.
    pub nan_rate: f64,
    /// Probability that a trial's first attempt sleeps briefly first
    /// (perturbs scheduling; must not perturb results).
    pub delay_rate: f64,
    /// Probability that a store write is torn (a partial prefix lands,
    /// then the write errors). Consumed by the store's fault-injecting
    /// VFS, keyed by IO-operation index, not trial index.
    pub torn_rate: f64,
    /// Probability that a store read returns truncated bytes.
    pub short_read_rate: f64,
    /// Probability that a store write fails up front as if the device
    /// were full.
    pub enospc_rate: f64,
    /// Trial indices whose first attempt panics.
    pub panic_at: BTreeSet<u64>,
    /// Trial indices whose first attempt scores NaN.
    pub nan_at: BTreeSet<u64>,
    /// Trial indices whose first attempt sleeps briefly.
    pub delay_at: BTreeSet<u64>,
    /// Trial indices whose first attempt reports [`TrialOutcome::TimedOut`]
    /// (simulating a deadline detector, which keeps outcomes deterministic).
    pub timeout_at: BTreeSet<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (the production default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A rate-based plan: each trial index independently panics / NaNs /
    /// delays with the given probabilities, decided by `seed`.
    pub fn with_rates(seed: u64, panic_rate: f64, nan_rate: f64, delay_rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_rate,
            nan_rate,
            delay_rate,
            ..FaultPlan::default()
        }
    }

    /// Does this plan inject nothing at all?
    pub fn is_empty(&self) -> bool {
        self.panic_rate <= 0.0
            && self.nan_rate <= 0.0
            && self.delay_rate <= 0.0
            && !self.has_io_faults()
            && self.panic_at.is_empty()
            && self.nan_at.is_empty()
            && self.delay_at.is_empty()
            && self.timeout_at.is_empty()
    }

    /// Does this plan inject any store IO faults? (Decides whether the
    /// store wraps its VFS in the fault-injecting layer.)
    pub fn has_io_faults(&self) -> bool {
        self.torn_rate > 0.0 || self.short_read_rate > 0.0 || self.enospc_rate > 0.0
    }

    /// Uniform fraction in `[0, 1)` for `(seed ⊕ salt, index)`.
    fn draw(&self, salt: u64, index: u64) -> f64 {
        // 53 high bits → an exactly representable uniform double.
        (seed_stream(self.seed ^ salt, index, 0) >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn injects_panic(&self, index: u64) -> bool {
        self.panic_at.contains(&index)
            || (self.panic_rate > 0.0 && self.draw(PANIC_SALT, index) < self.panic_rate)
    }

    pub fn injects_nan(&self, index: u64) -> bool {
        self.nan_at.contains(&index)
            || (self.nan_rate > 0.0 && self.draw(NAN_SALT, index) < self.nan_rate)
    }

    pub fn injects_delay(&self, index: u64) -> bool {
        self.delay_at.contains(&index)
            || (self.delay_rate > 0.0 && self.draw(DELAY_SALT, index) < self.delay_rate)
    }

    pub fn injects_timeout(&self, index: u64) -> bool {
        self.timeout_at.contains(&index)
    }

    /// Should store IO operation `op` tear its write? (`op` counts VFS
    /// operations, not trials.)
    pub fn injects_torn_write(&self, op: u64) -> bool {
        self.torn_rate > 0.0 && self.draw(TORN_SALT, op) < self.torn_rate
    }

    /// Should store IO operation `op` return a short read?
    pub fn injects_short_read(&self, op: u64) -> bool {
        self.short_read_rate > 0.0 && self.draw(SHORT_SALT, op) < self.short_read_rate
    }

    /// Should store IO operation `op` fail as if the device were full?
    pub fn injects_enospc(&self, op: u64) -> bool {
        self.enospc_rate > 0.0 && self.draw(ENOSPC_SALT, op) < self.enospc_rate
    }

    /// Parse the `AUTOMODEL_FAULTS` environment variable:
    /// `seed=3,panic=0.1,nan=0.1,delay=0.05`. Unknown keys and malformed
    /// values are an [`EnvError`] — a mistyped drill spec must stop the
    /// run, not silently drill nothing; an unset or empty variable yields
    /// an empty plan.
    pub fn from_env() -> Result<FaultPlan, EnvError> {
        match std::env::var(crate::env::FAULTS_ENV) {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::none()),
        }
    }

    /// Parse a `key=value` comma list (the `AUTOMODEL_FAULTS` format).
    /// Keys are `seed` (u64) and the rates in `[0, 1]`:
    /// `panic`/`nan`/`delay` for trial faults, `torn`/`short_read`/
    /// `enospc` for store IO faults; anything else — an unknown key, a
    /// bare word, a missing or unparsable value — is an [`EnvError`]
    /// quoting the whole spec.
    pub fn parse(spec: &str) -> Result<FaultPlan, EnvError> {
        let bad = |expected: &'static str| EnvError::new(crate::env::FAULTS_ENV, spec, expected);
        let mut plan = FaultPlan::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once('=') else {
                return Err(bad("comma-separated key=value pairs"));
            };
            let value = value.trim();
            let rate = |field: &'static str| {
                value
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| bad(field))
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| bad("seed=<u64>"))?;
                }
                "panic" => plan.panic_rate = rate("panic=<rate in [0,1]>")?,
                "nan" => plan.nan_rate = rate("nan=<rate in [0,1]>")?,
                "delay" => plan.delay_rate = rate("delay=<rate in [0,1]>")?,
                "torn" => plan.torn_rate = rate("torn=<rate in [0,1]>")?,
                "short_read" => plan.short_read_rate = rate("short_read=<rate in [0,1]>")?,
                "enospc" => plan.enospc_rate = rate("enospc=<rate in [0,1]>")?,
                _ => {
                    return Err(bad(
                        "keys seed, panic, nan, delay, torn, short_read, enospc",
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// How trial failures are retried, penalized, and (by the HPO layer)
/// quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPolicy {
    /// Total attempts per trial (first try + retries); at least 1.
    pub max_attempts: usize,
    /// Finite stand-in score recorded for a trial whose every attempt
    /// failed. Must be finite — optimizers assume all recorded scores are.
    pub penalty: f64,
    /// Faults to inject (empty in production).
    pub faults: FaultPlan,
}

impl Default for TrialPolicy {
    fn default() -> TrialPolicy {
        TrialPolicy {
            max_attempts: 2,
            penalty: -1.0e9,
            faults: FaultPlan::none(),
        }
    }
}

impl TrialPolicy {
    /// The default policy carrying the [`FaultPlan`] from the
    /// `AUTOMODEL_FAULTS` environment variable (empty when unset,
    /// [`EnvError`] when malformed).
    pub fn from_env() -> Result<TrialPolicy, EnvError> {
        Ok(TrialPolicy {
            faults: FaultPlan::from_env()?,
            ..TrialPolicy::default()
        })
    }

    /// Like [`TrialPolicy::from_env`], but fail-closed: a malformed
    /// `AUTOMODEL_FAULTS` spec yields the default policy (no injected
    /// faults) instead of an error. For construction sites that cannot
    /// return `Result`; strictness is still enforced at run entry points
    /// via [`crate::env::validate_env`], which surfaces the same parse
    /// failure before any of these fallbacks can fire.
    pub fn from_env_or_default() -> TrialPolicy {
        TrialPolicy::from_env().unwrap_or_default()
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> TrialPolicy {
        self.faults = faults;
        self
    }

    pub fn with_max_attempts(mut self, n: usize) -> TrialPolicy {
        self.max_attempts = n.max(1);
        self
    }
}

/// The result of [`run_trial`]: the final outcome, how many attempts were
/// spent reaching it, and the failure of every attempt that did not
/// succeed, in attempt order — the raw material for the trace layer's
/// `fault`/`retry` events. `failures.len() == attempts - 1` when the trial
/// eventually succeeded, `== attempts` when it never did.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    pub outcome: TrialOutcome,
    pub attempts: usize,
    pub failures: Vec<TrialFailure>,
}

/// Execute one trial under `policy`: inject any planned faults (attempt 0
/// only), contain panics, and retry failures up to
/// `policy.max_attempts` times. `eval` receives
/// `(seed_stream(base_seed, index, attempt), attempt)` so a stochastic
/// evaluation can decorrelate its retries; deterministic objectives may
/// ignore both.
///
/// The report is a pure function of `(policy, base_seed, index, eval)` —
/// nothing here consults the clock, the thread, or ambient entropy — which
/// is what keeps fault-injected parallel runs byte-identical to serial
/// ones.
pub fn run_trial<F>(policy: &TrialPolicy, base_seed: u64, index: u64, mut eval: F) -> TrialReport
where
    F: FnMut(u64, usize) -> TrialOutcome,
{
    let attempts = policy.max_attempts.max(1);
    let mut last = TrialOutcome::NonFinite;
    let mut failures = Vec::new();
    for attempt in 0..attempts {
        let seed = seed_stream(base_seed, index, attempt as u64);
        let eval = &mut eval;
        let outcome = contain(move || {
            if attempt == 0 {
                if policy.faults.injects_delay(index) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                if policy.faults.injects_timeout(index) {
                    return TrialOutcome::TimedOut;
                }
                if policy.faults.injects_panic(index) {
                    // lint:allow(no-panic-lib): deterministic fault injection; contained one line up
                    panic!("injected fault at trial {index}");
                }
                if policy.faults.injects_nan(index) {
                    return TrialOutcome::from_score(f64::NAN);
                }
            }
            eval(seed, attempt)
        });
        if outcome.is_ok() {
            return TrialReport {
                outcome,
                attempts: attempt + 1,
                failures,
            };
        }
        if let Some(failure) = outcome.failure() {
            failures.push(failure);
        }
        last = outcome;
    }
    TrialReport {
        outcome: last,
        attempts,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_score_classifies_finiteness() {
        assert_eq!(TrialOutcome::from_score(0.5), TrialOutcome::Ok(0.5));
        assert_eq!(TrialOutcome::from_score(f64::NAN), TrialOutcome::NonFinite);
        assert_eq!(
            TrialOutcome::from_score(f64::INFINITY),
            TrialOutcome::NonFinite
        );
        assert_eq!(
            TrialOutcome::from_score(f64::NEG_INFINITY),
            TrialOutcome::NonFinite
        );
    }

    #[test]
    fn contain_catches_panics_with_payload() {
        let out = contain(|| panic!("boom {}", 7));
        assert_eq!(out, TrialOutcome::Panicked("boom 7".to_string()));
        let out = contain(|| std::panic::panic_any(42u32));
        assert_eq!(
            out,
            TrialOutcome::Panicked("<non-string panic payload>".to_string())
        );
    }

    #[test]
    fn failure_maps_every_arm() {
        assert!(TrialOutcome::Ok(1.0).failure().is_none());
        let f = TrialOutcome::Panicked("p".into()).failure().unwrap();
        assert_eq!(f.kind, FailureKind::Panicked);
        assert_eq!(format!("{f}"), "trial panicked: p");
        let f = TrialOutcome::Diverged("nan loss".into()).failure().unwrap();
        assert_eq!(f.kind, FailureKind::Diverged);
        let f = TrialOutcome::NonFinite.failure().unwrap();
        assert_eq!(f.kind, FailureKind::NonFinite);
        let f = TrialOutcome::TimedOut.failure().unwrap();
        assert_eq!(f.kind, FailureKind::TimedOut);
        assert_eq!(format!("{f}"), "trial timed out: trial timed out");
    }

    #[test]
    fn fault_plan_is_deterministic_and_index_local() {
        let plan = FaultPlan::with_rates(3, 0.1, 0.1, 0.05);
        let fired: Vec<(bool, bool, bool)> = (0..200)
            .map(|i| {
                (
                    plan.injects_panic(i),
                    plan.injects_nan(i),
                    plan.injects_delay(i),
                )
            })
            .collect();
        let again: Vec<(bool, bool, bool)> = (0..200)
            .map(|i| {
                (
                    plan.injects_panic(i),
                    plan.injects_nan(i),
                    plan.injects_delay(i),
                )
            })
            .collect();
        assert_eq!(fired, again);
        let panics = fired.iter().filter(|f| f.0).count();
        assert!(panics > 5 && panics < 50, "panic rate off: {panics}/200");
    }

    #[test]
    fn empty_plan_fires_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for i in 0..100 {
            assert!(!plan.injects_panic(i) && !plan.injects_nan(i) && !plan.injects_delay(i));
        }
    }

    #[test]
    fn parse_reads_the_env_format() {
        let plan = FaultPlan::parse("seed=3, panic=0.1, nan=0.2, delay=0.05").unwrap();
        assert_eq!(plan.seed, 3);
        assert_eq!(plan.panic_rate, 0.1);
        assert_eq!(plan.nan_rate, 0.2);
        assert_eq!(plan.delay_rate, 0.05);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
    }

    #[test]
    fn parse_reads_io_fault_keys() {
        let plan = FaultPlan::parse("seed=5,torn=0.3,short_read=0.2,enospc=0.1").unwrap();
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.torn_rate, 0.3);
        assert_eq!(plan.short_read_rate, 0.2);
        assert_eq!(plan.enospc_rate, 0.1);
        assert!(plan.has_io_faults());
        assert!(!plan.is_empty());
        assert!(!FaultPlan::parse("seed=5,panic=0.1")
            .unwrap()
            .has_io_faults());
    }

    #[test]
    fn io_faults_are_deterministic_per_operation_index() {
        let plan = FaultPlan::parse("seed=5,torn=0.3,short_read=0.3,enospc=0.2").unwrap();
        let fired: Vec<(bool, bool, bool)> = (0..200)
            .map(|op| {
                (
                    plan.injects_torn_write(op),
                    plan.injects_short_read(op),
                    plan.injects_enospc(op),
                )
            })
            .collect();
        let again: Vec<(bool, bool, bool)> = (0..200)
            .map(|op| {
                (
                    plan.injects_torn_write(op),
                    plan.injects_short_read(op),
                    plan.injects_enospc(op),
                )
            })
            .collect();
        assert_eq!(fired, again);
        let torn = fired.iter().filter(|f| f.0).count();
        assert!(torn > 20 && torn < 120, "torn rate off: {torn}/200");
        // Trial faults and IO faults draw from salted, independent streams.
        let trial_plan = FaultPlan::with_rates(5, 0.3, 0.0, 0.0);
        let panics: Vec<bool> = (0..200).map(|i| trial_plan.injects_panic(i)).collect();
        let torn_bools: Vec<bool> = fired.iter().map(|f| f.0).collect();
        assert_ne!(panics, torn_bools, "salts failed to separate the streams");
    }

    #[test]
    fn parse_rejects_malformed_specs_by_name() {
        for bad in [
            "seed=x",            // unparsable seed
            "bogus",             // bare word, no '='
            "panic=",            // missing value
            "=1",                // missing key
            "typo=0.5",          // unknown key
            "panic=2.0",         // rate out of range
            "nan=-0.1",          // negative rate
            "seed=3,panic=0.1x", // one bad piece poisons the spec
        ] {
            let err =
                FaultPlan::parse(bad).expect_err("malformed AUTOMODEL_FAULTS must be rejected");
            assert_eq!(err.var, "AUTOMODEL_FAULTS");
            assert_eq!(err.value, bad);
            let msg = err.to_string();
            assert!(msg.contains("AUTOMODEL_FAULTS"), "{msg}");
            assert!(msg.contains(bad), "{msg}");
        }
    }

    #[test]
    fn run_trial_retries_injected_faults_to_success() {
        let faults = FaultPlan {
            panic_at: [4u64].into_iter().collect(),
            nan_at: [5u64].into_iter().collect(),
            timeout_at: [6u64].into_iter().collect(),
            ..FaultPlan::none()
        };
        let policy = TrialPolicy::default().with_faults(faults);
        for index in 3..=6u64 {
            let report = run_trial(&policy, 9, index, |_seed, _attempt| {
                TrialOutcome::from_score(index as f64)
            });
            assert_eq!(
                report.outcome,
                TrialOutcome::Ok(index as f64),
                "index {index}"
            );
            // Faulted indices needed the retry; clean ones did not.
            assert_eq!(report.attempts, if index == 3 { 1 } else { 2 });
            assert_eq!(report.failures.len(), report.attempts - 1);
        }
        let policy = TrialPolicy::default().with_faults(FaultPlan {
            panic_at: [4u64].into_iter().collect(),
            ..FaultPlan::none()
        });
        let report = run_trial(&policy, 9, 4, |_s, _a| TrialOutcome::from_score(1.0));
        assert_eq!(report.failures[0].kind, FailureKind::Panicked);
    }

    #[test]
    fn run_trial_exhausts_attempts_on_persistent_failure() {
        let policy = TrialPolicy::default().with_max_attempts(3);
        let mut calls = 0;
        let report = run_trial(&policy, 0, 0, |_seed, _attempt| {
            calls += 1;
            panic!("always fails");
        });
        assert_eq!(calls, 3);
        assert_eq!(report.attempts, 3);
        assert_eq!(
            report.outcome,
            TrialOutcome::Panicked("always fails".into())
        );
        // Every exhausted attempt left a failure record, in order.
        assert_eq!(report.failures.len(), 3);
        assert!(report
            .failures
            .iter()
            .all(|f| f.kind == FailureKind::Panicked));
    }

    #[test]
    fn run_trial_passes_attempt_decorrelated_seeds() {
        let policy = TrialPolicy::default().with_max_attempts(2);
        let mut seeds = Vec::new();
        run_trial(&policy, 77, 5, |seed, attempt| {
            seeds.push((seed, attempt));
            TrialOutcome::NonFinite
        });
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], (seed_stream(77, 5, 0), 0));
        assert_eq!(seeds[1], (seed_stream(77, 5, 1), 1));
        assert_ne!(seeds[0].0, seeds[1].0);
    }
}
