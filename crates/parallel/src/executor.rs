//! The scoped worker pool with an index-ordered work queue.

use crate::budget::SharedBudget;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A fixed-width pool of scoped workers that evaluates index-addressed
/// batches with ordered reduction. Cheap to construct (threads are spawned
/// per batch and joined before `map*` returns — no idle pool to manage),
/// cheap to clone, and safe to share.
///
/// Determinism contract: for a task function `f` that is deterministic in
/// its index, `map` (and `map_budgeted` under an evaluation-count budget)
/// returns byte-identical output at every thread count.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Single-threaded executor — the CI determinism-replay configuration.
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `f(0), …, f(n-1)` and return the results in index order.
    /// If any task panics, the panic is re-raised on the caller thread.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run(n, None, f)
    }

    /// Like [`map`](Executor::map), but stop claiming tasks once `budget`
    /// is exhausted. The executed tasks always form the prefix `[0, k)`;
    /// the returned vector holds exactly their results.
    ///
    /// `budget` is checked before every task claim. An evaluation-count
    /// limit additionally caps the prefix up front (`k ≤ remaining_evals`),
    /// which is what makes eval-bounded runs thread-count-invariant. `f` is
    /// responsible for calling [`SharedBudget::record`] once per task so
    /// the count and the incumbent advance.
    pub fn map_budgeted<T, F>(&self, n: usize, budget: &SharedBudget, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run(n, Some(budget), f)
    }

    fn run<T, F>(&self, n: usize, budget: Option<&SharedBudget>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let allowed = budget.map_or(n, |b| n.min(b.remaining_evals()));
        let workers = self.threads.min(allowed);
        if workers <= 1 {
            // Serial path. Identical claim discipline (check budget, then
            // take the next index) and trivially in-order reduction, so the
            // threaded path below can never disagree with it under an
            // eval-count budget.
            let mut out = Vec::with_capacity(allowed);
            for idx in 0..allowed {
                if budget.is_some_and(|b| b.exhausted()) {
                    break;
                }
                out.push(f(idx));
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(allowed));
        let result = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if budget.is_some_and(|b| b.exhausted()) {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= allowed {
                            break;
                        }
                        // A claimed index is always evaluated (budget checks
                        // happen strictly before the claim), so the executed
                        // set stays a contiguous prefix — no holes.
                        let value = f(idx);
                        slots.lock().push((idx, value));
                    })
                })
                .collect();
            // Join explicitly to recover the original panic payload (an
            // unjoined scoped thread would surface only as a generic
            // "a scoped thread panicked").
            let mut panicked = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    stop.store(true, Ordering::Relaxed);
                    panicked.get_or_insert(payload);
                }
            }
            panicked
        });
        match result {
            Ok(Some(payload)) | Err(payload) => std::panic::resume_unwind(payload),
            Ok(None) => {}
        }
        let mut pairs = slots.into_inner();
        pairs.sort_by_key(|(idx, _)| *idx);
        pairs.into_iter().map(|(_, value)| value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetSpec;
    use crate::clock::ManualClock;
    use crate::seed::seed_stream;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn map_returns_results_in_index_order_despite_uneven_costs() {
        // Early indices sleep longest, so completion order inverts claim
        // order — the reduction must restore index order.
        let out = Executor::new(4).map(12, |i| {
            std::thread::sleep(Duration::from_millis((12 - i as u64) % 5));
            i * i
        });
        assert_eq!(out, (0..12).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_is_identical_across_thread_counts() {
        let run = |threads| {
            Executor::new(threads).map(64, |i| {
                let s = seed_stream(99, i as u64, 0);
                (i, s, (s as f64).sqrt())
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates_to_the_caller() {
        Executor::new(4).map(8, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn eval_budget_caps_the_prefix_exactly() {
        for threads in [1, 2, 8] {
            let budget = SharedBudget::new(BudgetSpec::evals(5), Arc::new(ManualClock::new()));
            let out = Executor::new(threads).map_budgeted(20, &budget, |i| {
                budget.record(0.0);
                i
            });
            assert_eq!(out, vec![0, 1, 2, 3, 4], "threads = {threads}");
            assert_eq!(budget.evals(), 5);
        }
    }

    #[test]
    fn target_budget_stops_mid_batch() {
        let budget = SharedBudget::new(
            BudgetSpec::default().with_target(0.5),
            Arc::new(ManualClock::new()),
        );
        let out = Executor::new(2).map_budgeted(100, &budget, |i| {
            budget.record(if i >= 3 { 1.0 } else { 0.0 });
            i
        });
        // The target trips after task 3; workers may already hold claims,
        // so a small overshoot (≤ thread count) is allowed — but the result
        // must stay an index-ordered prefix and far short of the batch.
        assert!(out.len() >= 4 && out.len() < 100, "len = {}", out.len());
        assert_eq!(out, (0..out.len()).collect::<Vec<_>>());
    }

    #[test]
    fn time_budget_stops_mid_batch_on_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let budget = SharedBudget::new(BudgetSpec::time(Duration::from_secs(10)), clock.clone());
        let out = Executor::new(3).map_budgeted(100, &budget, |i| {
            if i == 5 {
                clock.advance(Duration::from_secs(11));
            }
            budget.record(0.0);
            i
        });
        assert!(out.len() >= 6 && out.len() < 100, "len = {}", out.len());
        assert_eq!(out, (0..out.len()).collect::<Vec<_>>());
    }

    #[test]
    fn exhausted_budget_runs_nothing() {
        let budget = SharedBudget::new(BudgetSpec::evals(0), Arc::new(ManualClock::new()));
        let out = Executor::new(4).map_budgeted(10, &budget, |i| {
            budget.record(0.0);
            i
        });
        assert!(out.is_empty());
        assert_eq!(budget.evals(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::serial().threads(), 1);
        assert_eq!(Executor::new(0).map(3, |i| i), vec![0, 1, 2]);
    }
}
