//! Per-task RNG seed streams.

/// Derive an independent RNG seed for task `index` from `base`.
///
/// This is a SplitMix64-style finalizer over `base ⊕ index·φ64` (the 64-bit
/// golden-ratio constant). Properties that matter here:
///
/// * deterministic in `(base, index)` — a task's randomness never depends
///   on batching, scheduling, or thread count;
/// * distinct indices decorrelate fully — consecutive indices differ in
///   roughly half their output bits, so streams behave as independent seeds
///   even though `xoshiro`-family generators are seeded from a single word.
pub fn seed_stream(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..1000).map(|i| seed_stream(42, i)).collect();
        let again: Vec<u64> = (0..1000).map(|i| seed_stream(42, i)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision within a batch");
    }

    #[test]
    fn different_bases_give_different_streams() {
        assert_ne!(seed_stream(1, 0), seed_stream(2, 0));
        assert_ne!(seed_stream(0, 5), seed_stream(1, 5));
    }

    #[test]
    fn consecutive_indices_decorrelate() {
        // Avalanche sanity: adjacent indices should flip many output bits.
        for i in 0..64u64 {
            let diff = (seed_stream(7, i) ^ seed_stream(7, i + 1)).count_ones();
            assert!(diff >= 10, "index {i}: only {diff} bits differ");
        }
    }
}
