//! Per-task RNG seed streams.

/// Derive an independent RNG seed for attempt `attempt` of task `index`
/// from `base`.
///
/// This is a SplitMix64-style finalizer over
/// `base ⊕ index·φ64 ⊕ attempt·c` (φ64 is the 64-bit golden-ratio
/// constant, `c` a second odd mixing constant). Properties that matter
/// here:
///
/// * deterministic in `(base, index, attempt)` — a task's randomness never
///   depends on batching, scheduling, or thread count;
/// * distinct indices decorrelate fully — consecutive indices differ in
///   roughly half their output bits, so streams behave as independent seeds
///   even though `xoshiro`-family generators are seeded from a single word;
/// * `attempt = 0` reproduces the historical two-argument stream exactly,
///   so first attempts (the only attempts, absent faults) replay byte-for-
///   byte against pre-retry artifacts, while each retry of a failed trial
///   draws from a fresh, equally decorrelated stream.
pub fn seed_stream(base: u64, index: u64, attempt: u64) -> u64 {
    let mut z = base
        ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..1000).map(|i| seed_stream(42, i, 0)).collect();
        let again: Vec<u64> = (0..1000).map(|i| seed_stream(42, i, 0)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision within a batch");
    }

    #[test]
    fn different_bases_give_different_streams() {
        assert_ne!(seed_stream(1, 0, 0), seed_stream(2, 0, 0));
        assert_ne!(seed_stream(0, 5, 0), seed_stream(1, 5, 0));
    }

    #[test]
    fn consecutive_indices_decorrelate() {
        // Avalanche sanity: adjacent indices should flip many output bits.
        for i in 0..64u64 {
            let diff = (seed_stream(7, i, 0) ^ seed_stream(7, i + 1, 0)).count_ones();
            assert!(diff >= 10, "index {i}: only {diff} bits differ");
        }
    }

    #[test]
    fn attempts_give_distinct_decorrelated_streams() {
        // Retries must not replay the failed attempt's randomness.
        for a in 0..8u64 {
            let diff = (seed_stream(7, 3, a) ^ seed_stream(7, 3, a + 1)).count_ones();
            assert!(diff >= 10, "attempt {a}: only {diff} bits differ");
        }
        // And attempt streams must not collide with index streams.
        let seeds: Vec<u64> = (0..100)
            .flat_map(|i| (0..4).map(move |a| seed_stream(11, i, a)))
            .collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "index/attempt seed collision");
    }
}
