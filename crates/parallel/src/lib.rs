//! Deterministic parallel evaluation for the Auto-Model pipeline.
//!
//! Every expensive score in the paper — GA fitness over a population
//! (Algorithms 2–3), k-fold CV accuracy `f(λ, A, D)`, the per-algorithm
//! performance sweeps behind PoRatio — is an embarrassingly parallel batch.
//! This crate provides the one worker pool all of them share, built so that
//! parallelism never changes results:
//!
//! * **Index-ordered work queue.** Tasks are claimed from an atomic counter,
//!   so the set of executed tasks is always a prefix `[0, k)` of the batch,
//!   independent of which worker ran what.
//! * **Ordered reduction.** Results are reassembled in task-index order
//!   before they are returned; float accumulation order (and therefore
//!   rounding) cannot depend on scheduling.
//! * **Per-task seed streams.** [`seed_stream`] derives an independent RNG
//!   seed for each task index from one base seed, so a task's randomness
//!   depends only on `(base_seed, index)` — never on the thread that ran it.
//! * **Per-evaluation budgets.** [`SharedBudget`] is checked before every
//!   task claim, not once per batch, so a wall-clock or target budget can
//!   stop a batch mid-flight. Evaluation-count limits are enforced exactly
//!   (the executable prefix is computed up front), which keeps eval-bounded
//!   runs byte-identical at any thread count.
//! * **Panic propagation.** A panicking worker aborts the batch and the
//!   panic is re-raised on the caller thread with its original payload.
//! * **Trial-level fault containment.** [`fault`] wraps individual trial
//!   evaluations in `catch_unwind` (the only legal site in the workspace),
//!   classifies every ending into a [`TrialOutcome`], retries failures on
//!   decorrelated seed streams, and can deterministically *inject* faults
//!   ([`FaultPlan`]) so the containment machinery is provably exercised.
//! * **Deterministic trial-result caching.** [`cache`] memoizes whole
//!   [`TrialOutcome`]s under canonical config fingerprints — failures
//!   exactly like successes — with snapshot reads during a batch and
//!   index-ordered inserts at the batch boundary, so dedup never perturbs
//!   results (`AUTOMODEL_CACHE` toggles and bounds it).
//!
//! The determinism contract, precisely: with an evaluation-count budget (or
//! no budget), `Executor::new(t).map*(…)` returns the same bytes for every
//! `t ≥ 1`. Wall-clock and target budgets stop at a point that depends on
//! real scheduling; such runs still never evaluate anything beyond the
//! index-ordered prefix, but the prefix length may vary.

mod budget;
pub mod cache;
mod clock;
pub mod env;
mod executor;
pub mod fault;
mod seed;

pub use budget::{BudgetSpec, SharedBudget};
pub use cache::{CacheSnapshot, CacheStats, CachedTrial, TrialCache};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use env::{threads_from_env, validate_env};
pub use executor::Executor;
pub use fault::{
    contain, run_trial, FailureKind, FaultPlan, TrialFailure, TrialOutcome, TrialPolicy,
    TrialReport,
};
pub use seed::seed_stream;
