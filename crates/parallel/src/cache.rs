//! Deterministic trial-result cache with hit/miss telemetry.
//!
//! The DMD stage burns almost all of its budget on repeated trial
//! evaluations: the paper's GA (population 50 × 100 generations,
//! Algorithm 3) re-visits duplicate genomes every generation, and UDR's
//! HPO loops re-propose near-identical configurations. Auto-WEKA and
//! Auto-sklearn both lean on evaluation caching to make SMAC-style search
//! tractable; this module is the workspace's single memoization point (the
//! `no-adhoc-memo` lint, L8, bans trial memoization everywhere else).
//!
//! Three properties distinguish [`TrialCache`] from an ordinary map:
//!
//! * **Failures are first-class.** The cache stores whole
//!   [`TrialOutcome`]s (plus the attempts spent reaching them), so a
//!   panicking or NaN-scoring configuration is served from cache exactly
//!   like a successful one — a cached failure is never re-run past the
//!   retry policy, and replaying it re-derives the same penalty score and
//!   quarantine decision the live run produced.
//! * **Determinism by construction.** During a parallel batch, workers
//!   only *read* the cache (a batch-start snapshot, like the quarantine);
//!   insertions are committed at the batch boundary in trial-index order.
//!   First-completion-wins races therefore cannot exist, FIFO eviction
//!   order is a pure function of the trial history, and cache-on results
//!   are byte-identical to cache-off results at any thread count.
//! * **Telemetry.** Hits, misses, insertions, evictions and approximate
//!   resident bytes are counted ([`CacheStats`]) and surfaced by the
//!   Table X harness and the `exp_cache_effect` bench.
//!
//! Keys are canonical `Config` fingerprints built by the HPO layer (this
//! crate is below the `Config` type, so it stores opaque strings); see
//! `automodel_hpo::fingerprint` for the encoding rules. The cache is
//! toggled and bounded by the `AUTOMODEL_CACHE` environment variable:
//! `0`/`off`/`false` disables it, `1`/`on`/`true` (or unset) enables it at
//! the default capacity, and a number ≥ 2 sets the capacity directly.

use crate::fault::TrialOutcome;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default capacity (entries) when `AUTOMODEL_CACHE` enables the cache
/// without naming a bound.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Fixed per-entry overhead charged on top of the key and message bytes
/// when approximating resident size (map node + FIFO slot + outcome enum).
const ENTRY_OVERHEAD_BYTES: u64 = 96;

/// One memoized trial: the full outcome (success *or* failure) and the
/// attempts the live run spent producing it. Replaying a hit must be
/// indistinguishable from re-running the trial, so both fields are needed:
/// the outcome re-derives the score/failure, the attempt count re-derives
/// the quarantine decision (`attempts > 0` ⇒ a real, retried failure).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedTrial {
    pub outcome: TrialOutcome,
    pub attempts: usize,
}

impl CachedTrial {
    /// Approximate resident bytes of this entry under `key`.
    fn approx_bytes(&self, key: &str) -> u64 {
        let payload = match &self.outcome {
            TrialOutcome::Panicked(m) | TrialOutcome::Diverged(m) => m.len() as u64,
            _ => 0,
        };
        key.len() as u64 + payload + ENTRY_OVERHEAD_BYTES
    }
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a live evaluation.
    pub misses: u64,
    /// Distinct keys inserted.
    pub insertions: u64,
    /// Entries displaced by the capacity bound (FIFO order).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate resident bytes (keys + failure messages + overhead).
    pub bytes: u64,
    /// Was the cache enabled at all?
    pub enabled: bool,
}

impl CacheStats {
    /// Hits as a fraction of all lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another snapshot into this one (for per-cell telemetry sums;
    /// `entries`/`bytes` add because the snapshots come from disjoint
    /// caches).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.enabled |= other.enabled;
    }
}

/// Keyed store + FIFO insertion order, guarded by one lock so eviction
/// decisions are atomic with insertions.
#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<String, CachedTrial>,
    order: VecDeque<String>,
    bytes: u64,
}

/// Thread-safe, deterministic trial-result cache.
///
/// Shared by reference (`&TrialCache` or `Arc<TrialCache>`): lookups take
/// a read lock plus relaxed counter increments, so concurrent workers
/// never serialize on each other for the common miss/hit path. See the
/// module docs for the determinism discipline callers must follow
/// (snapshot reads during a batch, index-ordered inserts at the boundary).
#[derive(Debug)]
pub struct TrialCache {
    enabled: bool,
    capacity: usize,
    inner: RwLock<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl Default for TrialCache {
    fn default() -> TrialCache {
        TrialCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl TrialCache {
    /// An enabled cache bounded to `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> TrialCache {
        TrialCache {
            enabled: true,
            capacity: capacity.max(1),
            inner: RwLock::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache that stores nothing and always misses (without counting):
    /// the `AUTOMODEL_CACHE=0` configuration.
    pub fn disabled() -> TrialCache {
        TrialCache {
            enabled: false,
            ..TrialCache::new(1)
        }
    }

    /// Build from the `AUTOMODEL_CACHE` environment variable; unset means
    /// enabled at the default capacity.
    pub fn from_env() -> TrialCache {
        TrialCache::from_spec(std::env::var("AUTOMODEL_CACHE").ok().as_deref())
    }

    /// Parse an `AUTOMODEL_CACHE` value: `0`/`off`/`false` ⇒ disabled;
    /// `1`/`on`/`true`/empty/`None` ⇒ enabled at the default capacity; a
    /// number ≥ 2 ⇒ enabled at that capacity. Anything malformed falls
    /// back to the enabled default (a cache toggle must never abort a
    /// run).
    pub fn from_spec(spec: Option<&str>) -> TrialCache {
        let Some(spec) = spec else {
            return TrialCache::default();
        };
        match spec.trim().to_ascii_lowercase().as_str() {
            "0" | "off" | "false" => TrialCache::disabled(),
            "" | "1" | "on" | "true" => TrialCache::default(),
            other => match other.parse::<usize>() {
                Ok(n) => TrialCache::new(n),
                Err(_) => TrialCache::default(),
            },
        }
    }

    /// Is this cache storing anything at all?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries right now.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a canonical key. Counts a hit or a miss (disabled caches
    /// return `None` without counting — there was no lookup to account).
    pub fn get(&self, key: &str) -> Option<CachedTrial> {
        if !self.enabled {
            return None;
        }
        let found = self.inner.read().map.get(key).cloned();
        match found {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a completed trial under its canonical key, evicting the
    /// oldest entries past the capacity bound (FIFO — insertion order is
    /// deterministic because callers commit inserts in trial-index order,
    /// so eviction order is too). Re-inserting an existing key is a no-op:
    /// under the determinism contract the value could only be identical.
    pub fn insert(&self, key: String, value: CachedTrial) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.write();
        if inner.map.contains_key(&key) {
            return;
        }
        inner.bytes += value.approx_bytes(&key);
        inner.order.push_back(key.clone());
        inner.map.insert(key, value);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&oldest) {
                inner.bytes = inner.bytes.saturating_sub(evicted.approx_bytes(&oldest));
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.read();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            enabled: self.enabled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(score: f64) -> CachedTrial {
        CachedTrial {
            outcome: TrialOutcome::Ok(score),
            attempts: 1,
        }
    }

    #[test]
    fn get_after_insert_round_trips_successes_and_failures() {
        let cache = TrialCache::new(8);
        cache.insert("a".into(), ok(0.5));
        cache.insert(
            "b".into(),
            CachedTrial {
                outcome: TrialOutcome::Panicked("boom".into()),
                attempts: 2,
            },
        );
        assert_eq!(cache.get("a"), Some(ok(0.5)));
        let b = cache.get("b").unwrap();
        assert_eq!(b.outcome, TrialOutcome::Panicked("boom".into()));
        assert_eq!(b.attempts, 2);
        assert_eq!(cache.get("c"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (2, 1, 2));
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0);
        assert!(stats.enabled);
    }

    #[test]
    fn fifo_eviction_respects_the_capacity_bound() {
        let cache = TrialCache::new(2);
        cache.insert("k0".into(), ok(0.0));
        cache.insert("k1".into(), ok(1.0));
        cache.insert("k2".into(), ok(2.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("k0"), None, "oldest entry must be evicted");
        assert!(cache.get("k1").is_some() && cache.get("k2").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn reinserting_a_key_is_a_noop() {
        let cache = TrialCache::new(4);
        cache.insert("k".into(), ok(1.0));
        cache.insert("k".into(), ok(1.0)); // duplicate config in one batch
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(cache.get("k"), Some(ok(1.0)));
    }

    #[test]
    fn disabled_cache_stores_and_counts_nothing() {
        let cache = TrialCache::disabled();
        cache.insert("k".into(), ok(1.0));
        assert_eq!(cache.get("k"), None);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
        assert!(!stats.enabled);
    }

    #[test]
    fn from_spec_parses_the_env_grammar() {
        assert!(!TrialCache::from_spec(Some("0")).is_enabled());
        assert!(!TrialCache::from_spec(Some("off")).is_enabled());
        assert!(!TrialCache::from_spec(Some("FALSE")).is_enabled());
        for spec in [None, Some(""), Some("1"), Some("on"), Some("true")] {
            let cache = TrialCache::from_spec(spec);
            assert!(cache.is_enabled(), "spec {spec:?}");
            assert_eq!(cache.capacity(), DEFAULT_CACHE_CAPACITY, "spec {spec:?}");
        }
        let sized = TrialCache::from_spec(Some("128"));
        assert!(sized.is_enabled());
        assert_eq!(sized.capacity(), 128);
        // Malformed values fall back to the enabled default, never abort.
        let sloppy = TrialCache::from_spec(Some("plenty"));
        assert!(sloppy.is_enabled());
        assert_eq!(sloppy.capacity(), DEFAULT_CACHE_CAPACITY);
    }

    #[test]
    fn eviction_accounting_never_underflows_bytes() {
        let cache = TrialCache::new(1);
        for i in 0..10 {
            cache.insert(format!("key-{i}"), ok(i as f64));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 9);
        assert!(stats.bytes >= ENTRY_OVERHEAD_BYTES);
        assert!(stats.bytes < 2 * (ENTRY_OVERHEAD_BYTES + 16));
    }

    #[test]
    fn stats_absorb_sums_disjoint_caches() {
        let a = TrialCache::new(4);
        a.insert("x".into(), ok(0.0));
        a.get("x");
        let b = TrialCache::new(4);
        b.get("y");
        let mut total = a.stats();
        total.absorb(&b.stats());
        assert_eq!((total.hits, total.misses, total.insertions), (1, 1, 1));
        assert!(total.enabled);
    }

    #[test]
    fn concurrent_readers_agree_with_serial_counts() {
        // 4 threads × 25 lookups each over a fixed key set: hit/miss totals
        // must equal the serial expectation regardless of interleaving.
        let cache = std::sync::Arc::new(TrialCache::new(64));
        cache.insert("hit".into(), ok(1.0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        if i % 5 == 0 {
                            assert!(cache.get("hit").is_some());
                        } else {
                            assert!(cache.get("miss").is_none());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 4 * 5);
        assert_eq!(stats.misses, 4 * 20);
    }
}
