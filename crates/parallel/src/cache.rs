//! Deterministic trial-result cache with hit/miss telemetry.
//!
//! The DMD stage burns almost all of its budget on repeated trial
//! evaluations: the paper's GA (population 50 × 100 generations,
//! Algorithm 3) re-visits duplicate genomes every generation, and UDR's
//! HPO loops re-propose near-identical configurations. Auto-WEKA and
//! Auto-sklearn both lean on evaluation caching to make SMAC-style search
//! tractable; this module is the workspace's single memoization point (the
//! `no-adhoc-memo` lint, L8, bans trial memoization everywhere else).
//!
//! Three properties distinguish [`TrialCache`] from an ordinary map:
//!
//! * **Failures are first-class.** The cache stores whole
//!   [`TrialOutcome`]s (plus the attempts spent reaching them), so a
//!   panicking or NaN-scoring configuration is served from cache exactly
//!   like a successful one — a cached failure is never re-run past the
//!   retry policy, and replaying it re-derives the same penalty score and
//!   quarantine decision the live run produced.
//! * **Determinism by construction.** During a parallel batch, workers
//!   only *read* the cache (a batch-start snapshot, like the quarantine);
//!   insertions are committed at the batch boundary in trial-index order.
//!   First-completion-wins races therefore cannot exist, FIFO eviction
//!   order is a pure function of the trial history, and cache-on results
//!   are byte-identical to cache-off results at any thread count.
//! * **Telemetry.** Hits, misses, warm-start hits, insertions, restored
//!   entries, evictions and exact resident bytes are counted
//!   ([`CacheStats`]) and surfaced by the Table X harness and the
//!   `exp_cache_effect` / `exp_warmstart` benches.
//!
//! The cache is also the warm-start substrate: [`TrialCache::snapshot`]
//! captures the resident entries in FIFO order and
//! [`TrialCache::restore`] replays a snapshot into a fresh cache, marking
//! the entries *warm* so hits against persisted history are
//! distinguishable (in telemetry only — a warm hit replays exactly like a
//! cold one, which is what makes warm-started runs byte-identical to the
//! runs that produced the history).
//!
//! Keys are canonical `Config` fingerprints built by the HPO layer (this
//! crate is below the `Config` type, so it stores opaque strings); see
//! `automodel_hpo::fingerprint` for the encoding rules. The cache is
//! toggled and bounded by the `AUTOMODEL_CACHE` environment variable:
//! `0`/`off`/`false` disables it, `1`/`on`/`true` (or unset) enables it at
//! the default capacity, and a number ≥ 2 sets the capacity directly.
//! Anything else is an [`EnvError`] naming the variable and value.

use crate::fault::TrialOutcome;
use automodel_invariant::debug_invariant;
use automodel_trace::EnvError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default capacity (entries) when `AUTOMODEL_CACHE` enables the cache
/// without naming a bound.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Fixed per-entry overhead charged on top of the key and message bytes
/// when approximating resident size (map node + FIFO slot + outcome enum).
const ENTRY_OVERHEAD_BYTES: u64 = 96;

/// One memoized trial: the full outcome (success *or* failure) and the
/// attempts the live run spent producing it. Replaying a hit must be
/// indistinguishable from re-running the trial, so both fields are needed:
/// the outcome re-derives the score/failure, the attempt count re-derives
/// the quarantine decision (`attempts > 0` ⇒ a real, retried failure).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedTrial {
    pub outcome: TrialOutcome,
    pub attempts: usize,
}

impl CachedTrial {
    /// Resident bytes of this entry under `key`, computed once at insert
    /// time and stored with the entry so eviction accounting is exact.
    fn entry_bytes(&self, key: &str) -> u64 {
        let payload = match &self.outcome {
            TrialOutcome::Panicked(m) | TrialOutcome::Diverged(m) => m.len() as u64,
            _ => 0,
        };
        key.len() as u64 + payload + ENTRY_OVERHEAD_BYTES
    }
}

/// A point-in-time copy of a cache's resident entries, in FIFO insertion
/// order — the unit of persistence for warm starts. Produced by
/// [`TrialCache::snapshot`], replayed by [`TrialCache::restore`], and
/// serialized by `automodel-store`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheSnapshot {
    /// `(canonical key, memoized trial)` pairs, oldest first.
    pub entries: Vec<(String, CachedTrial)>,
}

impl CacheSnapshot {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a live evaluation.
    pub misses: u64,
    /// The subset of `hits` served from restored (warm-start) entries.
    pub warm_hits: u64,
    /// Distinct keys inserted by live evaluations.
    pub insertions: u64,
    /// Entries restored from a snapshot ([`TrialCache::restore`]).
    pub restored: u64,
    /// Entries displaced by the capacity bound (FIFO order).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Exact resident bytes (keys + failure messages + overhead).
    pub bytes: u64,
    /// Was the cache enabled at all?
    pub enabled: bool,
}

impl CacheStats {
    /// Hits as a fraction of all lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another snapshot into this one (for per-cell telemetry sums;
    /// `entries`/`bytes` add because the snapshots come from disjoint
    /// caches).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.warm_hits += other.warm_hits;
        self.insertions += other.insertions;
        self.restored += other.restored;
        self.evictions += other.evictions;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.enabled |= other.enabled;
    }
}

/// One resident entry: the memoized trial, its insert-time size (so
/// eviction subtracts exactly what insertion added), and whether it was
/// restored from a snapshot rather than produced by this run.
#[derive(Debug)]
struct Entry {
    trial: CachedTrial,
    bytes: u64,
    warm: bool,
}

/// Keyed store + FIFO insertion order, guarded by one lock so eviction
/// decisions are atomic with insertions.
#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<String, Entry>,
    order: VecDeque<String>,
    bytes: u64,
}

impl CacheInner {
    /// The byte ledger must equal the sum of the resident entries' stored
    /// sizes at every quiescent point — the invariant that insert-time
    /// sizing exists to guarantee.
    fn check_bytes(&self) {
        debug_invariant!(
            self.bytes == self.map.values().map(|e| e.bytes).sum::<u64>(),
            "cache byte ledger drifted from the per-entry sum"
        );
    }
}

/// Thread-safe, deterministic trial-result cache.
///
/// Shared by reference (`&TrialCache` or `Arc<TrialCache>`): lookups take
/// a read lock plus relaxed counter increments, so concurrent workers
/// never serialize on each other for the common miss/hit path. See the
/// module docs for the determinism discipline callers must follow
/// (snapshot reads during a batch, index-ordered inserts at the boundary).
#[derive(Debug)]
pub struct TrialCache {
    enabled: bool,
    capacity: usize,
    inner: RwLock<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    warm_hits: AtomicU64,
    insertions: AtomicU64,
    restored: AtomicU64,
    evictions: AtomicU64,
}

impl Default for TrialCache {
    fn default() -> TrialCache {
        TrialCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl TrialCache {
    /// An enabled cache bounded to `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> TrialCache {
        TrialCache {
            enabled: true,
            capacity: capacity.max(1),
            inner: RwLock::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache that stores nothing and always misses (without counting):
    /// the `AUTOMODEL_CACHE=0` configuration.
    pub fn disabled() -> TrialCache {
        TrialCache {
            enabled: false,
            ..TrialCache::new(1)
        }
    }

    /// Build from the `AUTOMODEL_CACHE` environment variable; unset means
    /// enabled at the default capacity, malformed is an [`EnvError`].
    pub fn from_env() -> Result<TrialCache, EnvError> {
        TrialCache::from_spec(std::env::var(crate::env::CACHE_ENV).ok().as_deref())
    }

    /// [`TrialCache::from_env`] for infallible construction sites (the
    /// optimizer constructors): a malformed value yields a *disabled*
    /// cache. Fail-closed is safe because cache-on results are
    /// byte-identical to cache-off results; the strict error surfaces at
    /// every run entry point via [`crate::env::validate_env`], so a typo
    /// still stops the run instead of silently configuring a cache.
    pub fn from_env_or_disabled() -> TrialCache {
        TrialCache::from_env().unwrap_or_else(|_| TrialCache::disabled())
    }

    /// Parse an `AUTOMODEL_CACHE` value: `0`/`off`/`false` ⇒ disabled;
    /// `1`/`on`/`true`/empty/`None` ⇒ enabled at the default capacity; a
    /// number ≥ 2 ⇒ enabled at that capacity. Anything else (`65k`, a
    /// negative number, stray words) is an [`EnvError`] naming the
    /// variable and the offending value.
    pub fn from_spec(spec: Option<&str>) -> Result<TrialCache, EnvError> {
        let Some(spec) = spec else {
            return Ok(TrialCache::default());
        };
        match spec.trim().to_ascii_lowercase().as_str() {
            "0" | "off" | "false" => Ok(TrialCache::disabled()),
            "" | "1" | "on" | "true" => Ok(TrialCache::default()),
            other => match other.parse::<usize>() {
                Ok(n) => Ok(TrialCache::new(n)),
                Err(_) => Err(EnvError::new(
                    crate::env::CACHE_ENV,
                    spec,
                    "0/off/false, 1/on/true, or a decimal entry capacity",
                )),
            },
        }
    }

    /// Is this cache storing anything at all?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries right now.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a canonical key. Counts a hit or a miss (disabled caches
    /// return `None` without counting — there was no lookup to account).
    pub fn get(&self, key: &str) -> Option<CachedTrial> {
        self.get_provenance(key).map(|(trial, _)| trial)
    }

    /// Like [`TrialCache::get`], but also reports whether the entry was
    /// restored from a snapshot (`true` = warm) — the trace layer uses
    /// this to emit `warm_hit` instead of `cache_hit`.
    pub fn get_provenance(&self, key: &str) -> Option<(CachedTrial, bool)> {
        if !self.enabled {
            return None;
        }
        let found = self
            .inner
            .read()
            .map
            .get(key)
            .map(|e| (e.trial.clone(), e.warm));
        match found {
            Some((trial, warm)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if warm {
                    self.warm_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some((trial, warm))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a completed trial under its canonical key, evicting the
    /// oldest entries past the capacity bound (FIFO — insertion order is
    /// deterministic because callers commit inserts in trial-index order,
    /// so eviction order is too). Re-inserting an existing key is a no-op:
    /// under the determinism contract the value could only be identical.
    pub fn insert(&self, key: String, value: CachedTrial) {
        if self.insert_inner(key, value, false) {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Replay a snapshot into this cache, marking every entry warm.
    /// Entries land in snapshot (FIFO) order, so capacity bounds evict
    /// exactly as they would have in the producing run. Existing keys are
    /// kept (this run's own entries win); disabled caches restore
    /// nothing. Returns the number of entries actually restored.
    ///
    /// The whole replay happens under a single write-lock acquisition, so
    /// concurrent readers and [`TrialCache::snapshot`] callers observe the
    /// restore all-or-nothing — never a torn prefix of a warm artifact —
    /// and concurrent restores serialize instead of interleaving their
    /// FIFO order.
    pub fn restore(&self, snapshot: &CacheSnapshot) -> usize {
        if !self.enabled {
            return 0;
        }
        let mut n = 0usize;
        {
            let mut inner = self.inner.write();
            for (key, trial) in &snapshot.entries {
                if self.insert_locked(&mut inner, key.clone(), trial.clone(), true) {
                    n += 1;
                }
            }
        }
        self.restored.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Capture the resident entries in FIFO order. The snapshot of a
    /// disabled cache is empty.
    pub fn snapshot(&self) -> CacheSnapshot {
        let inner = self.inner.read();
        let entries = inner
            .order
            .iter()
            .filter_map(|key| inner.map.get(key).map(|e| (key.clone(), e.trial.clone())))
            .collect();
        CacheSnapshot { entries }
    }

    /// Shared insert path; returns whether a new entry was stored.
    fn insert_inner(&self, key: String, value: CachedTrial, warm: bool) -> bool {
        if !self.enabled {
            return false;
        }
        let mut inner = self.inner.write();
        self.insert_locked(&mut inner, key, value, warm)
    }

    /// The locked insert body, factored out so [`TrialCache::restore`] can
    /// replay a whole snapshot under one write guard (atomic with respect
    /// to concurrent inserts and snapshots) while [`TrialCache::insert`]
    /// keeps its one-acquisition-per-entry path.
    fn insert_locked(
        &self,
        inner: &mut CacheInner,
        key: String,
        value: CachedTrial,
        warm: bool,
    ) -> bool {
        if inner.map.contains_key(&key) {
            return false;
        }
        let bytes = value.entry_bytes(&key);
        inner.bytes += bytes;
        inner.order.push_back(key.clone());
        inner.map.insert(
            key,
            Entry {
                trial: value,
                bytes,
                warm,
            },
        );
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&oldest) {
                inner.bytes -= evicted.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.check_bytes();
        true
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.read();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            enabled: self.enabled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(score: f64) -> CachedTrial {
        CachedTrial {
            outcome: TrialOutcome::Ok(score),
            attempts: 1,
        }
    }

    #[test]
    fn get_after_insert_round_trips_successes_and_failures() {
        let cache = TrialCache::new(8);
        cache.insert("a".into(), ok(0.5));
        cache.insert(
            "b".into(),
            CachedTrial {
                outcome: TrialOutcome::Panicked("boom".into()),
                attempts: 2,
            },
        );
        assert_eq!(cache.get("a"), Some(ok(0.5)));
        let b = cache.get("b").unwrap();
        assert_eq!(b.outcome, TrialOutcome::Panicked("boom".into()));
        assert_eq!(b.attempts, 2);
        assert_eq!(cache.get("c"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (2, 1, 2));
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0);
        assert!(stats.enabled);
        assert_eq!(stats.warm_hits, 0, "live inserts are not warm");
    }

    #[test]
    fn fifo_eviction_respects_the_capacity_bound() {
        let cache = TrialCache::new(2);
        cache.insert("k0".into(), ok(0.0));
        cache.insert("k1".into(), ok(1.0));
        cache.insert("k2".into(), ok(2.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("k0"), None, "oldest entry must be evicted");
        assert!(cache.get("k1").is_some() && cache.get("k2").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn reinserting_a_key_is_a_noop() {
        let cache = TrialCache::new(4);
        cache.insert("k".into(), ok(1.0));
        cache.insert("k".into(), ok(1.0)); // duplicate config in one batch
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(cache.get("k"), Some(ok(1.0)));
    }

    #[test]
    fn disabled_cache_stores_and_counts_nothing() {
        let cache = TrialCache::disabled();
        cache.insert("k".into(), ok(1.0));
        assert_eq!(cache.get("k"), None);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
        assert!(!stats.enabled);
    }

    #[test]
    fn from_spec_parses_the_env_grammar() {
        assert!(!TrialCache::from_spec(Some("0")).unwrap().is_enabled());
        assert!(!TrialCache::from_spec(Some("off")).unwrap().is_enabled());
        assert!(!TrialCache::from_spec(Some("FALSE")).unwrap().is_enabled());
        for spec in [None, Some(""), Some("1"), Some("on"), Some("true")] {
            let cache = TrialCache::from_spec(spec).unwrap();
            assert!(cache.is_enabled(), "spec {spec:?}");
            assert_eq!(cache.capacity(), DEFAULT_CACHE_CAPACITY, "spec {spec:?}");
        }
        let sized = TrialCache::from_spec(Some("128")).unwrap();
        assert!(sized.is_enabled());
        assert_eq!(sized.capacity(), 128);
    }

    #[test]
    fn from_spec_rejects_malformed_values_by_name() {
        for bad in ["plenty", "65k", "-3", "1.5", "on off"] {
            let err = TrialCache::from_spec(Some(bad))
                .expect_err("malformed AUTOMODEL_CACHE must be rejected");
            assert_eq!(err.var, "AUTOMODEL_CACHE");
            assert_eq!(err.value, bad);
            let msg = err.to_string();
            assert!(msg.contains("AUTOMODEL_CACHE"), "{msg}");
            assert!(msg.contains(bad), "{msg}");
        }
    }

    #[test]
    fn byte_ledger_is_exactly_the_sum_of_entry_sizes() {
        let cache = TrialCache::new(2);
        cache.insert("ab".into(), ok(0.0)); // 2 + 96
        cache.insert(
            "cdef".into(),
            CachedTrial {
                outcome: TrialOutcome::Panicked("boom".into()), // 4 + 4 + 96
                attempts: 2,
            },
        );
        assert_eq!(cache.stats().bytes, (2 + 96) + (4 + 4 + 96));
        // Evicting "ab" must subtract exactly its insert-time size.
        cache.insert("g".into(), ok(1.0)); // 1 + 96
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes, (4 + 4 + 96) + (1 + 96));
    }

    #[test]
    fn eviction_accounting_never_underflows_bytes() {
        let cache = TrialCache::new(1);
        for i in 0..10 {
            cache.insert(format!("key-{i}"), ok(i as f64));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 9);
        assert_eq!(stats.bytes, "key-9".len() as u64 + ENTRY_OVERHEAD_BYTES);
    }

    #[test]
    fn snapshot_restore_round_trips_in_fifo_order() {
        let cache = TrialCache::new(8);
        cache.insert("first".into(), ok(0.1));
        cache.insert(
            "second".into(),
            CachedTrial {
                outcome: TrialOutcome::Diverged("nan loss".into()),
                attempts: 2,
            },
        );
        cache.insert("third".into(), ok(0.3));
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.entries
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            ["first", "second", "third"],
            "snapshot must preserve FIFO order"
        );

        let warm = TrialCache::new(8);
        assert_eq!(warm.restore(&snap), 3);
        let stats = warm.stats();
        assert_eq!(stats.restored, 3);
        assert_eq!(stats.insertions, 0, "restore is not a live insertion");
        assert_eq!(stats.bytes, cache.stats().bytes, "restore preserves sizes");
        // Warm hits replay the exact memoized trial and count as warm.
        let (trial, warm_flag) = warm.get_provenance("second").unwrap();
        assert!(warm_flag);
        assert_eq!(trial.outcome, TrialOutcome::Diverged("nan loss".into()));
        assert_eq!(warm.stats().warm_hits, 1);
        assert_eq!(warm.stats().hits, 1);
        // Re-snapshotting the restored cache reproduces the original.
        assert_eq!(warm.snapshot(), snap);
    }

    #[test]
    fn restore_respects_capacity_and_existing_keys() {
        let producer = TrialCache::new(8);
        for i in 0..4 {
            producer.insert(format!("k{i}"), ok(i as f64));
        }
        let snap = producer.snapshot();

        // A smaller consumer evicts the oldest snapshot entries, exactly
        // as the producing run would have at that capacity.
        let small = TrialCache::new(2);
        small.restore(&snap);
        assert_eq!(small.len(), 2);
        assert!(small.get("k0").is_none() && small.get("k1").is_none());
        assert!(small.get("k2").is_some() && small.get("k3").is_some());

        // A consumer that already holds a key keeps its own entry.
        let occupied = TrialCache::new(8);
        occupied.insert("k1".into(), ok(99.0));
        assert_eq!(occupied.restore(&snap), 3);
        let (trial, warm_flag) = occupied.get_provenance("k1").unwrap();
        assert_eq!(trial, ok(99.0));
        assert!(!warm_flag, "this run's own entry is not warm");

        // Disabled caches restore nothing.
        let off = TrialCache::disabled();
        assert_eq!(off.restore(&snap), 0);
        assert_eq!(off.snapshot(), CacheSnapshot::default());
    }

    #[test]
    fn stats_absorb_sums_disjoint_caches() {
        let a = TrialCache::new(4);
        a.insert("x".into(), ok(0.0));
        a.get("x");
        let b = TrialCache::new(4);
        b.get("y");
        b.restore(&a.snapshot());
        b.get("x");
        let mut total = a.stats();
        total.absorb(&b.stats());
        assert_eq!((total.hits, total.misses, total.insertions), (2, 1, 1));
        assert_eq!((total.warm_hits, total.restored), (1, 1));
        assert!(total.enabled);
    }

    #[test]
    fn concurrent_readers_agree_with_serial_counts() {
        // 4 threads × 25 lookups each over a fixed key set: hit/miss totals
        // must equal the serial expectation regardless of interleaving.
        let cache = std::sync::Arc::new(TrialCache::new(64));
        cache.insert("hit".into(), ok(1.0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        if i % 5 == 0 {
                            assert!(cache.get("hit").is_some());
                        } else {
                            assert!(cache.get("miss").is_none());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 4 * 5);
        assert_eq!(stats.misses, 4 * 20);
    }

    #[test]
    fn concurrent_restore_is_atomic_and_loses_nothing() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // A warm artifact to replay mid-flight.
        let producer = TrialCache::new(64);
        for i in 0..32 {
            producer.insert(format!("warm-{i:02}"), ok(i as f64));
        }
        let snap = producer.snapshot();

        // Ample capacity: nothing may evict, so "no lost entries" is exact.
        let cache = Arc::new(TrialCache::new(4096));
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        let mut observers = Vec::new();
        // Seeded writers over disjoint key ranges, reading back each insert.
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            writers.push(std::thread::spawn(move || {
                let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ t;
                for i in 0..64 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = format!("t{t}-{i:02}");
                    cache.insert(key.clone(), ok((x >> 11) as f64));
                    assert!(cache.get(&key).is_some(), "just-inserted key vanished");
                }
            }));
        }
        // Observers: every snapshot taken during the churn must be
        // duplicate-free, byte-consistent, and must see the concurrent
        // restore all-or-nothing — the torn-prefix case the per-entry
        // locking of the old restore path allowed.
        for _ in 0..2 {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let warm_keys: Vec<String> = snap.entries.iter().map(|(k, _)| k.clone()).collect();
            observers.push(std::thread::spawn(move || loop {
                let s = cache.snapshot();
                let mut seen = std::collections::BTreeSet::new();
                for (k, _) in &s.entries {
                    assert!(seen.insert(k.as_str()), "snapshot holds duplicate key {k}");
                }
                let warm_seen = warm_keys
                    .iter()
                    .filter(|k| seen.contains(k.as_str()))
                    .count();
                assert!(
                    warm_seen == 0 || warm_seen == warm_keys.len(),
                    "snapshot observed a torn restore: {warm_seen}/{} warm keys",
                    warm_keys.len()
                );
                let replay = TrialCache::new(4096);
                assert_eq!(replay.restore(&s), s.len());
                let expect: u64 = s.entries.iter().map(|(k, t)| t.entry_bytes(k)).sum();
                assert_eq!(replay.stats().bytes, expect, "byte ledger drifted");
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }));
        }
        // The restore races the writers and the observers.
        let restorer = {
            let cache = Arc::clone(&cache);
            let snap = snap.clone();
            std::thread::spawn(move || cache.restore(&snap))
        };
        assert_eq!(restorer.join().unwrap(), 32);
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for o in observers {
            o.join().unwrap();
        }
        // No lost entries, exact ledger.
        let stats = cache.stats();
        assert_eq!(stats.entries, 4 * 64 + 32);
        assert_eq!(stats.insertions, 4 * 64);
        assert_eq!(stats.restored, 32);
        assert_eq!(stats.evictions, 0);
        let final_snap = cache.snapshot();
        let expect: u64 = final_snap
            .entries
            .iter()
            .map(|(k, t)| t.entry_bytes(k))
            .sum();
        assert_eq!(stats.bytes, expect);
        for t in 0..4 {
            for i in 0..64 {
                let key = format!("t{t}-{i:02}");
                assert!(cache.get(&key).is_some(), "lost entry {key}");
            }
        }
    }

    #[test]
    fn concurrent_duplicate_restores_insert_each_entry_once() {
        use std::sync::Arc;
        let producer = TrialCache::new(64);
        for i in 0..16 {
            producer.insert(format!("k{i:02}"), ok(i as f64));
        }
        let snap = producer.snapshot();
        let cache = Arc::new(TrialCache::new(64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let snap = snap.clone();
                std::thread::spawn(move || cache.restore(&snap))
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 16, "each snapshot entry restores exactly once");
        let stats = cache.stats();
        assert_eq!(
            (stats.restored, stats.entries, stats.evictions),
            (16, 16, 0)
        );
        assert_eq!(
            cache.snapshot(),
            snap,
            "FIFO order survives racing restores"
        );
    }
}
