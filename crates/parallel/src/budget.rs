//! Thread-safe budget state shared by all workers of a batch.

use crate::clock::Clock;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Declarative stopping criterion for a (possibly parallel) evaluation run.
/// A `None` component never trips. Mirrors `automodel_hpo::Budget`, which
/// cannot be used directly here — `parallel` sits below `hpo` in the crate
/// graph.
#[derive(Debug, Clone, Default)]
pub struct BudgetSpec {
    pub max_evals: Option<usize>,
    pub max_time: Option<Duration>,
    /// Stop as soon as a score ≥ `target` is observed (scores are maximized).
    pub target: Option<f64>,
}

impl BudgetSpec {
    /// Only an evaluation-count limit.
    pub fn evals(n: usize) -> BudgetSpec {
        BudgetSpec {
            max_evals: Some(n),
            ..BudgetSpec::default()
        }
    }

    /// Only a wall-clock limit.
    pub fn time(d: Duration) -> BudgetSpec {
        BudgetSpec {
            max_time: Some(d),
            ..BudgetSpec::default()
        }
    }

    /// Add a target score.
    pub fn with_target(mut self, t: f64) -> BudgetSpec {
        self.target = Some(t);
        self
    }
}

/// Live budget state, checkable and recordable from any worker thread.
///
/// Evaluation counting is exact: `record` is called once per completed
/// evaluation and [`Executor::map_budgeted`](crate::Executor::map_budgeted)
/// never starts more than [`remaining_evals`](SharedBudget::remaining_evals)
/// tasks. Wall-clock and target limits are consulted *per evaluation* (at
/// every task claim), so a batch stops mid-flight instead of overshooting
/// by a whole generation; in-flight tasks still run to completion, which
/// bounds the overshoot by the number of worker threads.
pub struct SharedBudget {
    spec: BudgetSpec,
    clock: Arc<dyn Clock>,
    start: Duration,
    evals: AtomicUsize,
    best: Mutex<f64>,
}

impl std::fmt::Debug for SharedBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBudget")
            .field("spec", &self.spec)
            .field("evals", &self.evals())
            .field("best", &self.best())
            .finish()
    }
}

impl SharedBudget {
    /// Start tracking `spec` against `clock` (epoch = now).
    pub fn new(spec: BudgetSpec, clock: Arc<dyn Clock>) -> SharedBudget {
        let start = clock.now();
        SharedBudget {
            spec,
            clock,
            start,
            evals: AtomicUsize::new(0),
            best: Mutex::new(f64::NEG_INFINITY),
        }
    }

    /// Record one completed evaluation with its score.
    pub fn record(&self, score: f64) {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.seed_incumbent(score);
    }

    /// Raise the incumbent *without* counting an evaluation. Used when a
    /// shared view continues an existing run: the previous best must keep
    /// participating in the target check.
    pub fn seed_incumbent(&self, score: f64) {
        let mut best = self.best.lock();
        if score > *best {
            *best = score;
        }
    }

    /// Evaluations recorded so far.
    pub fn evals(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }

    /// Best score recorded so far (`-∞` before the first record).
    pub fn best(&self) -> f64 {
        *self.best.lock()
    }

    /// Elapsed time on the injected clock since construction.
    pub fn elapsed(&self) -> Duration {
        self.clock.now().saturating_sub(self.start)
    }

    /// Evaluations remaining before the count limit (∞ ⇒ `usize::MAX`).
    pub fn remaining_evals(&self) -> usize {
        self.spec
            .max_evals
            .map_or(usize::MAX, |n| n.saturating_sub(self.evals()))
    }

    /// True when any component of the budget has tripped.
    pub fn exhausted(&self) -> bool {
        if let Some(n) = self.spec.max_evals {
            if self.evals() >= n {
                return true;
            }
        }
        if let Some(t) = self.spec.max_time {
            if self.elapsed() >= t {
                return true;
            }
        }
        if let Some(target) = self.spec.target {
            if self.best() >= target {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn on_manual(spec: BudgetSpec) -> (Arc<ManualClock>, SharedBudget) {
        let clock = Arc::new(ManualClock::new());
        let budget = SharedBudget::new(spec, clock.clone());
        (clock, budget)
    }

    #[test]
    fn eval_limit_trips_exactly() {
        let (_c, b) = on_manual(BudgetSpec::evals(2));
        assert_eq!(b.remaining_evals(), 2);
        b.record(0.1);
        assert!(!b.exhausted());
        b.record(0.2);
        assert!(b.exhausted());
        assert_eq!(b.remaining_evals(), 0);
        assert_eq!(b.best(), 0.2);
    }

    #[test]
    fn time_limit_trips_on_the_injected_clock() {
        let (clock, b) = on_manual(BudgetSpec::time(Duration::from_secs(30)));
        assert!(!b.exhausted());
        clock.advance(Duration::from_secs(29));
        assert!(!b.exhausted());
        clock.advance(Duration::from_secs(1));
        assert!(b.exhausted());
    }

    #[test]
    fn target_trips_on_good_score() {
        let (_c, b) = on_manual(BudgetSpec::default().with_target(0.9));
        b.record(0.5);
        assert!(!b.exhausted());
        b.record(0.95);
        assert!(b.exhausted());
    }

    #[test]
    fn budget_epoch_is_construction_not_clock_zero() {
        let clock = Arc::new(ManualClock::new());
        clock.advance(Duration::from_secs(100));
        let b = SharedBudget::new(BudgetSpec::time(Duration::from_secs(5)), clock.clone());
        assert_eq!(b.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_secs(4));
        assert!(!b.exhausted());
    }
}
