//! The workspace's `AUTOMODEL_*` runtime knobs, parsed strictly.
//!
//! One rule for every reader: unset selects the documented default,
//! malformed is a hard [`EnvError`] naming the variable and the offending
//! value — a typo must stop the run, never silently reconfigure it. The
//! individual readers live next to the types they build
//! ([`TrialCache::from_env`], [`FaultPlan::from_env`],
//! [`TrialPolicy::from_env`]); this module holds the shared variable
//! names, the [`threads_from_env`] reader, and [`validate_env`], which
//! run entry points (bench binaries, the CLI) call once at startup so a
//! malformed variable fails fast with one clear message.
//!
//! [`TrialCache::from_env`]: crate::TrialCache::from_env
//! [`FaultPlan::from_env`]: crate::FaultPlan::from_env
//! [`TrialPolicy::from_env`]: crate::TrialPolicy::from_env

use crate::cache::TrialCache;
use crate::fault::FaultPlan;
use automodel_trace::EnvError;

/// Toggles and bounds the trial cache ([`TrialCache::from_env`]).
pub const CACHE_ENV: &str = "AUTOMODEL_CACHE";

/// Configures deterministic fault injection ([`FaultPlan::from_env`]).
pub const FAULTS_ENV: &str = "AUTOMODEL_FAULTS";

/// Overrides the worker thread count ([`threads_from_env`]).
pub const THREADS_ENV: &str = "AUTOMODEL_THREADS";

/// Read `AUTOMODEL_THREADS`: `None` when unset or empty (callers use
/// their own default, usually the detected parallelism), `Some(n)` for a
/// decimal `n ≥ 1`, and an [`EnvError`] for anything else — including
/// `0`, which would deadlock a pool that needs at least one worker.
pub fn threads_from_env() -> Result<Option<usize>, EnvError> {
    let Ok(raw) = std::env::var(THREADS_ENV) else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(EnvError::new(
            THREADS_ENV,
            raw,
            "a decimal worker count >= 1",
        )),
    }
}

/// Parse every `AUTOMODEL_*` variable this crate owns, returning the
/// first failure. Run entry points call this once before doing any work,
/// so a malformed variable aborts with a message naming it instead of a
/// library silently falling back to a default mid-run.
pub fn validate_env() -> Result<(), EnvError> {
    TrialCache::from_env()?;
    FaultPlan::from_env()?;
    threads_from_env()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; one test owns the variable to keep
    // the suite race-free under the default parallel test runner.
    #[test]
    fn threads_reader_is_strict() {
        let run = |value: Option<&str>| {
            match value {
                Some(v) => std::env::set_var(THREADS_ENV, v),
                None => std::env::remove_var(THREADS_ENV),
            }
            let out = threads_from_env();
            std::env::remove_var(THREADS_ENV);
            out
        };
        assert_eq!(run(None), Ok(None));
        assert_eq!(run(Some("")), Ok(None));
        assert_eq!(run(Some("4")), Ok(Some(4)));
        assert_eq!(run(Some(" 8 ")), Ok(Some(8)));
        for bad in ["0", "-1", "two", "4x"] {
            let err = run(Some(bad)).expect_err("malformed thread count must be rejected");
            assert_eq!(err.var, THREADS_ENV);
            assert_eq!(err.value, bad);
        }
    }
}
