//! The common classifier interface.
//!
//! Classifiers fit on a [`Dataset`] restricted to a set of row indices (so
//! cross-validation never copies data) and predict per row of the *same or a
//! compatible* dataset (same columns/categories/classes — exactly what
//! [`Dataset::subset`] and the fold plans guarantee).

use crate::error::MlError;
use automodel_data::Dataset;

/// A trainable classification algorithm instance (algorithm +
/// hyperparameter configuration).
pub trait Classifier: Send {
    /// Train on `data` restricted to `rows`.
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError>;

    /// Predict the class of `data`'s row `row`. Must be called after a
    /// successful [`Classifier::fit`].
    fn predict(&self, data: &Dataset, row: usize) -> usize;

    /// Class-probability estimates; the default is a point mass on
    /// [`Classifier::predict`]. `n_classes` comes from the dataset.
    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let n = data.n_classes();
        let mut p = vec![0.0; n];
        let c = self.predict(data, row);
        if c < n {
            p[c] = 1.0;
        }
        p
    }
}

/// Accuracy of a fitted classifier on `rows` of `data`.
pub fn accuracy_on(model: &dyn Classifier, data: &Dataset, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let correct = rows
        .iter()
        .filter(|&&r| model.predict(data, r) == data.label(r))
        .count();
    correct as f64 / rows.len() as f64
}

/// Majority class among `rows` (ties resolved to the lower class index, as
/// Weka does). Shared fallback for degenerate leaves/rules.
pub fn majority_class(data: &Dataset, rows: &[usize]) -> usize {
    let mut counts = vec![0usize; data.n_classes()];
    for &r in rows {
        counts[data.label(r)] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Class distribution (Laplace-smoothed) among `rows`.
pub fn class_distribution(data: &Dataset, rows: &[usize], smoothing: f64) -> Vec<f64> {
    let k = data.n_classes();
    let mut counts = vec![smoothing; k];
    for &r in rows {
        counts[data.label(r)] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_data::dataset::default_class_names;

    struct Constant(usize);
    impl Classifier for Constant {
        fn fit(&mut self, _d: &Dataset, _rows: &[usize]) -> Result<(), MlError> {
            Ok(())
        }
        fn predict(&self, _d: &Dataset, _row: usize) -> usize {
            self.0
        }
    }

    fn data() -> Dataset {
        Dataset::builder("t")
            .numeric("x", vec![0.0; 6])
            .target("y", vec![0, 0, 0, 1, 1, 2], default_class_names(3))
            .unwrap()
    }

    #[test]
    fn accuracy_counts_matches() {
        let d = data();
        let m = Constant(0);
        assert!((accuracy_on(&m, &d, &[0, 1, 2, 3]) - 0.75).abs() < 1e-12);
        assert_eq!(accuracy_on(&m, &d, &[]), 0.0);
    }

    #[test]
    fn default_proba_is_point_mass() {
        let d = data();
        let m = Constant(1);
        assert_eq!(m.predict_proba(&d, 0), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn majority_breaks_ties_toward_lower_class() {
        let d = data();
        assert_eq!(majority_class(&d, &[0, 1, 2, 3, 4, 5]), 0);
        assert_eq!(majority_class(&d, &[3, 4, 5]), 1);
        assert_eq!(majority_class(&d, &[0, 3]), 0);
    }

    #[test]
    fn distribution_sums_to_one_with_smoothing() {
        let d = data();
        let p = class_distribution(&d, &[0, 3], 1.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > 0.0, "smoothing must keep unseen classes positive");
    }
}
