//! `weka.classifiers.functions`: Logistic, SimpleLogistic,
//! MultilayerPerceptron, SMO, LibSVM, RBFNetwork.
//!
//! All operate on the standardized dense encoding. `Logistic` and
//! `SimpleLogistic` are multinomial logistic regression trained with L-BFGS
//! (SimpleLogistic adds heavier ridge + capped iterations, mirroring Weka's
//! conservatively-regularized variant). `SMO` is a linear SVM trained with
//! the Pegasos subgradient method, one-vs-rest; `LibSVM` the kernelized
//! (RBF) Pegasos analogue. `RBFNetwork` fits k-means centers and solves the
//! ridge-regularized output layer in closed form.

use super::dense::{kmeans, sq_dist, DenseFit};
use crate::classifier::Classifier;
use crate::error::MlError;
use crate::registry::{AlgorithmSpec, Family};
use automodel_data::Dataset;
use automodel_hpo::linalg::{cholesky, SquareMatrix};
use automodel_hpo::{Config, Domain, ParamValue, SearchSpace};
use automodel_nn::{Activation, MlpClassifier, MlpConfig, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

// ------------------------------------------------------------------- Logistic

/// Multinomial logistic regression = zero-hidden-layer MLP with softmax.
struct Logistic {
    ridge: f64,
    max_iter: usize,
    seed: u64,
    fit: Option<DenseFit>,
    model: Option<MlpClassifier>,
}

impl Classifier for Logistic {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dense = DenseFit::fit(data, rows);
        let mut clf = MlpClassifier::new(MlpConfig {
            hidden_layers: 0,
            solver: Solver::Lbfgs,
            max_iter: self.max_iter,
            alpha: self.ridge,
            validation_fraction: 0.0,
            seed: self.seed,
            ..MlpConfig::default()
        });
        let report = clf.fit(&dense.xs, &dense.labels, dense.n_classes);
        if report.diverged {
            return Err(MlError::TrainingFailed(format!(
                "logistic training diverged after {} epochs",
                report.epochs
            )));
        }
        self.model = Some(clf);
        self.fit = Some(dense);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let dense = self.fit.as_ref().expect("predict before fit");
        let x = dense.encode(data, row);
        self.model
            .as_ref()
            .expect("predict before fit")
            .predict_proba(&x)
    }
}

pub struct LogisticSpec;

impl AlgorithmSpec for LogisticSpec {
    fn name(&self) -> &'static str {
        "Logistic"
    }
    fn family(&self) -> Family {
        Family::Functions
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("ridge", Domain::float_log(1e-8, 10.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("ridge", ParamValue::Float(1e-4))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(Logistic {
            ridge: config.float_or("ridge", 1e-4).max(0.0),
            max_iter: 150,
            seed,
            fit: None,
            model: None,
        })
    }
}

pub struct SimpleLogisticSpec;

impl AlgorithmSpec for SimpleLogisticSpec {
    fn name(&self) -> &'static str {
        "SimpleLogistic"
    }
    fn iteration_param(&self) -> Option<&'static str> {
        Some("max_iter")
    }
    fn family(&self) -> Family {
        Family::Functions
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("ridge", Domain::float_log(1e-4, 10.0))
            .add("max_iter", Domain::int(10, 120))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("ridge", ParamValue::Float(0.01))
            .with("max_iter", ParamValue::Int(60))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(Logistic {
            ridge: config.float_or("ridge", 0.01).max(1e-6),
            max_iter: config.int_or("max_iter", 60).max(5) as usize,
            seed,
            fit: None,
            model: None,
        })
    }
}

// ------------------------------------------------------ MultilayerPerceptron

struct Mlp {
    config: MlpConfig,
    fit: Option<DenseFit>,
    model: Option<MlpClassifier>,
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dense = DenseFit::fit(data, rows);
        let mut clf = MlpClassifier::new(self.config.clone());
        let report = clf.fit(&dense.xs, &dense.labels, dense.n_classes);
        if report.diverged {
            return Err(MlError::TrainingFailed(format!(
                "MLP training diverged after {} epochs",
                report.epochs
            )));
        }
        self.model = Some(clf);
        self.fit = Some(dense);
        Ok(())
    }
    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }
    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let dense = self.fit.as_ref().expect("predict before fit");
        let x = dense.encode(data, row);
        self.model
            .as_ref()
            .expect("predict before fit")
            .predict_proba(&x)
    }
}

pub struct MultilayerPerceptronSpec;

impl AlgorithmSpec for MultilayerPerceptronSpec {
    fn name(&self) -> &'static str {
        "MultilayerPerceptron"
    }
    fn iteration_param(&self) -> Option<&'static str> {
        Some("epochs")
    }
    fn family(&self) -> Family {
        Family::Functions
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("hidden_size", Domain::int(4, 64))
            .add("learning_rate", Domain::float_log(1e-4, 0.5))
            .add("momentum", Domain::float(0.0, 0.95))
            .add("epochs", Domain::int(50, 400))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        // Weka uses -L 0.3 -M 0.2 with per-example updates; our minibatch
        // updates need the extra momentum to match that effective step.
        Config::new()
            .with("hidden_size", ParamValue::Int(16))
            .with("learning_rate", ParamValue::Float(0.3))
            .with("momentum", ParamValue::Float(0.9))
            .with("epochs", ParamValue::Int(150))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(Mlp {
            config: MlpConfig {
                hidden_layers: 1,
                hidden_size: config.int_or("hidden_size", 16).max(2) as usize,
                activation: Activation::Logistic, // Weka's MLP uses sigmoid units
                solver: Solver::Sgd,
                learning_rate_init: config.float_or("learning_rate", 0.3).max(1e-6),
                momentum: config.float_or("momentum", 0.9).clamp(0.0, 0.99),
                max_iter: config.int_or("epochs", 150).max(10) as usize,
                batch_size: 32,
                // Sigmoid units learn slowly at first; don't let early
                // stopping fire before the loss starts moving.
                patience: 40,
                seed,
                ..MlpConfig::default()
            },
            fit: None,
            model: None,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// ------------------------------------------------------------------ SMO (SVM)

/// Linear SVM, one-vs-rest, trained with Pegasos (stochastic subgradient on
/// the hinge loss with `λ = 1/(C·n)`).
struct LinearSvm {
    c: f64,
    epochs: usize,
    seed: u64,
    fit: Option<DenseFit>,
    /// Per class: (weights, bias).
    models: Vec<(Vec<f64>, f64)>,
}

fn pegasos_binary(
    xs: &[Vec<f64>],
    ys: &[f64], // ±1
    c: f64,
    epochs: usize,
    seed: u64,
) -> (Vec<f64>, f64) {
    let n = xs.len();
    let dim = xs[0].len();
    let lambda = 1.0 / (c * n as f64);
    let mut w = vec![0.0; dim];
    let mut b = 0.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0usize;
    for _ in 0..epochs {
        for _ in 0..n {
            t += 1;
            let i = rng.gen_range(0..n);
            let eta = 1.0 / (lambda * t as f64);
            let margin = ys[i] * (dot(&w, &xs[i]) + b);
            // Regularization shrink.
            let shrink = 1.0 - eta * lambda;
            for wj in w.iter_mut() {
                *wj *= shrink.max(0.0);
            }
            if margin < 1.0 {
                for (wj, xj) in w.iter_mut().zip(&xs[i]) {
                    *wj += eta * ys[i] * xj;
                }
                b += eta * ys[i] * 0.1; // unregularized bias, damped
            }
        }
    }
    (w, b)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dense = DenseFit::fit(data, rows);
        self.models = (0..dense.n_classes)
            .map(|class| {
                let ys: Vec<f64> = dense
                    .labels
                    .iter()
                    .map(|&l| if l == class { 1.0 } else { -1.0 })
                    .collect();
                pegasos_binary(
                    &dense.xs,
                    &ys,
                    self.c,
                    self.epochs,
                    self.seed ^ class as u64,
                )
            })
            .collect();
        self.fit = Some(dense);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let dense = self.fit.as_ref().expect("predict before fit");
        let x = dense.encode(data, row);
        let scores: Vec<f64> = self.models.iter().map(|(w, b)| dot(w, &x) + b).collect();
        softmax_like(scores)
    }
}

fn softmax_like(mut scores: Vec<f64>) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    if sum > 0.0 {
        for s in scores.iter_mut() {
            *s /= sum;
        }
    }
    scores
}

pub struct SmoSpec;

impl AlgorithmSpec for SmoSpec {
    fn name(&self) -> &'static str {
        "SMO"
    }
    fn iteration_param(&self) -> Option<&'static str> {
        Some("epochs")
    }
    fn family(&self) -> Family {
        Family::Functions
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("c", Domain::float_log(0.01, 100.0))
            .add("epochs", Domain::int(5, 60))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("c", ParamValue::Float(1.0))
            .with("epochs", ParamValue::Int(20))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(LinearSvm {
            c: config.float_or("c", 1.0).max(1e-4),
            epochs: config.int_or("epochs", 20).max(1) as usize,
            seed,
            fit: None,
            models: Vec::new(),
        })
    }
}

// ----------------------------------------------------------------- LibSVM

/// Kernel choice of the LibSVM wrapper (`-t` in the real LibSVM; `gamma` is
/// only meaningful — and only searched — for the RBF kernel).
#[derive(Debug, Clone, Copy)]
enum SvmKernel {
    Rbf { gamma: f64 },
    Linear,
}

/// Kernel SVM via kernelized Pegasos, one-vs-rest. Coefficients live on
/// the training points (no sparsification — training sets here are small).
struct KernelSvm {
    c: f64,
    kernel_kind: SvmKernel,
    epochs: usize,
    seed: u64,
    fit: Option<DenseFit>,
    /// Per class: alpha coefficients over training points.
    alphas: Vec<Vec<f64>>,
}

impl KernelSvm {
    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.kernel_kind {
            SvmKernel::Rbf { gamma } => (-gamma * sq_dist(a, b)).exp(),
            SvmKernel::Linear => dot(a, b),
        }
    }

    fn decision(&self, dense: &DenseFit, alphas: &[f64], x: &[f64]) -> f64 {
        alphas
            .iter()
            .zip(&dense.xs)
            .filter(|(&a, _)| a != 0.0)
            .map(|(&a, xi)| a * self.kernel(xi, x))
            .sum()
    }
}

impl Classifier for KernelSvm {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dense = DenseFit::fit(data, rows);
        let n = dense.xs.len();
        let lambda = 1.0 / (self.c * n as f64);
        self.alphas = (0..dense.n_classes)
            .map(|class| {
                let ys: Vec<f64> = dense
                    .labels
                    .iter()
                    .map(|&l| if l == class { 1.0 } else { -1.0 })
                    .collect();
                // Kernelized Pegasos: alpha counts margin violations.
                let mut violations = vec![0.0f64; n];
                let mut rng = StdRng::seed_from_u64(self.seed ^ (class as u64) << 3);
                let mut t = 0usize;
                for _ in 0..self.epochs {
                    for _ in 0..n {
                        t += 1;
                        let i = rng.gen_range(0..n);
                        // f(x_i) = (1/(λt)) Σ_j viol_j y_j K(x_j, x_i)
                        let f: f64 = violations
                            .iter()
                            .zip(&dense.xs)
                            .zip(&ys)
                            .filter(|((&v, _), _)| v != 0.0)
                            .map(|((&v, xj), &yj)| v * yj * self.kernel(xj, &dense.xs[i]))
                            .sum::<f64>()
                            / (lambda * t as f64);
                        if ys[i] * f < 1.0 {
                            violations[i] += 1.0;
                        }
                    }
                }
                let scale = 1.0 / (lambda * t.max(1) as f64);
                violations
                    .iter()
                    .zip(&ys)
                    .map(|(&v, &y)| v * y * scale)
                    .collect()
            })
            .collect();
        self.fit = Some(dense);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let dense = self.fit.as_ref().expect("predict before fit");
        let x = dense.encode(data, row);
        let scores: Vec<f64> = self
            .alphas
            .iter()
            .map(|a| self.decision(dense, a, &x))
            .collect();
        softmax_like(scores)
    }
}

pub struct LibSvmSpec;

impl AlgorithmSpec for LibSvmSpec {
    fn name(&self) -> &'static str {
        "LibSVM"
    }
    fn iteration_param(&self) -> Option<&'static str> {
        Some("epochs")
    }
    fn family(&self) -> Family {
        Family::Functions
    }
    fn param_space(&self) -> SearchSpace {
        // A genuinely hierarchical algorithm space: `gamma` exists only for
        // the RBF kernel (the real LibSVM's `-t` / `-g` coupling).
        SearchSpace::builder()
            .add("c", Domain::float_log(0.01, 100.0))
            .add("kernel", Domain::cat(&["rbf", "linear"]))
            .add_if(
                "gamma",
                Domain::float_log(1e-3, 10.0),
                automodel_hpo::Condition::cat_eq("kernel", 0),
            )
            .add("epochs", Domain::int(3, 30))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("c", ParamValue::Float(1.0))
            .with("kernel", ParamValue::Cat(0))
            .with("gamma", ParamValue::Float(0.1))
            .with("epochs", ParamValue::Int(10))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        let kernel_kind = if config.cat_or("kernel", 0) == 1 {
            SvmKernel::Linear
        } else {
            SvmKernel::Rbf {
                gamma: config.float_or("gamma", 0.1).max(1e-6),
            }
        };
        Box::new(KernelSvm {
            c: config.float_or("c", 1.0).max(1e-4),
            kernel_kind,
            epochs: config.int_or("epochs", 10).max(1) as usize,
            seed,
            fit: None,
            alphas: Vec::new(),
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// --------------------------------------------------------------- RBFNetwork

/// RBF network: k-means centers, Gaussian activations, ridge-regressed
/// linear output layer solved in closed form (normal equations + Cholesky).
struct RbfNetwork {
    k: usize,
    ridge: f64,
    seed: u64,
    fit: Option<DenseFit>,
    centers: Vec<Vec<f64>>,
    gamma: f64,
    /// Output weights: per class, per (center + bias).
    weights: Vec<Vec<f64>>,
}

impl RbfNetwork {
    fn features(&self, x: &[f64]) -> Vec<f64> {
        let mut phi: Vec<f64> = self
            .centers
            .iter()
            .map(|c| (-self.gamma * sq_dist(c, x)).exp())
            .collect();
        phi.push(1.0); // bias
        phi
    }
}

impl Classifier for RbfNetwork {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dense = DenseFit::fit(data, rows);
        let k = self.k.clamp(1, dense.xs.len());
        self.centers = kmeans(&dense.xs, k, 40, self.seed);
        // Bandwidth from the mean inter-center distance.
        let mut dists = Vec::new();
        for i in 0..self.centers.len() {
            for j in i + 1..self.centers.len() {
                dists.push(sq_dist(&self.centers[i], &self.centers[j]).sqrt());
            }
        }
        let mean_d = if dists.is_empty() {
            1.0
        } else {
            dists.iter().sum::<f64>() / dists.len() as f64
        };
        self.gamma = 1.0 / (2.0 * (mean_d * mean_d / 2.0).max(1e-6));

        // Ridge regression Φᵀ Φ w = Φᵀ y per class (shared Gram matrix).
        let phis: Vec<Vec<f64>> = dense.xs.iter().map(|x| self.features(x)).collect();
        let m = phis[0].len();
        let mut gram = SquareMatrix::zeros(m);
        for phi in &phis {
            for i in 0..m {
                for j in 0..=i {
                    let v = gram.get(i, j) + phi[i] * phi[j];
                    gram.set(i, j, v);
                    gram.set(j, i, v);
                }
            }
        }
        for i in 0..m {
            gram.set(i, i, gram.get(i, i) + self.ridge);
        }
        let chol = cholesky(&gram).ok_or_else(|| {
            MlError::TrainingFailed("RBF normal equations not positive definite".into())
        })?;
        self.weights = (0..dense.n_classes)
            .map(|class| {
                let mut rhs = vec![0.0; m];
                for (phi, &l) in phis.iter().zip(&dense.labels) {
                    let y = if l == class { 1.0 } else { 0.0 };
                    for (r, p) in rhs.iter_mut().zip(phi) {
                        *r += p * y;
                    }
                }
                chol.solve(&rhs)
            })
            .collect();
        self.fit = Some(dense);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let dense = self.fit.as_ref().expect("predict before fit");
        let phi = self.features(&dense.encode(data, row));
        let scores: Vec<f64> = self.weights.iter().map(|w| dot(w, &phi)).collect();
        softmax_like(scores)
    }
}

pub struct RbfNetworkSpec;

impl AlgorithmSpec for RbfNetworkSpec {
    fn name(&self) -> &'static str {
        "RBFNetwork"
    }
    fn family(&self) -> Family {
        Family::Functions
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("k", Domain::int(2, 40))
            .add("ridge", Domain::float_log(1e-8, 1.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("k", ParamValue::Int(8))
            .with("ridge", ParamValue::Float(1e-6))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(RbfNetwork {
            k: config.int_or("k", 8).max(1) as usize,
            ridge: config.float_or("ridge", 1e-6).max(1e-10),
            seed,
            fit: None,
            centers: Vec::new(),
            gamma: 1.0,
            weights: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::{SynthFamily, SynthSpec};

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 3), d, 5, 1).unwrap()
    }

    fn linear_data() -> Dataset {
        SynthSpec::new("l", 300, 4, 0, 3, SynthFamily::Hyperplane, 21).generate()
    }

    fn ring_data() -> Dataset {
        SynthSpec::new("r", 300, 2, 0, 2, SynthFamily::Ring, 23).generate()
    }

    #[test]
    fn logistic_nails_linear_data() {
        assert!(cv(&LogisticSpec, &linear_data()) > 0.85);
    }

    #[test]
    fn simple_logistic_close_behind() {
        assert!(cv(&SimpleLogisticSpec, &linear_data()) > 0.8);
    }

    #[test]
    fn smo_handles_linear_data() {
        assert!(cv(&SmoSpec, &linear_data()) > 0.8);
    }

    #[test]
    fn rbf_kernel_svm_beats_linear_svm_on_rings() {
        let d = ring_data();
        let rbf = cv(&LibSvmSpec, &d);
        let linear = cv(&SmoSpec, &d);
        assert!(rbf > 0.85, "rbf accuracy = {rbf}");
        assert!(
            rbf > linear + 0.1,
            "rbf ({rbf}) should clearly beat linear ({linear}) on rings"
        );
    }

    #[test]
    fn rbf_network_handles_rings() {
        let acc = cv(&RbfNetworkSpec, &ring_data());
        assert!(acc > 0.8, "accuracy = {acc}");
    }

    #[test]
    fn mlp_handles_rings() {
        let acc = cv(&MultilayerPerceptronSpec, &ring_data());
        assert!(acc > 0.75, "accuracy = {acc}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let d = linear_data();
        for spec in [
            &LogisticSpec as &dyn AlgorithmSpec,
            &SmoSpec,
            &LibSvmSpec,
            &RbfNetworkSpec,
        ] {
            let c = spec.default_config();
            let mut m = spec.build(&c, 0);
            m.fit(&d, &(0..200).collect::<Vec<_>>()).unwrap();
            let p = m.predict_proba(&d, 250);
            assert!(
                (p.iter().sum::<f64>() - 1.0).abs() < 1e-6,
                "{}: {p:?}",
                spec.name()
            );
        }
    }
}
