//! `weka.classifiers.trees`: DecisionStump, Id3, J48, REPTree, RandomTree,
//! SimpleCart, NBTree, LMT, RandomForest.
//!
//! All single trees are parameterizations of [`crate::tree::DecisionTree`];
//! NBTree and LMT grow a shallow tree and fit a naive-Bayes / logistic model
//! in each leaf; RandomForest bags seeded RandomTrees.

use crate::classifier::Classifier;
use crate::error::MlError;
use crate::registry::{AlgorithmSpec, Family};
use crate::tree::{CatSplit, Criterion, DecisionTree, Pruning, TreeParams};
use automodel_data::{Column, Dataset};
use automodel_hpo::{Config, Domain, ParamValue, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

// -------------------------------------------------------------- DecisionStump

pub struct DecisionStumpSpec;

impl AlgorithmSpec for DecisionStumpSpec {
    fn name(&self) -> &'static str {
        "DecisionStump"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("criterion", Domain::cat(&["infogain", "gini"]))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("criterion", ParamValue::Cat(0))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(DecisionTree::new(TreeParams {
            max_depth: 1,
            criterion: if config.cat_or("criterion", 0) == 1 {
                Criterion::Gini
            } else {
                Criterion::InfoGain
            },
            seed,
            ..TreeParams::default()
        }))
    }
}

// ------------------------------------------------------------------------ Id3

/// Classic Id3: categorical attributes only, information gain, no pruning —
/// one of the paper's OneHot' `-1` algorithms on numeric datasets.
pub struct Id3Spec;

impl AlgorithmSpec for Id3Spec {
    fn name(&self) -> &'static str {
        "Id3"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("max_depth", Domain::int(1, 30))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("max_depth", ParamValue::Int(30))
    }
    fn check_applicable(&self, data: &Dataset) -> Result<(), MlError> {
        let numeric = data
            .columns()
            .iter()
            .filter(|c| matches!(c, Column::Numeric { .. }))
            .count();
        if numeric > 0 {
            return Err(MlError::NotApplicable {
                algorithm: self.name().into(),
                reason: format!("{numeric} numeric attributes (Id3 is nominal-only)"),
            });
        }
        if data.n_attrs() == 0 {
            return Err(MlError::NotApplicable {
                algorithm: self.name().into(),
                reason: "no attributes".into(),
            });
        }
        Ok(())
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(DecisionTree::new(TreeParams {
            criterion: Criterion::InfoGain,
            cat_split: CatSplit::Multiway,
            max_depth: config.int_or("max_depth", 30).max(1) as usize,
            pruning: Pruning::None,
            seed,
            ..TreeParams::default()
        }))
    }
}

// ------------------------------------------------------------------------ J48

/// C4.5: gain ratio, multiway categorical splits, pessimistic pruning.
pub struct J48Spec;

impl AlgorithmSpec for J48Spec {
    fn name(&self) -> &'static str {
        "J48"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("min_leaf", Domain::int(1, 16)) // Weka's -M
            .add("prune_penalty", Domain::float(0.1, 2.0)) // stands in for -C
            .add("unpruned", Domain::Bool) // Weka's -U
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("min_leaf", ParamValue::Int(2))
            .with("prune_penalty", ParamValue::Float(0.5))
            .with("unpruned", ParamValue::Bool(false))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        let pruning = if config.bool_or("unpruned", false) {
            Pruning::None
        } else {
            Pruning::Pessimistic {
                penalty: config.float_or("prune_penalty", 0.5),
            }
        };
        Box::new(DecisionTree::new(TreeParams {
            criterion: Criterion::GainRatio,
            cat_split: CatSplit::Multiway,
            min_leaf: config.int_or("min_leaf", 2).max(1) as usize,
            min_split: 2 * config.int_or("min_leaf", 2).max(1) as usize,
            pruning,
            seed,
            ..TreeParams::default()
        }))
    }
}

// -------------------------------------------------------------------- REPTree

pub struct RepTreeSpec;

impl AlgorithmSpec for RepTreeSpec {
    fn name(&self) -> &'static str {
        "REPTree"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("max_depth", Domain::int(1, 30))
            .add("min_leaf", Domain::int(1, 16))
            .add("prune_fraction", Domain::float(0.1, 0.5))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("max_depth", ParamValue::Int(30))
            .with("min_leaf", ParamValue::Int(2))
            .with("prune_fraction", ParamValue::Float(0.33))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(DecisionTree::new(TreeParams {
            criterion: Criterion::InfoGain,
            max_depth: config.int_or("max_depth", 30).max(1) as usize,
            min_leaf: config.int_or("min_leaf", 2).max(1) as usize,
            pruning: Pruning::ReducedError {
                fraction: config.float_or("prune_fraction", 0.33),
            },
            seed,
            ..TreeParams::default()
        }))
    }
}

// ----------------------------------------------------------------- RandomTree

pub struct RandomTreeSpec;

impl AlgorithmSpec for RandomTreeSpec {
    fn name(&self) -> &'static str {
        "RandomTree"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("k", Domain::int(0, 16)) // 0 = ceil(sqrt(n_attrs))
            .add("max_depth", Domain::int(2, 30))
            .add("min_leaf", Domain::int(1, 8))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("k", ParamValue::Int(0))
            .with("max_depth", ParamValue::Int(30))
            .with("min_leaf", ParamValue::Int(1))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(RandomTreeLike::new(config, seed))
    }
}

/// RandomTree needs the attribute count to resolve `k = 0`, so the subset
/// size is chosen at fit time.
struct RandomTreeLike {
    k: usize,
    max_depth: usize,
    min_leaf: usize,
    seed: u64,
    inner: Option<DecisionTree>,
}

impl RandomTreeLike {
    fn new(config: &Config, seed: u64) -> RandomTreeLike {
        RandomTreeLike {
            k: config.int_or("k", 0).max(0) as usize,
            max_depth: config.int_or("max_depth", 30).max(1) as usize,
            min_leaf: config.int_or("min_leaf", 1).max(1) as usize,
            seed,
            inner: None,
        }
    }
}

impl Classifier for RandomTreeLike {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        let k = if self.k == 0 {
            (data.n_attrs() as f64).sqrt().ceil() as usize
        } else {
            self.k
        };
        let mut tree = DecisionTree::new(TreeParams {
            criterion: Criterion::InfoGain,
            feature_subset: Some(k.max(1)),
            max_depth: self.max_depth,
            min_leaf: self.min_leaf,
            pruning: Pruning::None,
            seed: self.seed,
            ..TreeParams::default()
        });
        tree.fit(data, rows)?;
        self.inner = Some(tree);
        Ok(())
    }
    fn predict(&self, data: &Dataset, row: usize) -> usize {
        self.inner
            .as_ref()
            .expect("predict before fit")
            .predict(data, row)
    }
    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        self.inner
            .as_ref()
            .expect("predict before fit")
            .predict_proba(data, row)
    }
}

// ----------------------------------------------------------------- SimpleCart

pub struct SimpleCartSpec;

impl AlgorithmSpec for SimpleCartSpec {
    fn name(&self) -> &'static str {
        "SimpleCart"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("min_leaf", Domain::int(1, 16))
            .add("prune_penalty", Domain::float(0.1, 2.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("min_leaf", ParamValue::Int(2))
            .with("prune_penalty", ParamValue::Float(0.5))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(DecisionTree::new(TreeParams {
            criterion: Criterion::Gini,
            cat_split: CatSplit::Binary,
            min_leaf: config.int_or("min_leaf", 2).max(1) as usize,
            pruning: Pruning::Pessimistic {
                penalty: config.float_or("prune_penalty", 0.5),
            },
            seed,
            ..TreeParams::default()
        }))
    }
}

// ------------------------------------------------------- leaf-model trees

/// Shallow tree with a trainable model in each leaf (shared by NBTree/LMT).
struct LeafModelTree<F> {
    depth: usize,
    min_leaf_rows: usize,
    seed: u64,
    make_leaf_model: F,
    tree: Option<DecisionTree>,
    /// Leaf models keyed by the leaf's predicted-class path signature —
    /// since [`DecisionTree`] doesn't expose leaf ids, we re-partition rows
    /// by routing and store models per partition signature.
    leaf_models: Vec<(Vec<f64>, Box<dyn Classifier>)>,
    fallback: Option<Box<dyn Classifier>>,
}

impl<F: Fn(u64) -> Box<dyn Classifier> + Send> LeafModelTree<F> {
    /// Signature of the leaf a row lands in: the leaf's class distribution
    /// (unique per leaf in practice since distributions carry exact counts).
    fn leaf_signature(tree: &DecisionTree, data: &Dataset, row: usize) -> Vec<f64> {
        tree.predict_proba(data, row)
    }

    fn find_model(&self, sig: &[f64]) -> Option<&dyn Classifier> {
        self.leaf_models
            .iter()
            .find(|(s, _)| {
                s.len() == sig.len() && s.iter().zip(sig).all(|(a, b)| (a - b).abs() < 1e-12)
            })
            .map(|(_, m)| m.as_ref())
    }
}

impl<F: Fn(u64) -> Box<dyn Classifier> + Send> Classifier for LeafModelTree<F> {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut tree = DecisionTree::new(TreeParams {
            criterion: Criterion::GainRatio,
            max_depth: self.depth,
            min_leaf: self.min_leaf_rows,
            min_split: 2 * self.min_leaf_rows,
            seed: self.seed,
            ..TreeParams::default()
        });
        tree.fit(data, rows)?;

        // Partition training rows by leaf signature.
        let mut partitions: Vec<(Vec<f64>, Vec<usize>)> = Vec::new();
        for &r in rows {
            let sig = Self::leaf_signature(&tree, data, r);
            match partitions.iter_mut().find(|(s, _)| {
                s.len() == sig.len() && s.iter().zip(&sig).all(|(a, b)| (a - b).abs() < 1e-12)
            }) {
                Some((_, part)) => part.push(r),
                None => partitions.push((sig, vec![r])),
            }
        }
        self.leaf_models.clear();
        for (i, (sig, part)) in partitions.into_iter().enumerate() {
            let mut model = (self.make_leaf_model)(self.seed ^ (i as u64 + 1));
            if part.len() >= 2 && model.fit(data, &part).is_ok() {
                self.leaf_models.push((sig, model));
            }
        }
        let mut fallback = (self.make_leaf_model)(self.seed);
        fallback.fit(data, rows)?;
        self.fallback = Some(fallback);
        self.tree = Some(tree);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let tree = self.tree.as_ref().expect("predict before fit");
        let sig = Self::leaf_signature(tree, data, row);
        match self.find_model(&sig) {
            Some(model) => model.predict_proba(data, row),
            None => self
                .fallback
                .as_ref()
                .expect("predict before fit")
                .predict_proba(data, row),
        }
    }
}

/// NBTree: decision tree with naive-Bayes leaves.
pub struct NbTreeSpec;

impl AlgorithmSpec for NbTreeSpec {
    fn name(&self) -> &'static str {
        "NBTree"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("depth", Domain::int(1, 6))
            .add("min_leaf", Domain::int(10, 60))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("depth", ParamValue::Int(3))
            .with("min_leaf", ParamValue::Int(30))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(LeafModelTree {
            depth: config.int_or("depth", 3).max(1) as usize,
            min_leaf_rows: config.int_or("min_leaf", 30).max(2) as usize,
            seed,
            make_leaf_model: |_seed| {
                super::bayes::NaiveBayesSpec
                    .build(&super::bayes::NaiveBayesSpec.default_config(), 0)
            },
            tree: None,
            leaf_models: Vec::new(),
            fallback: None,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

/// LMT: logistic model tree (logistic-regression leaves).
pub struct LmtSpec;

impl AlgorithmSpec for LmtSpec {
    fn name(&self) -> &'static str {
        "LMT"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("depth", Domain::int(1, 5))
            .add("min_leaf", Domain::int(15, 80))
            .add("ridge", Domain::float_log(1e-6, 1.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("depth", ParamValue::Int(2))
            .with("min_leaf", ParamValue::Int(40))
            .with("ridge", ParamValue::Float(1e-4))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        let ridge = config.float_or("ridge", 1e-4);
        Box::new(LeafModelTree {
            depth: config.int_or("depth", 2).max(1) as usize,
            min_leaf_rows: config.int_or("min_leaf", 40).max(2) as usize,
            seed,
            make_leaf_model: move |seed| {
                let c = Config::new().with("ridge", ParamValue::Float(ridge));
                super::functions::LogisticSpec.build(&c, seed)
            },
            tree: None,
            leaf_models: Vec::new(),
            fallback: None,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// --------------------------------------------------------------- RandomForest

/// Bagged RandomTrees with majority (probability-averaged) voting.
pub struct RandomForestSpec;

struct RandomForest {
    n_trees: usize,
    k: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<RandomTreeLike>,
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for t in 0..self.n_trees {
            // Bootstrap sample.
            let sample: Vec<usize> = (0..rows.len())
                .map(|_| rows[rng.gen_range(0..rows.len())])
                .collect();
            let config = Config::new()
                .with("k", ParamValue::Int(self.k as i64))
                .with("max_depth", ParamValue::Int(self.max_depth as i64))
                .with("min_leaf", ParamValue::Int(1));
            let mut tree =
                RandomTreeLike::new(&config, self.seed ^ (t as u64).wrapping_mul(0x9E37));
            tree.fit(data, &sample)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut acc = vec![0.0; data.n_classes()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(data, row)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }
}

impl AlgorithmSpec for RandomForestSpec {
    fn name(&self) -> &'static str {
        "RandomForest"
    }
    fn family(&self) -> Family {
        Family::Trees
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("n_trees", Domain::int(10, 120))
            .add("k", Domain::int(0, 16))
            .add("max_depth", Domain::int(4, 30))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("n_trees", ParamValue::Int(40))
            .with("k", ParamValue::Int(0))
            .with("max_depth", ParamValue::Int(30))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(RandomForest {
            n_trees: config.int_or("n_trees", 40).max(1) as usize,
            k: config.int_or("k", 0).max(0) as usize,
            max_depth: config.int_or("max_depth", 30).max(1) as usize,
            seed,
            trees: Vec::new(),
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::{SynthFamily, SynthSpec};

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset, seed: u64) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 7), d, 5, seed).unwrap()
    }

    fn rule_data() -> Dataset {
        SynthSpec::new("r", 400, 0, 6, 3, SynthFamily::RuleBased { depth: 3 }, 11).generate()
    }

    fn blob_data() -> Dataset {
        SynthSpec::new(
            "b",
            300,
            5,
            1,
            3,
            SynthFamily::GaussianBlobs { spread: 0.8 },
            13,
        )
        .generate()
    }

    #[test]
    fn j48_learns_rules() {
        assert!(cv(&J48Spec, &rule_data(), 1) > 0.85);
    }

    #[test]
    fn id3_learns_categorical_rules_and_rejects_numeric() {
        let d = rule_data();
        assert!(Id3Spec.check_applicable(&d).is_ok());
        assert!(cv(&Id3Spec, &d, 2) > 0.85);
        assert!(Id3Spec.check_applicable(&blob_data()).is_err());
    }

    #[test]
    fn reptree_and_cart_learn_blobs() {
        assert!(cv(&RepTreeSpec, &blob_data(), 3) > 0.8);
        assert!(cv(&SimpleCartSpec, &blob_data(), 3) > 0.8);
    }

    #[test]
    fn random_forest_beats_single_random_tree_on_noisy_data() {
        let d = SynthSpec::new("n", 350, 6, 0, 2, SynthFamily::Hyperplane, 17)
            .with_label_noise(0.15)
            .generate();
        let forest = cv(&RandomForestSpec, &d, 4);
        let single = cv(&RandomTreeSpec, &d, 4);
        assert!(
            forest >= single,
            "forest {forest} should be at least single tree {single}"
        );
        assert!(forest > 0.75, "forest accuracy = {forest}");
    }

    #[test]
    fn stump_is_weak_but_above_chance_on_blobs() {
        let acc = cv(&DecisionStumpSpec, &blob_data(), 5);
        assert!(acc > 0.4, "stump accuracy = {acc}");
    }

    #[test]
    fn nbtree_and_lmt_work_on_mixed_data() {
        let d = SynthSpec::new("m", 250, 3, 2, 2, SynthFamily::Mixed, 19).generate();
        assert!(cv(&NbTreeSpec, &d, 6) > 0.7, "NBTree");
        assert!(cv(&LmtSpec, &d, 6) > 0.7, "LMT");
    }

    #[test]
    fn forest_probabilities_are_distributions() {
        let d = blob_data();
        let spec = RandomForestSpec;
        let c = spec.default_config();
        let mut m = spec.build(&c, 1);
        m.fit(&d, &(0..200).collect::<Vec<_>>()).unwrap();
        let p = m.predict_proba(&d, 250);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
