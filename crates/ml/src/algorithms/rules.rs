//! `weka.classifiers.rules`: ZeroR, OneR, JRip, PART, Ridor.
//!
//! `JRip` is a compact RIPPER: sequential covering per class (rarest first),
//! greedily growing conjunctive rules by FOIL gain with a precision-based
//! stopping rule (the full MDL pruning of RIPPER is replaced by minimum
//! coverage/precision thresholds — the ordered-rule-list behaviour is
//! preserved). `PART` derives its ordered rule list from the leaves of a
//! pruned J48 tree, largest-coverage first, mirroring "rules from partial
//! trees" without the repeated partial-tree rebuilds. `Ridor` learns a
//! default class plus one layer of exception rules.

use super::dense::Discretizer;
use crate::classifier::{majority_class, Classifier};
use crate::error::MlError;
use crate::registry::{AlgorithmSpec, Family};
use automodel_data::Dataset;
use automodel_hpo::{Config, Domain, ParamValue, SearchSpace};

// ---------------------------------------------------------------------- ZeroR

struct ZeroR {
    class: usize,
    dist: Vec<f64>,
    fitted: bool,
}

impl Classifier for ZeroR {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.class = majority_class(data, rows);
        self.dist = crate::classifier::class_distribution(data, rows, 0.0);
        self.fitted = true;
        Ok(())
    }
    fn predict(&self, _data: &Dataset, _row: usize) -> usize {
        assert!(self.fitted, "predict before fit");
        self.class
    }
    fn predict_proba(&self, _data: &Dataset, _row: usize) -> Vec<f64> {
        assert!(self.fitted, "predict before fit");
        self.dist.clone()
    }
}

pub struct ZeroRSpec;

impl AlgorithmSpec for ZeroRSpec {
    fn name(&self) -> &'static str {
        "ZeroR"
    }
    fn family(&self) -> Family {
        Family::Rules
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder().build().expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
    }
    fn build(&self, _config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(ZeroR {
            class: 0,
            dist: Vec::new(),
            fitted: false,
        })
    }
}

// ----------------------------------------------------------------------- OneR

/// One attribute, one rule per discrete value (numerics discretized with a
/// minimum bucket size, Holte 1993).
struct OneR {
    bins: usize,
    disc: Option<Discretizer>,
    attr: usize,
    /// Class per discrete value of the chosen attribute.
    rule: Vec<usize>,
    default: usize,
    n_classes: usize,
}

impl Classifier for OneR {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if data.n_attrs() == 0 {
            return Err(MlError::NotApplicable {
                algorithm: "OneR".into(),
                reason: "no attributes".into(),
            });
        }
        let disc = Discretizer::fit(data, rows, self.bins);
        self.n_classes = data.n_classes();
        self.default = majority_class(data, rows);
        let mut best: Option<(usize, usize, Vec<usize>)> = None; // (errors, attr, rule)
        for attr in 0..data.n_attrs() {
            let arity = disc.arity(data, attr).max(1);
            let mut counts = vec![vec![0usize; self.n_classes]; arity];
            for &r in rows {
                if let Some(v) = disc.value(data, r, attr) {
                    counts[v][data.label(r)] += 1;
                }
            }
            let rule: Vec<usize> = counts
                .iter()
                .map(|c| {
                    c.iter()
                        .enumerate()
                        .max_by_key(|(_, &n)| n)
                        .map(|(i, _)| i)
                        .unwrap_or(self.default)
                })
                .collect();
            let errors: usize = counts
                .iter()
                .zip(&rule)
                .map(|(c, &pred)| c.iter().sum::<usize>() - c[pred])
                .sum();
            if best.as_ref().is_none_or(|(e, _, _)| errors < *e) {
                best = Some((errors, attr, rule));
            }
        }
        let (_, attr, rule) = best.expect("at least one attribute");
        self.attr = attr;
        self.rule = rule;
        self.disc = Some(disc);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        let disc = self.disc.as_ref().expect("predict before fit");
        match disc.value(data, row, self.attr) {
            Some(v) => self.rule.get(v).copied().unwrap_or(self.default),
            None => self.default,
        }
    }
}

pub struct OneRSpec;

impl AlgorithmSpec for OneRSpec {
    fn name(&self) -> &'static str {
        "OneR"
    }
    fn family(&self) -> Family {
        Family::Rules
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("bins", Domain::int(2, 12))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("bins", ParamValue::Int(6))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(OneR {
            bins: config.int_or("bins", 6).max(2) as usize,
            disc: None,
            attr: 0,
            rule: Vec::new(),
            default: 0,
            n_classes: 0,
        })
    }
}

// ------------------------------------------------------ shared rule machinery

/// One conjunctive condition over a discretized attribute.
#[derive(Debug, Clone, PartialEq)]
struct Condition {
    attr: usize,
    value: usize,
}

/// An ordered classification rule: conjunction → class.
#[derive(Debug, Clone)]
struct Rule {
    conditions: Vec<Condition>,
    class: usize,
}

impl Rule {
    fn covers(&self, disc: &Discretizer, data: &Dataset, row: usize) -> bool {
        self.conditions
            .iter()
            .all(|c| disc.value(data, row, c.attr) == Some(c.value))
    }
}

/// Ordered rule list with a default class; the prediction engine behind
/// JRip, PART and Ridor.
struct RuleList {
    disc: Option<Discretizer>,
    rules: Vec<Rule>,
    default: usize,
}

impl RuleList {
    fn classify(&self, data: &Dataset, row: usize) -> usize {
        let disc = self.disc.as_ref().expect("predict before fit");
        for rule in &self.rules {
            if rule.covers(disc, data, row) {
                return rule.class;
            }
        }
        self.default
    }
}

/// Greedily grow one conjunctive rule for `target` over `pending` rows,
/// extending by the condition with the best FOIL gain until precision or
/// coverage limits are hit. Returns `None` when no useful rule exists.
fn grow_rule(
    data: &Dataset,
    disc: &Discretizer,
    pending: &[usize],
    target: usize,
    min_coverage: usize,
    min_precision: f64,
    max_conditions: usize,
) -> Option<Rule> {
    let mut covered: Vec<usize> = pending.to_vec();
    let mut conditions: Vec<Condition> = Vec::new();

    let precision = |rows: &[usize]| -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().filter(|&&r| data.label(r) == target).count() as f64 / rows.len() as f64
    };

    while conditions.len() < max_conditions && precision(&covered) < min_precision {
        let p0 = covered.iter().filter(|&&r| data.label(r) == target).count() as f64;
        let n0 = covered.len() as f64;
        if p0 == 0.0 {
            return None;
        }
        let mut best: Option<(f64, Condition)> = None;
        for attr in 0..data.n_attrs() {
            if conditions.iter().any(|c| c.attr == attr) {
                continue;
            }
            let arity = disc.arity(data, attr).max(1);
            let mut pos = vec![0.0f64; arity];
            let mut tot = vec![0.0f64; arity];
            for &r in &covered {
                if let Some(v) = disc.value(data, r, attr) {
                    tot[v] += 1.0;
                    if data.label(r) == target {
                        pos[v] += 1.0;
                    }
                }
            }
            for v in 0..arity {
                if pos[v] < min_coverage as f64 {
                    continue;
                }
                // FOIL gain: p (log(p/t) − log(p0/n0)).
                let gain = pos[v] * ((pos[v] / tot[v]).max(1e-12).ln() - (p0 / n0).max(1e-12).ln());
                if gain > 0.0 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                    best = Some((gain, Condition { attr, value: v }));
                }
            }
        }
        let Some((_, cond)) = best else { break };
        covered.retain(|&r| disc.value(data, r, cond.attr) == Some(cond.value));
        conditions.push(cond);
    }

    if conditions.is_empty() || covered.len() < min_coverage || precision(&covered) < min_precision
    {
        return None;
    }
    Some(Rule {
        conditions,
        class: target,
    })
}

// ----------------------------------------------------------------------- JRip

struct JRip {
    bins: usize,
    min_coverage: usize,
    min_precision: f64,
    max_conditions: usize,
    list: RuleList,
    n_classes: usize,
}

impl Classifier for JRip {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let disc = Discretizer::fit(data, rows, self.bins);
        self.n_classes = data.n_classes();
        // Classes in ascending frequency (RIPPER order); the most frequent
        // becomes the default.
        let counts = {
            let mut c = vec![0usize; self.n_classes];
            for &r in rows {
                c[data.label(r)] += 1;
            }
            c
        };
        let mut order: Vec<usize> = (0..self.n_classes).collect();
        order.sort_by_key(|&c| counts[c]);
        let default = *order.last().unwrap_or(&0);

        let mut pending: Vec<usize> = rows.to_vec();
        let mut rules = Vec::new();
        for &target in order.iter().take(self.n_classes.saturating_sub(1)) {
            loop {
                let remaining_pos = pending.iter().filter(|&&r| data.label(r) == target).count();
                if remaining_pos < self.min_coverage {
                    break;
                }
                match grow_rule(
                    data,
                    &disc,
                    &pending,
                    target,
                    self.min_coverage,
                    self.min_precision,
                    self.max_conditions,
                ) {
                    Some(rule) => {
                        pending.retain(|&r| !rule.covers(&disc, data, r));
                        rules.push(rule);
                    }
                    None => break,
                }
            }
        }
        self.list = RuleList {
            disc: Some(disc),
            rules,
            default,
        };
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        self.list.classify(data, row)
    }
}

pub struct JRipSpec;

impl AlgorithmSpec for JRipSpec {
    fn name(&self) -> &'static str {
        "JRip"
    }
    fn family(&self) -> Family {
        Family::Rules
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("bins", Domain::int(2, 10))
            .add("min_coverage", Domain::int(2, 20))
            .add("min_precision", Domain::float(0.5, 0.99))
            .add("max_conditions", Domain::int(1, 6))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("bins", ParamValue::Int(5))
            .with("min_coverage", ParamValue::Int(3))
            .with("min_precision", ParamValue::Float(0.8))
            .with("max_conditions", ParamValue::Int(4))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(JRip {
            bins: config.int_or("bins", 5).max(2) as usize,
            min_coverage: config.int_or("min_coverage", 3).max(1) as usize,
            min_precision: config.float_or("min_precision", 0.8).clamp(0.05, 1.0),
            max_conditions: config.int_or("max_conditions", 4).max(1) as usize,
            list: RuleList {
                disc: None,
                rules: Vec::new(),
                default: 0,
            },
            n_classes: 0,
        })
    }
}

// ----------------------------------------------------------------------- PART

/// Rules from a pruned J48 tree: each training partition that shares a leaf
/// becomes a rule whose conditions are re-derived greedily; rules are
/// ordered by coverage.
struct Part {
    bins: usize,
    min_coverage: usize,
    max_conditions: usize,
    list: RuleList,
}

impl Classifier for Part {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let disc = Discretizer::fit(data, rows, self.bins);
        let default = majority_class(data, rows);

        // Sequential covering across *all* classes by best rule first (PART
        // picks the best leaf of each partial tree; our analogue picks the
        // best greedy rule over the remaining rows each round).
        let mut pending: Vec<usize> = rows.to_vec();
        let mut rules = Vec::new();
        for _ in 0..64 {
            if pending.len() < self.min_coverage {
                break;
            }
            // Candidate rule per class; keep the one covering most rows.
            let mut best: Option<(usize, Rule)> = None;
            for target in 0..data.n_classes() {
                if let Some(rule) = grow_rule(
                    data,
                    &disc,
                    &pending,
                    target,
                    self.min_coverage,
                    0.7,
                    self.max_conditions,
                ) {
                    let coverage = pending
                        .iter()
                        .filter(|&&r| rule.covers(&disc, data, r))
                        .count();
                    if best.as_ref().is_none_or(|(c, _)| coverage > *c) {
                        best = Some((coverage, rule));
                    }
                }
            }
            match best {
                Some((_, rule)) => {
                    pending.retain(|&r| !rule.covers(&disc, data, r));
                    rules.push(rule);
                }
                None => break,
            }
        }
        self.list = RuleList {
            disc: Some(disc),
            rules,
            default,
        };
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        self.list.classify(data, row)
    }
}

pub struct PartSpec;

impl AlgorithmSpec for PartSpec {
    fn name(&self) -> &'static str {
        "PART"
    }
    fn family(&self) -> Family {
        Family::Rules
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("bins", Domain::int(2, 10))
            .add("min_coverage", Domain::int(2, 20))
            .add("max_conditions", Domain::int(1, 6))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("bins", ParamValue::Int(5))
            .with("min_coverage", ParamValue::Int(3))
            .with("max_conditions", ParamValue::Int(4))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(Part {
            bins: config.int_or("bins", 5).max(2) as usize,
            min_coverage: config.int_or("min_coverage", 3).max(1) as usize,
            max_conditions: config.int_or("max_conditions", 4).max(1) as usize,
            list: RuleList {
                disc: None,
                rules: Vec::new(),
                default: 0,
            },
        })
    }
}

// ---------------------------------------------------------------------- Ridor

/// Ripple-down rules, one exception layer: majority default plus rules that
/// carve out the non-default classes.
struct Ridor {
    bins: usize,
    min_coverage: usize,
    list: RuleList,
}

impl Classifier for Ridor {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let disc = Discretizer::fit(data, rows, self.bins);
        let default = majority_class(data, rows);
        let mut pending: Vec<usize> = rows.to_vec();
        let mut rules = Vec::new();
        for target in 0..data.n_classes() {
            if target == default {
                continue;
            }
            while let Some(rule) =
                grow_rule(data, &disc, &pending, target, self.min_coverage, 0.75, 3)
            {
                pending.retain(|&r| !rule.covers(&disc, data, r));
                rules.push(rule);
            }
        }
        self.list = RuleList {
            disc: Some(disc),
            rules,
            default,
        };
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        self.list.classify(data, row)
    }
}

pub struct RidorSpec;

impl AlgorithmSpec for RidorSpec {
    fn name(&self) -> &'static str {
        "Ridor"
    }
    fn family(&self) -> Family {
        Family::Rules
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("bins", Domain::int(2, 10))
            .add("min_coverage", Domain::int(2, 20))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("bins", ParamValue::Int(5))
            .with("min_coverage", ParamValue::Int(3))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(Ridor {
            bins: config.int_or("bins", 5).max(2) as usize,
            min_coverage: config.int_or("min_coverage", 3).max(1) as usize,
            list: RuleList {
                disc: None,
                rules: Vec::new(),
                default: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::dataset::default_class_names;
    use automodel_data::{SynthFamily, SynthSpec};

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 0), d, 5, 1).unwrap()
    }

    fn rule_data() -> Dataset {
        SynthSpec::new("r", 400, 0, 5, 2, SynthFamily::RuleBased { depth: 2 }, 31).generate()
    }

    #[test]
    fn zeror_predicts_majority_exactly() {
        let d = Dataset::builder("z")
            .numeric("x", vec![0.0; 10])
            .target(
                "y",
                vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1],
                default_class_names(2),
            )
            .unwrap();
        let acc = cv(&ZeroRSpec, &d);
        assert!((acc - 0.7).abs() < 0.15, "zero-r accuracy = {acc}");
    }

    #[test]
    fn oner_picks_the_single_informative_attribute() {
        // attr0 = pure noise, attr1 = the label.
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let d = Dataset::builder("o")
            .categorical(
                "noise",
                (0..100).map(|i| ((i * 7) % 3) as u32).collect(),
                vec!["a".into(), "b".into(), "c".into()],
            )
            .categorical(
                "signal",
                labels.iter().map(|&l| l as u32).collect(),
                vec!["x".into(), "y".into()],
            )
            .target("y", labels, default_class_names(2))
            .unwrap();
        let acc = cv(&OneRSpec, &d);
        assert!(acc > 0.95, "OneR accuracy = {acc}");
    }

    #[test]
    fn oner_bins_numeric_attributes() {
        let d = SynthSpec::new("n", 200, 3, 0, 2, SynthFamily::Hyperplane, 33).generate();
        let acc = cv(&OneRSpec, &d);
        assert!(acc > 0.6, "OneR on numerics = {acc}");
    }

    #[test]
    fn jrip_learns_categorical_rules() {
        let acc = cv(&JRipSpec, &rule_data());
        assert!(acc > 0.75, "JRip accuracy = {acc}");
    }

    #[test]
    fn part_learns_categorical_rules() {
        let acc = cv(&PartSpec, &rule_data());
        assert!(acc > 0.7, "PART accuracy = {acc}");
    }

    #[test]
    fn ridor_beats_zeror_on_rule_data() {
        let d = rule_data();
        let ridor = cv(&RidorSpec, &d);
        let zeror = cv(&ZeroRSpec, &d);
        assert!(ridor > zeror, "Ridor {ridor} vs ZeroR {zeror}");
    }

    #[test]
    fn rule_growth_respects_precision_threshold() {
        let d = rule_data();
        let rows: Vec<usize> = (0..d.n_rows()).collect();
        let disc = Discretizer::fit(&d, &rows, 5);
        if let Some(rule) = grow_rule(&d, &disc, &rows, 0, 3, 0.8, 4) {
            let covered: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&r| rule.covers(&disc, &d, r))
                .collect();
            let precision =
                covered.iter().filter(|&&r| d.label(r) == 0).count() as f64 / covered.len() as f64;
            assert!(precision >= 0.8, "precision = {precision}");
            assert!(covered.len() >= 3);
        }
    }
}
