//! Shared helpers for algorithms that operate on dense encodings:
//! fitted views, distances, k-means, and an equal-frequency discretizer.

use automodel_data::encoding::NumericEncoder;
use automodel_data::{Column, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A fitted dense view of the training rows: encoder + encoded matrix +
/// labels. Shared by the lazy, function and clustering learners.
#[derive(Debug, Clone)]
pub struct DenseFit {
    pub encoder: NumericEncoder,
    pub xs: Vec<Vec<f64>>,
    pub labels: Vec<usize>,
    pub n_classes: usize,
}

impl DenseFit {
    /// Encode `rows` of `data` (standardizing numerics).
    pub fn fit(data: &Dataset, rows: &[usize]) -> DenseFit {
        let encoder = NumericEncoder::fit(data, rows, true);
        let xs = encoder.encode_matrix(data, rows);
        let labels = rows.iter().map(|&r| data.label(r)).collect();
        DenseFit {
            encoder,
            xs,
            labels,
            n_classes: data.n_classes(),
        }
    }

    /// Encode one prediction-time row with the training-time encoder.
    pub fn encode(&self, data: &Dataset, row: usize) -> Vec<f64> {
        self.encoder.encode(data, row)
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Indices of the `k` nearest training points to `query` (ties by index).
pub fn k_nearest(xs: &[Vec<f64>], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut dists: Vec<(usize, f64)> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| (i, sq_dist(x, query)))
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    dists.truncate(k.max(1));
    dists
}

/// Lloyd's k-means over dense rows. Returns centroids; empty clusters are
/// reseeded from random points. Deterministic in `seed`.
pub fn kmeans(xs: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(!xs.is_empty(), "kmeans on empty data");
    let k = k.clamp(1, xs.len());
    let dim = xs[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f64>> = order[..k].iter().map(|&i| xs[i].clone()).collect();
    let mut assignment = vec![0usize; xs.len()];
    for _ in 0..max_iter {
        let mut changed = false;
        for (i, x) in xs.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| sq_dist(a.1, x).total_cmp(&sq_dist(b.1, x)))
                .map(|(c, _)| c)
                .unwrap_or(0);
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, x) in xs.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, v) in sums[assignment[i]].iter_mut().zip(x) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                centroids[c] = xs[rng.gen_range(0..xs.len())].clone();
                continue;
            }
            for (ctr, s) in centroids[c].iter_mut().zip(&sums[c]) {
                *ctr = s / counts[c] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    centroids
}

/// Cluster assignment under fixed centroids.
pub fn assign(xs: &[Vec<f64>], centroids: &[Vec<f64>]) -> Vec<usize> {
    xs.iter()
        .map(|x| {
            centroids
                .iter()
                .enumerate()
                .min_by(|a, b| sq_dist(a.1, x).total_cmp(&sq_dist(b.1, x)))
                .map(|(c, _)| c)
                .unwrap_or(0)
        })
        .collect()
}

/// Equal-frequency discretizer for numeric columns, fit on training rows.
/// Categorical columns pass through; numeric values map to bin indices.
/// Used by the algorithms that only speak nominal attributes (BayesNet,
/// AODE, OneR on numerics).
#[derive(Debug, Clone)]
pub struct Discretizer {
    /// Per column: `None` for categorical (pass-through), `Some(cuts)` for
    /// numeric with ascending cut points.
    cuts: Vec<Option<Vec<f64>>>,
}

impl Discretizer {
    /// Fit with at most `bins` bins per numeric column.
    pub fn fit(data: &Dataset, rows: &[usize], bins: usize) -> Discretizer {
        let bins = bins.max(2);
        let cuts = data
            .columns()
            .iter()
            .map(|col| match col {
                Column::Categorical { .. } => None,
                Column::Numeric { .. } => {
                    let mut vals: Vec<f64> = rows
                        .iter()
                        .filter_map(|&r| col.numeric_at(r).filter(|v| !v.is_nan()))
                        .collect();
                    vals.sort_by(f64::total_cmp);
                    let mut cuts = Vec::new();
                    if !vals.is_empty() {
                        for b in 1..bins {
                            let idx = (vals.len() * b) / bins;
                            let cut = vals[idx.min(vals.len() - 1)];
                            if cuts.last().is_none_or(|&last| cut > last) {
                                cuts.push(cut);
                            }
                        }
                    }
                    Some(cuts)
                }
            })
            .collect();
        Discretizer { cuts }
    }

    /// Number of discrete values column `col` can take (bins or category count).
    pub fn arity(&self, data: &Dataset, col: usize) -> usize {
        match &self.cuts[col] {
            None => data.columns()[col].n_categories(),
            Some(cuts) => cuts.len() + 1,
        }
    }

    /// Discrete value of cell `(row, col)`, or `None` when missing.
    pub fn value(&self, data: &Dataset, row: usize, col: usize) -> Option<usize> {
        match &self.cuts[col] {
            None => data.columns()[col].category_at(row).map(|c| c as usize),
            Some(cuts) => {
                let v = data.columns()[col].numeric_at(row)?;
                if v.is_nan() {
                    return None;
                }
                Some(cuts.iter().take_while(|&&c| v > c).count())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_data::dataset::default_class_names;
    use automodel_data::{SynthFamily, SynthSpec};

    #[test]
    fn dense_fit_round_trips_shapes() {
        let d = SynthSpec::new("d", 50, 3, 2, 2, SynthFamily::Mixed, 1).generate();
        let rows: Vec<usize> = (0..30).collect();
        let fit = DenseFit::fit(&d, &rows);
        assert_eq!(fit.xs.len(), 30);
        assert_eq!(fit.labels.len(), 30);
        let enc = fit.encode(&d, 40);
        assert_eq!(enc.len(), fit.xs[0].len());
    }

    #[test]
    fn k_nearest_orders_by_distance() {
        let xs = vec![vec![0.0], vec![10.0], vec![1.0]];
        let nn = k_nearest(&xs, &[0.2], 2);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[1].0, 2);
    }

    #[test]
    fn kmeans_recovers_two_well_separated_clusters() {
        let mut xs = Vec::new();
        for i in 0..20 {
            xs.push(vec![i as f64 * 0.01]);
            xs.push(vec![100.0 + i as f64 * 0.01]);
        }
        let centroids = kmeans(&xs, 2, 50, 7);
        let mut ms: Vec<f64> = centroids.iter().map(|c| c[0]).collect();
        ms.sort_by(f64::total_cmp);
        assert!(ms[0] < 1.0 && ms[1] > 99.0, "centroids: {ms:?}");
    }

    #[test]
    fn kmeans_is_deterministic() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64]).collect();
        assert_eq!(kmeans(&xs, 3, 20, 5), kmeans(&xs, 3, 20, 5));
    }

    #[test]
    fn discretizer_buckets_numeric_and_passes_categorical() {
        let d = Dataset::builder("disc")
            .numeric("x", (0..100).map(|i| i as f64).collect())
            .categorical(
                "c",
                (0..100).map(|i| (i % 3) as u32).collect(),
                vec!["a".into(), "b".into(), "c".into()],
            )
            .target("y", vec![0; 100], default_class_names(1))
            .unwrap();
        let rows: Vec<usize> = (0..100).collect();
        let disc = Discretizer::fit(&d, &rows, 4);
        assert_eq!(disc.arity(&d, 0), 4);
        assert_eq!(disc.arity(&d, 1), 3);
        assert_eq!(disc.value(&d, 0, 0), Some(0));
        assert_eq!(disc.value(&d, 99, 0), Some(3));
        assert_eq!(disc.value(&d, 5, 1), Some(2));
        // Monotone bucketing.
        let mut last = 0;
        for r in 0..100 {
            let b = disc.value(&d, r, 0).unwrap();
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn discretizer_handles_constant_columns() {
        let d = Dataset::builder("const")
            .numeric("x", vec![5.0; 20])
            .target("y", vec![0; 20], default_class_names(1))
            .unwrap();
        let rows: Vec<usize> = (0..20).collect();
        let disc = Discretizer::fit(&d, &rows, 5);
        // All cuts collapse; arity may be small but value stays in range.
        for r in 0..20 {
            let v = disc.value(&d, r, 0).unwrap();
            assert!(v < disc.arity(&d, 0).max(1));
        }
    }
}
