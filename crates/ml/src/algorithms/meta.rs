//! `weka.classifiers.meta`: AdaBoostM1, Bagging, LogitBoost,
//! RandomSubSpace, RandomCommittee, RotationForest,
//! ClassificationViaClustering, StackingC.
//!
//! Boosting uses weight-proportional *resampling* (one of Weka's two
//! AdaBoostM1 modes) so any base learner works unchanged. RotationForest is
//! simplified to attribute-subset + bootstrap diversity (the PCA rotation is
//! replaced by the subspace projection — both decorrelate members, which is
//! the property the ensemble needs); DESIGN.md records the substitution.

use super::dense::{assign, kmeans, DenseFit};
use crate::classifier::{majority_class, Classifier};
use crate::error::MlError;
use crate::registry::{AlgorithmSpec, Family};
use automodel_data::Dataset;
use automodel_hpo::{Config, Domain, ParamValue, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Base-learner menu shared by the ensemble methods.
const BASE_LEARNERS: [&str; 4] = ["DecisionStump", "REPTree", "J48", "NaiveBayes"];

fn build_base(name_index: usize, seed: u64) -> Box<dyn Classifier> {
    match BASE_LEARNERS[name_index.min(BASE_LEARNERS.len() - 1)] {
        "DecisionStump" => super::trees::DecisionStumpSpec
            .build(&super::trees::DecisionStumpSpec.default_config(), seed),
        "REPTree" => {
            super::trees::RepTreeSpec.build(&super::trees::RepTreeSpec.default_config(), seed)
        }
        "J48" => super::trees::J48Spec.build(&super::trees::J48Spec.default_config(), seed),
        _ => {
            super::bayes::NaiveBayesSpec.build(&super::bayes::NaiveBayesSpec.default_config(), seed)
        }
    }
}

/// Weight-proportional resample of `rows` (with replacement).
fn weighted_resample<R: Rng>(rows: &[usize], weights: &[f64], rng: &mut R) -> Vec<usize> {
    let total: f64 = weights.iter().sum();
    (0..rows.len())
        .map(|_| {
            let mut u = rng.gen::<f64>() * total;
            for (i, &w) in weights.iter().enumerate() {
                if u < w {
                    return rows[i];
                }
                u -= w;
            }
            rows[rows.len() - 1]
        })
        .collect()
}

// ----------------------------------------------------------------- AdaBoostM1

struct AdaBoostM1 {
    iterations: usize,
    base: usize,
    seed: u64,
    models: Vec<(Box<dyn Classifier>, f64)>,
    n_classes: usize,
}

impl Classifier for AdaBoostM1 {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = rows.len();
        let mut weights = vec![1.0 / n as f64; n];
        self.models.clear();
        for it in 0..self.iterations {
            let sample = weighted_resample(rows, &weights, &mut rng);
            let mut model = build_base(self.base, self.seed ^ (it as u64) << 4);
            model.fit(data, &sample)?;
            let mut err = 0.0;
            let misclassified: Vec<bool> = rows
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    let wrong = model.predict(data, r) != data.label(r);
                    if wrong {
                        err += weights[i];
                    }
                    wrong
                })
                .collect();
            if err >= 0.5 {
                // Worse than chance: discard and stop (Freund & Schapire).
                if self.models.is_empty() {
                    self.models.push((model, 1.0));
                }
                break;
            }
            let err_clamped = err.max(1e-10);
            let beta = err_clamped / (1.0 - err_clamped);
            let alpha = (1.0 / beta).ln();
            for (w, &wrong) in weights.iter_mut().zip(&misclassified) {
                if !wrong {
                    *w *= beta;
                }
            }
            let total: f64 = weights.iter().sum();
            for w in weights.iter_mut() {
                *w /= total;
            }
            self.models.push((model, alpha));
            if err <= 1e-10 {
                break;
            }
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut votes = vec![0.0; self.n_classes];
        for (model, alpha) in &self.models {
            votes[model.predict(data, row)] += alpha;
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in votes.iter_mut() {
                *v /= total;
            }
        }
        votes
    }
}

pub struct AdaBoostM1Spec;

impl AlgorithmSpec for AdaBoostM1Spec {
    fn name(&self) -> &'static str {
        "AdaBoostM1"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("iterations", Domain::int(5, 80))
            .add("base", Domain::cat(&BASE_LEARNERS))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("iterations", ParamValue::Int(20))
            .with("base", ParamValue::Cat(0))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(AdaBoostM1 {
            iterations: config.int_or("iterations", 20).max(1) as usize,
            base: config.cat_or("base", 0),
            seed,
            models: Vec::new(),
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// -------------------------------------------------------------------- Bagging

struct Bagging {
    n_bags: usize,
    bag_fraction: f64,
    base: usize,
    seed: u64,
    models: Vec<Box<dyn Classifier>>,
    n_classes: usize,
}

impl Classifier for Bagging {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bag_size = ((rows.len() as f64 * self.bag_fraction).round() as usize).max(1);
        self.models.clear();
        for b in 0..self.n_bags {
            let sample: Vec<usize> = (0..bag_size)
                .map(|_| rows[rng.gen_range(0..rows.len())])
                .collect();
            let mut model = build_base(self.base, self.seed ^ (b as u64) << 5);
            model.fit(data, &sample)?;
            self.models.push(model);
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for model in &self.models {
            for (a, p) in acc.iter_mut().zip(model.predict_proba(data, row)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in acc.iter_mut() {
                *a /= total;
            }
        }
        acc
    }
}

pub struct BaggingSpec;

impl AlgorithmSpec for BaggingSpec {
    fn name(&self) -> &'static str {
        "Bagging"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("n_bags", Domain::int(5, 60))
            .add("bag_fraction", Domain::float(0.3, 1.0))
            .add("base", Domain::cat(&BASE_LEARNERS))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("n_bags", ParamValue::Int(10))
            .with("bag_fraction", ParamValue::Float(1.0))
            .with("base", ParamValue::Cat(1))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(Bagging {
            n_bags: config.int_or("n_bags", 10).max(1) as usize,
            bag_fraction: config.float_or("bag_fraction", 1.0).clamp(0.05, 1.0),
            base: config.cat_or("base", 1),
            seed,
            models: Vec::new(),
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// ----------------------------------------------------------------- LogitBoost

/// Multiclass LogitBoost (Friedman et al.) with weighted regression stumps
/// on the dense encoding.
struct LogitBoost {
    iterations: usize,
    shrinkage: f64,
    fit: Option<DenseFit>,
    /// Per iteration, per class: a regression stump.
    stumps: Vec<Vec<RegStump>>,
}

#[derive(Debug, Clone)]
struct RegStump {
    feature: usize,
    threshold: f64,
    left: f64,
    right: f64,
}

impl RegStump {
    fn predict(&self, x: &[f64]) -> f64 {
        if x[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }

    /// Weighted least-squares stump on `(xs, z)` with weights `w`.
    fn fit(xs: &[Vec<f64>], z: &[f64], w: &[f64]) -> RegStump {
        let dim = xs[0].len();
        let mut best: Option<(f64, RegStump)> = None;
        for feature in 0..dim {
            let mut order: Vec<usize> = (0..xs.len()).collect();
            order.sort_by(|&a, &b| xs[a][feature].total_cmp(&xs[b][feature]));
            // Prefix sums of w and w·z.
            let (mut wl, mut wzl) = (0.0, 0.0);
            let wt: f64 = w.iter().sum();
            let wzt: f64 = w.iter().zip(z).map(|(a, b)| a * b).sum();
            for i in 0..order.len() - 1 {
                let idx = order[i];
                wl += w[idx];
                wzl += w[idx] * z[idx];
                let (x0, x1) = (xs[order[i]][feature], xs[order[i + 1]][feature]);
                if x0 == x1 || wl <= 0.0 || wt - wl <= 0.0 {
                    continue;
                }
                let left = wzl / wl;
                let right = (wzt - wzl) / (wt - wl);
                // Weighted SSE decrease ∝ wl·left² + wr·right² (maximize).
                let score = wl * left * left + (wt - wl) * right * right;
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((
                        score,
                        RegStump {
                            feature,
                            threshold: (x0 + x1) / 2.0,
                            left,
                            right,
                        },
                    ));
                }
            }
        }
        best.map(|(_, s)| s).unwrap_or(RegStump {
            feature: 0,
            threshold: 0.0,
            left: 0.0,
            right: 0.0,
        })
    }
}

impl LogitBoost {
    fn scores(&self, x: &[f64], k: usize) -> Vec<f64> {
        let mut f = vec![0.0; k];
        for round in &self.stumps {
            for (fc, stump) in f.iter_mut().zip(round) {
                *fc += self.shrinkage * stump.predict(x);
            }
        }
        f
    }
}

impl Classifier for LogitBoost {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dense = DenseFit::fit(data, rows);
        let n = dense.xs.len();
        let k = dense.n_classes;
        let mut f = vec![vec![0.0f64; k]; n];
        self.stumps.clear();
        for _ in 0..self.iterations {
            // Current probabilities.
            let probs: Vec<Vec<f64>> = f
                .iter()
                .map(|fi| {
                    let max = fi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let exps: Vec<f64> = fi.iter().map(|v| (v - max).exp()).collect();
                    let s: f64 = exps.iter().sum();
                    exps.into_iter().map(|e| e / s).collect()
                })
                .collect();
            let mut round = Vec::with_capacity(k);
            for class in 0..k {
                let mut z = vec![0.0; n];
                let mut w = vec![0.0; n];
                for i in 0..n {
                    let y = if dense.labels[i] == class { 1.0 } else { 0.0 };
                    let p = probs[i][class].clamp(1e-6, 1.0 - 1e-6);
                    w[i] = p * (1.0 - p);
                    z[i] = (y - p) / w[i];
                    // Standard z clipping for stability.
                    z[i] = z[i].clamp(-4.0, 4.0);
                }
                let stump = RegStump::fit(&dense.xs, &z, &w);
                for (fi, x) in f.iter_mut().zip(&dense.xs) {
                    fi[class] += self.shrinkage * stump.predict(x);
                }
                round.push(stump);
            }
            self.stumps.push(round);
        }
        self.fit = Some(dense);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let dense = self.fit.as_ref().expect("predict before fit");
        let x = dense.encode(data, row);
        let f = self.scores(&x, dense.n_classes);
        let max = f.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = f.iter().map(|v| (v - max).exp()).collect();
        let s: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / s).collect()
    }
}

pub struct LogitBoostSpec;

impl AlgorithmSpec for LogitBoostSpec {
    fn name(&self) -> &'static str {
        "LogitBoost"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("iterations", Domain::int(5, 100))
            .add("shrinkage", Domain::float(0.1, 1.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("iterations", ParamValue::Int(30))
            .with("shrinkage", ParamValue::Float(0.5))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(LogitBoost {
            iterations: config.int_or("iterations", 30).max(1) as usize,
            shrinkage: config.float_or("shrinkage", 0.5).clamp(0.01, 1.0),
            fit: None,
            stumps: Vec::new(),
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// ------------------------------------------------- subspace-style ensembles

/// Ensemble over random attribute subsets, optionally bootstrapped
/// (RandomSubSpace: no bootstrap; RotationForest-simplified: bootstrap).
struct SubspaceEnsemble {
    n_members: usize,
    subset_fraction: f64,
    bootstrap: bool,
    seed: u64,
    models: Vec<crate::tree::DecisionTree>,
    n_classes: usize,
}

impl Classifier for SubspaceEnsemble {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_attrs = data.n_attrs().max(1);
        let subset_size =
            ((n_attrs as f64 * self.subset_fraction).round() as usize).clamp(1, n_attrs);
        self.models.clear();
        for m in 0..self.n_members {
            use rand::seq::SliceRandom;
            let mut attrs: Vec<usize> = (0..n_attrs).collect();
            attrs.shuffle(&mut rng);
            attrs.truncate(subset_size);
            let sample: Vec<usize> = if self.bootstrap {
                (0..rows.len())
                    .map(|_| rows[rng.gen_range(0..rows.len())])
                    .collect()
            } else {
                rows.to_vec()
            };
            let mut tree = crate::tree::DecisionTree::new(crate::tree::TreeParams {
                criterion: crate::tree::Criterion::InfoGain,
                allowed_attrs: Some(attrs),
                seed: self.seed ^ (m as u64) << 6,
                ..crate::tree::TreeParams::default()
            });
            tree.fit(data, &sample)?;
            self.models.push(tree);
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for model in &self.models {
            for (a, p) in acc.iter_mut().zip(model.predict_proba(data, row)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in acc.iter_mut() {
                *a /= total;
            }
        }
        acc
    }
}

pub struct RandomSubSpaceSpec;

impl AlgorithmSpec for RandomSubSpaceSpec {
    fn name(&self) -> &'static str {
        "RandomSubSpace"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("n_members", Domain::int(5, 50))
            .add("subset_fraction", Domain::float(0.2, 0.9))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("n_members", ParamValue::Int(10))
            .with("subset_fraction", ParamValue::Float(0.5))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(SubspaceEnsemble {
            n_members: config.int_or("n_members", 10).max(1) as usize,
            subset_fraction: config.float_or("subset_fraction", 0.5).clamp(0.05, 1.0),
            bootstrap: false,
            seed,
            models: Vec::new(),
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

pub struct RotationForestSpec;

impl AlgorithmSpec for RotationForestSpec {
    fn name(&self) -> &'static str {
        "RotationForest"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("n_members", Domain::int(5, 50))
            .add("subset_fraction", Domain::float(0.3, 1.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("n_members", ParamValue::Int(10))
            .with("subset_fraction", ParamValue::Float(0.75))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(SubspaceEnsemble {
            n_members: config.int_or("n_members", 10).max(1) as usize,
            subset_fraction: config.float_or("subset_fraction", 0.75).clamp(0.05, 1.0),
            bootstrap: true,
            seed: seed ^ 0xA07A,
            models: Vec::new(),
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// ------------------------------------------------------------ RandomCommittee

struct RandomCommittee {
    n_members: usize,
    seed: u64,
    models: Vec<Box<dyn Classifier>>,
    n_classes: usize,
}

impl Classifier for RandomCommittee {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        self.models.clear();
        let spec = super::trees::RandomTreeSpec;
        let config = spec.default_config();
        for m in 0..self.n_members {
            let mut model = spec.build(&config, self.seed ^ (m as u64).wrapping_mul(0x5851));
            model.fit(data, rows)?;
            self.models.push(model);
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for model in &self.models {
            for (a, p) in acc.iter_mut().zip(model.predict_proba(data, row)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in acc.iter_mut() {
                *a /= total;
            }
        }
        acc
    }
}

pub struct RandomCommitteeSpec;

impl AlgorithmSpec for RandomCommitteeSpec {
    fn name(&self) -> &'static str {
        "RandomCommittee"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("n_members", Domain::int(5, 50))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("n_members", ParamValue::Int(10))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(RandomCommittee {
            n_members: config.int_or("n_members", 10).max(1) as usize,
            seed,
            models: Vec::new(),
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// ----------------------------------------------- ClassificationViaClustering

struct ClassificationViaClustering {
    k: usize,
    seed: u64,
    fit: Option<DenseFit>,
    centroids: Vec<Vec<f64>>,
    cluster_class: Vec<usize>,
}

impl Classifier for ClassificationViaClustering {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dense = DenseFit::fit(data, rows);
        let k = if self.k == 0 {
            data.n_classes()
        } else {
            self.k
        };
        self.centroids = kmeans(&dense.xs, k, 50, self.seed);
        let assignments = assign(&dense.xs, &self.centroids);
        let default = majority_class(data, rows);
        self.cluster_class = (0..self.centroids.len())
            .map(|c| {
                let members: Vec<usize> = assignments
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| a == c)
                    .map(|(i, _)| i)
                    .collect();
                if members.is_empty() {
                    default
                } else {
                    let mut counts = vec![0usize; dense.n_classes];
                    for &i in &members {
                        counts[dense.labels[i]] += 1;
                    }
                    counts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &n)| n)
                        .map(|(i, _)| i)
                        .unwrap_or(default)
                }
            })
            .collect();
        self.fit = Some(dense);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        let dense = self.fit.as_ref().expect("predict before fit");
        let x = dense.encode(data, row);
        let cluster = assign(std::slice::from_ref(&x), &self.centroids)[0];
        self.cluster_class[cluster]
    }
}

pub struct ClassificationViaClusteringSpec;

impl AlgorithmSpec for ClassificationViaClusteringSpec {
    fn name(&self) -> &'static str {
        "ClassificationViaClustering"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("k", Domain::int(0, 32)) // 0 = one cluster per class
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("k", ParamValue::Int(0))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(ClassificationViaClustering {
            k: config.int_or("k", 0).max(0) as usize,
            seed,
            fit: None,
            centroids: Vec::new(),
            cluster_class: Vec::new(),
        })
    }
}

// ------------------------------------------------------------------ StackingC

/// Stacking with class-probability meta-features: level-0 = NaiveBayes +
/// IBk + REPTree (out-of-fold predictions), level-1 = logistic regression.
struct StackingC {
    folds: usize,
    seed: u64,
    level0: Vec<Box<dyn Classifier>>,
    level1: Option<automodel_nn::MlpClassifier>,
    n_classes: usize,
}

impl StackingC {
    fn level0_specs() -> Vec<Box<dyn AlgorithmSpec>> {
        vec![
            Box::new(super::bayes::NaiveBayesSpec),
            Box::new(super::lazy::IBkSpec),
            Box::new(super::trees::RepTreeSpec),
        ]
    }

    fn meta_features(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.level0.len() * self.n_classes);
        for model in &self.level0 {
            out.extend(model.predict_proba(data, row));
        }
        out
    }
}

impl Classifier for StackingC {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.len() < 2 * self.folds {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        let specs = Self::level0_specs();
        // Out-of-fold meta features.
        let sub = data.subset(rows)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let plan = automodel_data::stratified_kfold(&sub, self.folds, &mut rng)?;
        let mut meta_xs: Vec<Vec<f64>> = vec![Vec::new(); rows.len()];
        let mut meta_labels: Vec<usize> = vec![0; rows.len()];
        for (train, test) in plan.splits() {
            let mut fold_models = Vec::new();
            for spec in &specs {
                let mut m = spec.build(&spec.default_config(), self.seed);
                m.fit(&sub, &train)?;
                fold_models.push(m);
            }
            for &r in test {
                let mut features = Vec::new();
                for m in &fold_models {
                    features.extend(m.predict_proba(&sub, r));
                }
                meta_xs[r] = features;
                meta_labels[r] = sub.label(r);
            }
        }
        // Level-1 logistic on meta features.
        let mut logistic = automodel_nn::MlpClassifier::new(automodel_nn::MlpConfig {
            hidden_layers: 0,
            solver: automodel_nn::Solver::Lbfgs,
            max_iter: 120,
            validation_fraction: 0.0,
            seed: self.seed,
            ..automodel_nn::MlpConfig::default()
        });
        let report = logistic.fit(&meta_xs, &meta_labels, self.n_classes);
        if report.diverged {
            return Err(MlError::TrainingFailed(format!(
                "stacking level-1 training diverged after {} epochs",
                report.epochs
            )));
        }
        self.level1 = Some(logistic);
        // Refit level-0 on everything for prediction time.
        self.level0 = specs
            .iter()
            .map(|spec| {
                let mut m = spec.build(&spec.default_config(), self.seed);
                m.fit(data, rows).map(|_| m)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let features = self.meta_features(data, row);
        self.level1
            .as_ref()
            .expect("predict before fit")
            .predict_proba(&features)
    }
}

pub struct StackingCSpec;

impl AlgorithmSpec for StackingCSpec {
    fn name(&self) -> &'static str {
        "StackingC"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("folds", Domain::int(2, 10))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("folds", ParamValue::Int(3))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(StackingC {
            folds: config.int_or("folds", 3).clamp(2, 10) as usize,
            seed,
            level0: Vec::new(),
            level1: None,
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::{SynthFamily, SynthSpec};

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 5), d, 4, 1).unwrap()
    }

    fn noisy_linear() -> Dataset {
        SynthSpec::new("n", 300, 5, 0, 2, SynthFamily::Hyperplane, 51)
            .with_label_noise(0.1)
            .generate()
    }

    #[test]
    fn adaboost_boosts_stumps_past_a_single_stump() {
        // Oblique boundary: one stump is weak (axis-aligned), boosting many
        // stumps approximates the diagonal. (XOR would be the wrong test —
        // boosted stumps form an *additive* model and cannot represent it.)
        let d = SynthSpec::new("h", 300, 3, 0, 2, SynthFamily::Hyperplane, 53).generate();
        let boosted = cv(&AdaBoostM1Spec, &d);
        let stump = cv(&super::super::trees::DecisionStumpSpec, &d);
        assert!(boosted > stump + 0.02, "boosted {boosted} vs stump {stump}");
    }

    #[test]
    fn bagging_works_on_noisy_data() {
        assert!(cv(&BaggingSpec, &noisy_linear()) > 0.75);
    }

    #[test]
    fn logitboost_learns_oblique_boundaries() {
        let d = SynthSpec::new("h", 300, 3, 0, 2, SynthFamily::Hyperplane, 55).generate();
        let acc = cv(&LogitBoostSpec, &d);
        assert!(acc > 0.85, "LogitBoost accuracy = {acc}");
    }

    #[test]
    fn subspace_ensembles_work() {
        let d = noisy_linear();
        assert!(cv(&RandomSubSpaceSpec, &d) > 0.7, "RandomSubSpace");
        assert!(cv(&RotationForestSpec, &d) > 0.7, "RotationForest");
        assert!(cv(&RandomCommitteeSpec, &d) > 0.7, "RandomCommittee");
    }

    #[test]
    fn clustering_classifier_recovers_blobs() {
        let d = SynthSpec::new(
            "b",
            240,
            3,
            0,
            3,
            SynthFamily::GaussianBlobs { spread: 0.5 },
            57,
        )
        .generate();
        let acc = cv(&ClassificationViaClusteringSpec, &d);
        assert!(acc > 0.8, "accuracy = {acc}");
    }

    #[test]
    fn stacking_is_at_least_competitive_with_its_members() {
        let d = SynthSpec::new("m", 260, 4, 1, 2, SynthFamily::Mixed, 59).generate();
        let stack = cv(&StackingCSpec, &d);
        assert!(stack > 0.7, "stacking accuracy = {stack}");
    }

    #[test]
    fn adaboost_stops_cleanly_on_pure_noise() {
        let d = SynthSpec::new("n", 120, 2, 0, 2, SynthFamily::Hyperplane, 61)
            .with_label_noise(1.0)
            .generate();
        let spec = AdaBoostM1Spec;
        let c = spec.default_config();
        let mut m = spec.build(&c, 1);
        m.fit(&d, &(0..120).collect::<Vec<_>>()).unwrap();
        // Must still predict within range.
        let p = m.predict(&d, 0);
        assert!(p < 2);
    }
}

// --------------------------------------------- ClassificationViaRegression

/// One regression tree per class on one-vs-rest indicator targets; predict
/// by argmax of the per-class regressions (Weka's
/// `ClassificationViaRegression` with an M5-style base).
struct ClassificationViaRegression {
    max_depth: usize,
    min_leaf: usize,
    seed: u64,
    trees: Vec<crate::regression::RegressionTree>,
}

impl Classifier for ClassificationViaRegression {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.trees = (0..data.n_classes())
            .map(|class| {
                let mut tree =
                    crate::regression::RegressionTree::new(crate::regression::RegTreeParams {
                        max_depth: self.max_depth,
                        min_leaf: self.min_leaf,
                        min_split: 2 * self.min_leaf,
                        feature_subset: None,
                        seed: self.seed ^ class as u64,
                    });
                let target = |r: usize| if data.label(r) == class { 1.0 } else { 0.0 };
                tree.fit(data, rows, &target).map(|_| tree)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut scores: Vec<f64> = self
            .trees
            .iter()
            .map(|t| t.predict(data, row).clamp(0.0, 1.0))
            .collect();
        let total: f64 = scores.iter().sum();
        if total > 1e-12 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        } else if !scores.is_empty() {
            let k = scores.len() as f64;
            for s in scores.iter_mut() {
                *s = 1.0 / k;
            }
        }
        scores
    }
}

pub struct ClassificationViaRegressionSpec;

impl AlgorithmSpec for ClassificationViaRegressionSpec {
    fn name(&self) -> &'static str {
        "ClassificationViaRegression"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("max_depth", Domain::int(2, 16))
            .add("min_leaf", Domain::int(1, 16))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("max_depth", ParamValue::Int(8))
            .with("min_leaf", ParamValue::Int(4))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(ClassificationViaRegression {
            max_depth: config.int_or("max_depth", 8).max(1) as usize,
            min_leaf: config.int_or("min_leaf", 4).max(1) as usize,
            seed,
            trees: Vec::new(),
        })
    }
}

// -------------------------------------------------------------- MultiBoostAB

/// MultiBoostAB (Webb 2000): AdaBoost inside "wagging" sub-committees —
/// boosting weights reset at committee boundaries, combining boosting's
/// bias reduction with bagging-style variance reduction.
struct MultiBoostAB {
    iterations: usize,
    committees: usize,
    base: usize,
    seed: u64,
    models: Vec<(Box<dyn Classifier>, f64)>,
    n_classes: usize,
}

impl Classifier for MultiBoostAB {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        let n = rows.len();
        let per_committee = (self.iterations / self.committees.max(1)).max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.models.clear();
        for committee in 0..self.committees.max(1) {
            // Wagging restart: fresh near-uniform weights with exponential
            // jitter.
            let mut weights: Vec<f64> = (0..n)
                .map(|_| -(rng.gen_range(f64::EPSILON..1.0f64)).ln())
                .collect();
            let total: f64 = weights.iter().sum();
            for w in weights.iter_mut() {
                *w /= total;
            }
            for it in 0..per_committee {
                let sample = weighted_resample(rows, &weights, &mut rng);
                let mut model =
                    build_base(self.base, self.seed ^ ((committee * 131 + it) as u64) << 3);
                model.fit(data, &sample)?;
                let mut err = 0.0;
                let misclassified: Vec<bool> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| {
                        let wrong = model.predict(data, r) != data.label(r);
                        if wrong {
                            err += weights[i];
                        }
                        wrong
                    })
                    .collect();
                if err >= 0.5 {
                    break; // restart with the next committee
                }
                let err_clamped = err.max(1e-10);
                let beta = err_clamped / (1.0 - err_clamped);
                let alpha = (1.0 / beta).ln();
                for (w, &wrong) in weights.iter_mut().zip(&misclassified) {
                    if !wrong {
                        *w *= beta;
                    }
                }
                let total: f64 = weights.iter().sum();
                for w in weights.iter_mut() {
                    *w /= total;
                }
                self.models.push((model, alpha));
                if err <= 1e-10 {
                    break;
                }
            }
        }
        if self.models.is_empty() {
            // Degenerate (base never beat chance): keep one plain model.
            let mut model = build_base(self.base, self.seed);
            model.fit(data, rows)?;
            self.models.push((model, 1.0));
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut votes = vec![0.0; self.n_classes];
        for (model, alpha) in &self.models {
            votes[model.predict(data, row)] += alpha;
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in votes.iter_mut() {
                *v /= total;
            }
        }
        votes
    }
}

pub struct MultiBoostABSpec;

impl AlgorithmSpec for MultiBoostABSpec {
    fn name(&self) -> &'static str {
        "MultiBoostAB"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("iterations", Domain::int(6, 80))
            .add("committees", Domain::int(2, 10))
            .add("base", Domain::cat(&BASE_LEARNERS))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("iterations", ParamValue::Int(20))
            .with("committees", ParamValue::Int(4))
            .with("base", ParamValue::Cat(0))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        Box::new(MultiBoostAB {
            iterations: config.int_or("iterations", 20).max(2) as usize,
            committees: config.int_or("committees", 4).max(1) as usize,
            base: config.cat_or("base", 0),
            seed,
            models: Vec::new(),
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

// ------------------------------------------------------------------ Decorate

/// Decorate (Melville & Mooney 2003): grow an ensemble by training each new
/// member on the data plus *artificial* examples labeled contrary to the
/// current ensemble, keeping the member only if ensemble training error
/// does not increase.
struct Decorate {
    n_members: usize,
    artificial_fraction: f64,
    max_attempts: usize,
    seed: u64,
    models: Vec<Box<dyn Classifier>>,
    n_classes: usize,
}

impl Decorate {
    fn ensemble_proba(
        models: &[Box<dyn Classifier>],
        data: &Dataset,
        row: usize,
        k: usize,
    ) -> Vec<f64> {
        let mut acc = vec![0.0; k];
        for m in models {
            for (a, p) in acc.iter_mut().zip(m.predict_proba(data, row)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in acc.iter_mut() {
                *a /= total;
            }
        }
        acc
    }

    fn ensemble_error(
        models: &[Box<dyn Classifier>],
        data: &Dataset,
        rows: &[usize],
        k: usize,
    ) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let wrong = rows
            .iter()
            .filter(|&&r| argmax(&Self::ensemble_proba(models, data, r, k)) != data.label(r))
            .count();
        wrong as f64 / rows.len() as f64
    }

    /// Artificial dataset: bootstrap attribute values per column (sampling
    /// each cell independently destroys attribute correlations — the
    /// "hard diversity" data of the Decorate paper), labeled inversely to
    /// the current ensemble's prediction confidence.
    fn artificial_rows(
        data: &Dataset,
        rows: &[usize],
        count: usize,
        models: &[Box<dyn Classifier>],
        k: usize,
        rng: &mut StdRng,
    ) -> (Dataset, Vec<usize>) {
        use automodel_data::Column;
        let mut builder = automodel_data::Dataset::builder("decorate-art");
        for col in data.columns() {
            match col {
                Column::Numeric { name, .. } => {
                    let values: Vec<f64> = (0..count)
                        .map(|_| {
                            let r = rows[rng.gen_range(0..rows.len())];
                            col.numeric_at(r).unwrap_or(f64::NAN)
                        })
                        .collect();
                    builder = builder.numeric(name.clone(), values);
                }
                Column::Categorical {
                    name, categories, ..
                } => {
                    let values: Vec<u32> = (0..count)
                        .map(|_| {
                            let r = rows[rng.gen_range(0..rows.len())];
                            col.category_at(r)
                                .unwrap_or(automodel_data::dataset::MISSING_CATEGORY)
                        })
                        .collect();
                    builder = builder.categorical(name.clone(), values, categories.clone());
                }
            }
        }
        // Temporary labels: filled after the dataset exists (we need the
        // ensemble's prediction on the artificial rows).
        let tmp = builder
            .target(
                data.target().name.clone(),
                vec![0; count],
                data.target().classes.clone(),
            )
            .expect("artificial dataset construction");
        let labels: Vec<usize> = (0..count)
            .map(|r| {
                let p = Self::ensemble_proba(models, &tmp, r, k);
                // Sample inversely proportional to the ensemble's belief.
                let inv: Vec<f64> = p.iter().map(|&v| 1.0 / (v + 1e-3)).collect();
                let total: f64 = inv.iter().sum();
                let mut u = rng.gen::<f64>() * total;
                let mut label = k - 1;
                for (c, &w) in inv.iter().enumerate() {
                    if u < w {
                        label = c;
                        break;
                    }
                    u -= w;
                }
                label
            })
            .collect();
        // Rebuild with the adversarial labels.
        let mut builder = automodel_data::Dataset::builder("decorate-art");
        for col in tmp.columns() {
            match col {
                Column::Numeric { name, values } => {
                    builder = builder.numeric(name.clone(), values.clone());
                }
                Column::Categorical {
                    name,
                    values,
                    categories,
                } => {
                    builder = builder.categorical(name.clone(), values.clone(), categories.clone());
                }
            }
        }
        let art = builder
            .target(
                data.target().name.clone(),
                labels,
                data.target().classes.clone(),
            )
            .expect("artificial dataset construction");
        let art_rows = (0..count).collect();
        (art, art_rows)
    }
}

impl Classifier for Decorate {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        let k = self.n_classes;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // First member trains on the real data alone.
        let mut first = build_base(2, self.seed); // J48 — Decorate's default base
        first.fit(data, rows)?;
        self.models = vec![first];
        let mut error = Self::ensemble_error(&self.models, data, rows, k);

        let n_art = ((rows.len() as f64 * self.artificial_fraction).round() as usize).max(4);
        let mut attempts = 0usize;
        while self.models.len() < self.n_members && attempts < self.max_attempts {
            attempts += 1;
            let (art, art_rows) =
                Self::artificial_rows(data, rows, n_art, &self.models, k, &mut rng);
            // Train the candidate on real + artificial rows. Classifiers fit
            // one dataset at a time, so train on the concatenation via a
            // merged dataset: append artificial rows to a copy of the data.
            let merged = concat_datasets(data, rows, &art, &art_rows)?;
            let merged_rows: Vec<usize> = (0..merged.n_rows()).collect();
            let mut candidate = build_base(2, self.seed ^ (attempts as u64) << 5);
            candidate.fit(&merged, &merged_rows)?;
            self.models.push(candidate);
            let new_error = Self::ensemble_error(&self.models, data, rows, k);
            if new_error <= error {
                error = new_error;
            } else {
                self.models.pop();
            }
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        Self::ensemble_proba(&self.models, data, row, self.n_classes)
    }
}

/// Concatenate selected rows of two schema-identical datasets.
fn concat_datasets(
    a: &Dataset,
    a_rows: &[usize],
    b: &Dataset,
    b_rows: &[usize],
) -> Result<Dataset, MlError> {
    use automodel_data::Column;
    let mut builder = automodel_data::Dataset::builder("concat");
    for (ca, cb) in a.columns().iter().zip(b.columns()) {
        match (ca, cb) {
            (Column::Numeric { name, values: va }, Column::Numeric { values: vb, .. }) => {
                let mut values: Vec<f64> = a_rows.iter().map(|&r| va[r]).collect();
                values.extend(b_rows.iter().map(|&r| vb[r]));
                builder = builder.numeric(name.clone(), values);
            }
            (
                Column::Categorical {
                    name,
                    values: va,
                    categories,
                },
                Column::Categorical { values: vb, .. },
            ) => {
                let mut values: Vec<u32> = a_rows.iter().map(|&r| va[r]).collect();
                values.extend(b_rows.iter().map(|&r| vb[r]));
                builder = builder.categorical(name.clone(), values, categories.clone());
            }
            _ => {
                return Err(MlError::TrainingFailed(
                    "schema mismatch while concatenating datasets".into(),
                ))
            }
        }
    }
    let mut labels: Vec<usize> = a_rows.iter().map(|&r| a.label(r)).collect();
    labels.extend(b_rows.iter().map(|&r| b.label(r)));
    builder
        .target(a.target().name.clone(), labels, a.target().classes.clone())
        .map_err(MlError::Data)
}

pub struct DecorateSpec;

impl AlgorithmSpec for DecorateSpec {
    fn name(&self) -> &'static str {
        "Decorate"
    }
    fn family(&self) -> Family {
        Family::Meta
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("n_members", Domain::int(3, 20))
            .add("artificial_fraction", Domain::float(0.2, 1.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("n_members", ParamValue::Int(8))
            .with("artificial_fraction", ParamValue::Float(0.5))
    }
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier> {
        let n_members = config.int_or("n_members", 8).max(1) as usize;
        Box::new(Decorate {
            n_members,
            artificial_fraction: config.float_or("artificial_fraction", 0.5).clamp(0.05, 2.0),
            max_attempts: n_members * 3,
            seed,
            models: Vec::new(),
            n_classes: 0,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod extra_meta_tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::{SynthFamily, SynthSpec};

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 5), d, 4, 1).unwrap()
    }

    #[test]
    fn classification_via_regression_learns_blobs() {
        let d = SynthSpec::new(
            "b",
            240,
            4,
            1,
            3,
            SynthFamily::GaussianBlobs { spread: 0.8 },
            63,
        )
        .generate();
        let acc = cv(&ClassificationViaRegressionSpec, &d);
        assert!(acc > 0.8, "accuracy = {acc}");
    }

    #[test]
    fn multiboost_beats_a_single_stump() {
        let d = SynthSpec::new("h", 300, 3, 0, 2, SynthFamily::Hyperplane, 65).generate();
        let boosted = cv(&MultiBoostABSpec, &d);
        let stump = cv(&super::super::trees::DecisionStumpSpec, &d);
        assert!(boosted > stump, "boosted {boosted} vs stump {stump}");
    }

    #[test]
    fn decorate_works_on_mixed_data() {
        let d = SynthSpec::new("m", 200, 3, 2, 2, SynthFamily::Mixed, 67).generate();
        let acc = cv(&DecorateSpec, &d);
        assert!(acc > 0.7, "accuracy = {acc}");
    }

    #[test]
    fn decorate_ensemble_members_are_bounded() {
        let d = SynthSpec::new("m", 120, 3, 1, 2, SynthFamily::Mixed, 69).generate();
        let spec = DecorateSpec;
        let c = spec.default_config();
        let mut m = spec.build(&c, 1);
        m.fit(&d, &(0..100).collect::<Vec<_>>()).unwrap();
        let p = m.predict_proba(&d, 110);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cvr_probabilities_are_distributions() {
        let d = SynthSpec::new("p", 150, 3, 1, 3, SynthFamily::Mixed, 71).generate();
        let spec = ClassificationViaRegressionSpec;
        let c = spec.default_config();
        let mut m = spec.build(&c, 0);
        m.fit(&d, &(0..120).collect::<Vec<_>>()).unwrap();
        let p = m.predict_proba(&d, 130);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
