//! `weka.classifiers.lazy`: IBk, IB1, KStar, LWL.
//!
//! All four defer work to prediction time over the standardized dense
//! encoding. KStar uses an exponential-kernel similarity in place of Cleary
//! & Trigg's full entropic transformation distance (the behaviourally
//! relevant property — smooth distance-weighted voting with a tunable blend
//! — is preserved); LWL trains a local naive-Bayes model on the query's
//! neighborhood, matching Weka's "locally weighted learning with a simple
//! base learner".

use super::dense::{k_nearest, DenseFit};
use crate::classifier::Classifier;
use crate::error::MlError;
use crate::registry::{AlgorithmSpec, Family};
use automodel_data::Dataset;
use automodel_hpo::{Config, Domain, ParamValue, SearchSpace};

/// Shared k-NN engine.
struct Knn {
    k: usize,
    /// 0 = equal votes, 1 = inverse-distance, 2 = 1 − distance (Weka's -I/-F).
    weighting: usize,
    fit: Option<DenseFit>,
}

impl Knn {
    fn vote(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let fit = self.fit.as_ref().expect("predict before fit");
        let query = fit.encode(data, row);
        let neighbors = k_nearest(&fit.xs, &query, self.k);
        let mut votes = vec![0.0; fit.n_classes];
        for (i, d2) in neighbors {
            let w = match self.weighting {
                1 => 1.0 / (1.0 + d2.sqrt()),
                2 => (1.0 - d2.sqrt()).max(1e-6),
                _ => 1.0,
            };
            votes[fit.labels[i]] += w;
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in &mut votes {
                *v /= total;
            }
        }
        votes
    }
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.fit = Some(DenseFit::fit(data, rows));
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.vote(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        self.vote(data, row)
    }
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// `IBk`: k-nearest neighbours with optional distance weighting.
pub struct IBkSpec;

impl AlgorithmSpec for IBkSpec {
    fn name(&self) -> &'static str {
        "IBk"
    }
    fn family(&self) -> Family {
        Family::Lazy
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("k", Domain::int(1, 32))
            .add("weighting", Domain::cat(&["none", "inverse", "similarity"]))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("k", ParamValue::Int(1))
            .with("weighting", ParamValue::Cat(0))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(Knn {
            k: config.int_or("k", 1).max(1) as usize,
            weighting: config.cat_or("weighting", 0),
            fit: None,
        })
    }
}

/// `IB1`: the classic single-nearest-neighbour special case.
pub struct IB1Spec;

impl AlgorithmSpec for IB1Spec {
    fn name(&self) -> &'static str {
        "IB1"
    }
    fn family(&self) -> Family {
        Family::Lazy
    }
    fn param_space(&self) -> SearchSpace {
        // IB1 has no hyperparameters in Weka.
        SearchSpace::builder().build().expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
    }
    fn build(&self, _config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(Knn {
            k: 1,
            weighting: 0,
            fit: None,
        })
    }
}

/// `KStar`: similarity-weighted voting over *all* training points with an
/// exponential kernel; `blend` interpolates the kernel bandwidth between the
/// nearest-neighbour distance and the dataset diameter (standing in for
/// K*'s global blend parameter).
struct KStar {
    blend: f64,
    fit: Option<DenseFit>,
}

impl Classifier for KStar {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.fit = Some(DenseFit::fit(data, rows));
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let fit = self.fit.as_ref().expect("predict before fit");
        let query = fit.encode(data, row);
        let dists: Vec<f64> = fit
            .xs
            .iter()
            .map(|x| super::dense::sq_dist(x, &query).sqrt())
            .collect();
        let d_min = dists.iter().copied().fold(f64::INFINITY, f64::min);
        let d_max = dists.iter().copied().fold(0.0f64, f64::max);
        let bandwidth = (d_min + self.blend * (d_max - d_min)).max(1e-6);
        let mut votes = vec![0.0; fit.n_classes];
        for (d, &l) in dists.iter().zip(&fit.labels) {
            votes[l] += (-d / bandwidth).exp();
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in &mut votes {
                *v /= total;
            }
        }
        votes
    }
}

pub struct KStarSpec;

impl AlgorithmSpec for KStarSpec {
    fn name(&self) -> &'static str {
        "KStar"
    }
    fn family(&self) -> Family {
        Family::Lazy
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("blend", Domain::float(0.01, 1.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("blend", ParamValue::Float(0.2))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(KStar {
            blend: config.float_or("blend", 0.2).clamp(0.01, 1.0),
            fit: None,
        })
    }
}

/// `LWL`: locally weighted learning — fit a distance-weighted naive-Bayes
/// model on the `k` training points nearest to each query.
struct Lwl {
    k: usize,
    fit: Option<DenseFit>,
}

impl Classifier for Lwl {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.fit = Some(DenseFit::fit(data, rows));
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let fit = self.fit.as_ref().expect("predict before fit");
        let query = fit.encode(data, row);
        let neighbors = k_nearest(&fit.xs, &query, self.k.min(fit.xs.len()));
        // Linear kernel weights over the neighborhood radius.
        let radius = neighbors
            .last()
            .map(|&(_, d)| d.sqrt())
            .unwrap_or(1.0)
            .max(1e-9);
        let dim = fit.xs[0].len();
        let k = fit.n_classes;
        // Weighted Gaussian naive Bayes over the encoded features.
        let mut class_w = vec![1e-12; k];
        let mut mean = vec![vec![0.0; dim]; k];
        for &(i, d2) in &neighbors {
            let w = (1.0 - d2.sqrt() / radius).max(0.05);
            class_w[fit.labels[i]] += w;
            for (m, x) in mean[fit.labels[i]].iter_mut().zip(&fit.xs[i]) {
                *m += w * x;
            }
        }
        for c in 0..k {
            for m in mean[c].iter_mut() {
                *m /= class_w[c];
            }
        }
        let mut var = vec![vec![1e-6; dim]; k];
        for &(i, d2) in &neighbors {
            let w = (1.0 - d2.sqrt() / radius).max(0.05);
            let c = fit.labels[i];
            for j in 0..dim {
                let d = fit.xs[i][j] - mean[c][j];
                var[c][j] += w * d * d;
            }
        }
        for c in 0..k {
            for v in var[c].iter_mut() {
                *v = (*v / class_w[c]).max(0.05);
            }
        }
        let total_w: f64 = class_w.iter().sum();
        let mut log_post: Vec<f64> = (0..k)
            .map(|c| {
                // A class absent from the neighborhood has meaningless
                // Gaussian statistics — rule it out instead of letting its
                // zero-mean density dominate near the origin.
                if class_w[c] < 0.05 {
                    return f64::NEG_INFINITY;
                }
                let mut lp = (class_w[c] / total_w).ln();
                for j in 0..dim {
                    let d = query[j] - mean[c][j];
                    lp += -0.5 * (d * d / var[c][j] + var[c][j].ln());
                }
                lp
            })
            .collect();
        let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for lp in log_post.iter_mut() {
            *lp = (*lp - max).exp();
            sum += *lp;
        }
        for lp in log_post.iter_mut() {
            *lp /= sum;
        }
        log_post
    }
}

pub struct LwlSpec;

impl AlgorithmSpec for LwlSpec {
    fn name(&self) -> &'static str {
        "LWL"
    }
    fn family(&self) -> Family {
        Family::Lazy
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("k", Domain::int(5, 100))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("k", ParamValue::Int(50))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(Lwl {
            k: config.int_or("k", 50).max(2) as usize,
            fit: None,
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::{SynthFamily, SynthSpec};

    fn blobs() -> Dataset {
        SynthSpec::new(
            "b",
            200,
            4,
            1,
            3,
            SynthFamily::GaussianBlobs { spread: 0.6 },
            3,
        )
        .generate()
    }

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 0), d, 5, 1).unwrap()
    }

    #[test]
    fn ibk_classifies_blobs() {
        assert!(cv(&IBkSpec, &blobs()) > 0.85);
    }

    #[test]
    fn ib1_classifies_blobs() {
        assert!(cv(&IB1Spec, &blobs()) > 0.85);
    }

    #[test]
    fn kstar_classifies_blobs() {
        assert!(cv(&KStarSpec, &blobs()) > 0.8);
    }

    #[test]
    fn lwl_classifies_blobs() {
        assert!(cv(&LwlSpec, &blobs()) > 0.8);
    }

    #[test]
    fn ibk_k_matters_on_noisy_data() {
        let d = SynthSpec::new(
            "n",
            300,
            3,
            0,
            2,
            SynthFamily::GaussianBlobs { spread: 1.6 },
            5,
        )
        .with_label_noise(0.2)
        .generate();
        let k1 = {
            let c = Config::new()
                .with("k", ParamValue::Int(1))
                .with("weighting", ParamValue::Cat(0));
            cross_val_accuracy(|| IBkSpec.build(&c, 0), &d, 5, 2).unwrap()
        };
        let k15 = {
            let c = Config::new()
                .with("k", ParamValue::Int(15))
                .with("weighting", ParamValue::Cat(0));
            cross_val_accuracy(|| IBkSpec.build(&c, 0), &d, 5, 2).unwrap()
        };
        assert!(k15 > k1, "k=15 ({k15}) should beat k=1 ({k1}) under noise");
    }

    #[test]
    fn knn_probabilities_sum_to_one() {
        let d = blobs();
        let spec = IBkSpec;
        let c = spec.default_config();
        let mut m = spec.build(&c, 0);
        m.fit(&d, &(0..150).collect::<Vec<_>>()).unwrap();
        let p = m.predict_proba(&d, 160);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
