//! The algorithm library, organized by Weka package family.

pub mod bayes;
pub mod dense;
pub mod functions;
pub mod lazy;
pub mod meta;
pub mod misc;
pub mod rules;
pub mod trees;

use crate::registry::Registry;
use std::sync::Arc;

/// Register the full mini-Weka pool (39 algorithms; see DESIGN.md §3 for the
/// mapping onto Table IV and the omissions).
pub fn register_all(r: &mut Registry) {
    // lazy
    r.register(Arc::new(lazy::IBkSpec));
    r.register(Arc::new(lazy::IB1Spec));
    r.register(Arc::new(lazy::KStarSpec));
    r.register(Arc::new(lazy::LwlSpec));
    // bayes
    r.register(Arc::new(bayes::NaiveBayesSpec));
    r.register(Arc::new(bayes::NaiveBayesMultinomialSpec));
    r.register(Arc::new(bayes::BayesNetSpec));
    r.register(Arc::new(bayes::AodeSpec));
    // trees
    r.register(Arc::new(trees::DecisionStumpSpec));
    r.register(Arc::new(trees::Id3Spec));
    r.register(Arc::new(trees::J48Spec));
    r.register(Arc::new(trees::RepTreeSpec));
    r.register(Arc::new(trees::RandomTreeSpec));
    r.register(Arc::new(trees::SimpleCartSpec));
    r.register(Arc::new(trees::NbTreeSpec));
    r.register(Arc::new(trees::LmtSpec));
    r.register(Arc::new(trees::RandomForestSpec));
    // rules
    r.register(Arc::new(rules::ZeroRSpec));
    r.register(Arc::new(rules::OneRSpec));
    r.register(Arc::new(rules::JRipSpec));
    r.register(Arc::new(rules::PartSpec));
    r.register(Arc::new(rules::RidorSpec));
    // functions
    r.register(Arc::new(functions::LogisticSpec));
    r.register(Arc::new(functions::SimpleLogisticSpec));
    r.register(Arc::new(functions::MultilayerPerceptronSpec));
    r.register(Arc::new(functions::SmoSpec));
    r.register(Arc::new(functions::LibSvmSpec));
    r.register(Arc::new(functions::RbfNetworkSpec));
    // misc
    r.register(Arc::new(misc::HyperPipesSpec));
    r.register(Arc::new(misc::VfiSpec));
    // meta
    r.register(Arc::new(meta::AdaBoostM1Spec));
    r.register(Arc::new(meta::BaggingSpec));
    r.register(Arc::new(meta::LogitBoostSpec));
    r.register(Arc::new(meta::RandomSubSpaceSpec));
    r.register(Arc::new(meta::RandomCommitteeSpec));
    r.register(Arc::new(meta::RotationForestSpec));
    r.register(Arc::new(meta::ClassificationViaClusteringSpec));
    r.register(Arc::new(meta::StackingCSpec));
    r.register(Arc::new(meta::ClassificationViaRegressionSpec));
    r.register(Arc::new(meta::MultiBoostABSpec));
    r.register(Arc::new(meta::DecorateSpec));
}

/// A small fast pool for tests and quick examples: one or two cheap
/// representatives per family.
pub fn register_fast(r: &mut Registry) {
    r.register(Arc::new(lazy::IBkSpec));
    r.register(Arc::new(bayes::NaiveBayesSpec));
    r.register(Arc::new(trees::J48Spec));
    r.register(Arc::new(trees::RepTreeSpec));
    r.register(Arc::new(rules::OneRSpec));
    r.register(Arc::new(functions::LogisticSpec));
    r.register(Arc::new(misc::HyperPipesSpec));
    r.register(Arc::new(meta::BaggingSpec));
}
