//! `weka.classifiers.misc`: HyperPipes, VFI.
//!
//! Both are interval-based voting learners: HyperPipes stores one
//! attribute-range "pipe" per class and scores membership; VFI (voting
//! feature intervals) histograms each attribute per class and lets every
//! attribute cast a normalized vote.

use super::dense::Discretizer;
use crate::classifier::Classifier;
use crate::error::MlError;
use crate::registry::{AlgorithmSpec, Family};
use automodel_data::{Column, Dataset};
use automodel_hpo::{Config, Domain, ParamValue, SearchSpace};

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

// ----------------------------------------------------------------- HyperPipes

enum PipeBound {
    Numeric { min: f64, max: f64 },
    Categorical { seen: Vec<bool> },
}

struct HyperPipes {
    /// Per class, per attribute.
    pipes: Vec<Vec<PipeBound>>,
    fitted: bool,
}

impl Classifier for HyperPipes {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let k = data.n_classes();
        self.pipes = (0..k)
            .map(|_| {
                data.columns()
                    .iter()
                    .map(|col| match col {
                        Column::Numeric { .. } => PipeBound::Numeric {
                            min: f64::INFINITY,
                            max: f64::NEG_INFINITY,
                        },
                        Column::Categorical { categories, .. } => PipeBound::Categorical {
                            seen: vec![false; categories.len()],
                        },
                    })
                    .collect()
            })
            .collect();
        for &r in rows {
            let c = data.label(r);
            for (attr, col) in data.columns().iter().enumerate() {
                match (&mut self.pipes[c][attr], col) {
                    (PipeBound::Numeric { min, max }, Column::Numeric { .. }) => {
                        if let Some(v) = col.numeric_at(r) {
                            if !v.is_nan() {
                                *min = min.min(v);
                                *max = max.max(v);
                            }
                        }
                    }
                    (PipeBound::Categorical { seen }, Column::Categorical { .. }) => {
                        if let Some(cat) = col.category_at(r) {
                            seen[cat as usize] = true;
                        }
                    }
                    _ => unreachable!("pipe bound kind matches column kind"),
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        assert!(self.fitted, "predict before fit");
        let mut scores: Vec<f64> = self
            .pipes
            .iter()
            .map(|pipe| {
                let mut inside = 0.0;
                for (attr, col) in data.columns().iter().enumerate() {
                    match (&pipe[attr], col) {
                        (PipeBound::Numeric { min, max }, Column::Numeric { .. }) => {
                            if let Some(v) = col.numeric_at(row) {
                                if !v.is_nan() && v >= *min && v <= *max {
                                    inside += 1.0;
                                }
                            } else {
                                inside += 0.5;
                            }
                        }
                        (PipeBound::Categorical { seen }, Column::Categorical { .. }) => {
                            match col.category_at(row) {
                                Some(cat) if seen.get(cat as usize).copied().unwrap_or(false) => {
                                    inside += 1.0
                                }
                                Some(_) => {}
                                None => inside += 0.5,
                            }
                        }
                        _ => {}
                    }
                }
                inside
            })
            .collect();
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        } else {
            // The row fell outside every pipe (possible when all its cells
            // are out of range): no evidence either way — uniform.
            let k = scores.len().max(1) as f64;
            for s in scores.iter_mut() {
                *s = 1.0 / k;
            }
        }
        scores
    }
}

pub struct HyperPipesSpec;

impl AlgorithmSpec for HyperPipesSpec {
    fn name(&self) -> &'static str {
        "HyperPipes"
    }
    fn family(&self) -> Family {
        Family::Misc
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder().build().expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
    }
    fn build(&self, _config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(HyperPipes {
            pipes: Vec::new(),
            fitted: false,
        })
    }
}

// ------------------------------------------------------------------------ VFI

/// Voting feature intervals over discretized attributes; optional
/// confidence weighting raises each vote by the interval's purity.
struct Vfi {
    bins: usize,
    weighted: bool,
    disc: Option<Discretizer>,
    /// Per attribute, per discrete value: per-class vote shares.
    votes: Vec<Vec<Vec<f64>>>,
    n_classes: usize,
}

impl Classifier for Vfi {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let disc = Discretizer::fit(data, rows, self.bins);
        self.n_classes = data.n_classes();
        // Per-class record counts for normalization.
        let mut class_counts = vec![0.0f64; self.n_classes];
        for &r in rows {
            class_counts[data.label(r)] += 1.0;
        }
        self.votes = (0..data.n_attrs())
            .map(|attr| {
                let arity = disc.arity(data, attr).max(1);
                let mut table = vec![vec![0.0f64; self.n_classes]; arity];
                for &r in rows {
                    if let Some(v) = disc.value(data, r, attr) {
                        table[v][data.label(r)] += 1.0;
                    }
                }
                // Normalize by class frequency then to a distribution per value.
                for row_votes in table.iter_mut() {
                    for (v, cc) in row_votes.iter_mut().zip(&class_counts) {
                        *v /= cc.max(1.0);
                    }
                    let total: f64 = row_votes.iter().sum();
                    if total > 0.0 {
                        for v in row_votes.iter_mut() {
                            *v /= total;
                        }
                        if self.weighted {
                            // Confidence weight: purity of the interval.
                            let purity = row_votes.iter().copied().fold(0.0f64, f64::max);
                            for v in row_votes.iter_mut() {
                                *v *= purity;
                            }
                        }
                    }
                }
                table
            })
            .collect();
        self.disc = Some(disc);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let disc = self.disc.as_ref().expect("predict before fit");
        let mut total_votes = vec![0.0f64; self.n_classes];
        for (attr, table) in self.votes.iter().enumerate() {
            if let Some(v) = disc.value(data, row, attr) {
                if let Some(votes) = table.get(v) {
                    for (t, v) in total_votes.iter_mut().zip(votes) {
                        *t += v;
                    }
                }
            }
        }
        let sum: f64 = total_votes.iter().sum();
        if sum > 0.0 {
            for t in total_votes.iter_mut() {
                *t /= sum;
            }
        } else {
            let k = self.n_classes as f64;
            for t in total_votes.iter_mut() {
                *t = 1.0 / k;
            }
        }
        total_votes
    }
}

pub struct VfiSpec;

impl AlgorithmSpec for VfiSpec {
    fn name(&self) -> &'static str {
        "VFI"
    }
    fn family(&self) -> Family {
        Family::Misc
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("bins", Domain::int(2, 12))
            .add("weighted", Domain::Bool)
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("bins", ParamValue::Int(6))
            .with("weighted", ParamValue::Bool(true))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(Vfi {
            bins: config.int_or("bins", 6).max(2) as usize,
            weighted: config.bool_or("weighted", true),
            disc: None,
            votes: Vec::new(),
            n_classes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::{SynthFamily, SynthSpec};

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 0), d, 5, 1).unwrap()
    }

    #[test]
    fn hyperpipes_separates_disjoint_ranges() {
        let d = SynthSpec::new(
            "b",
            200,
            4,
            0,
            3,
            SynthFamily::GaussianBlobs { spread: 0.4 },
            41,
        )
        .generate();
        let acc = cv(&HyperPipesSpec, &d);
        assert!(acc > 0.5, "HyperPipes accuracy = {acc}");
    }

    #[test]
    fn vfi_beats_chance_on_blobs() {
        let d = SynthSpec::new(
            "b",
            250,
            4,
            2,
            3,
            SynthFamily::GaussianBlobs { spread: 0.8 },
            43,
        )
        .generate();
        let acc = cv(&VfiSpec, &d);
        assert!(acc > 0.6, "VFI accuracy = {acc}");
    }

    #[test]
    fn vfi_probabilities_are_distributions() {
        let d = SynthSpec::new("p", 150, 3, 1, 2, SynthFamily::Mixed, 45).generate();
        let spec = VfiSpec;
        let c = spec.default_config();
        let mut m = spec.build(&c, 0);
        m.fit(&d, &(0..100).collect::<Vec<_>>()).unwrap();
        let p = m.predict_proba(&d, 120);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hyperpipes_handles_missing_cells() {
        let d = SynthSpec::new("m", 200, 2, 2, 2, SynthFamily::Mixed, 47)
            .with_missing(0.2)
            .generate();
        let acc = cv(&HyperPipesSpec, &d);
        assert!(acc > 0.4, "accuracy = {acc}");
    }
}
