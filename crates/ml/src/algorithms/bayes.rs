//! `weka.classifiers.bayes`: NaiveBayes, NaiveBayesMultinomial, BayesNet,
//! AODE.
//!
//! `NaiveBayes` models numeric attributes with per-class Gaussians and
//! categorical attributes with Laplace-smoothed multinomials, skipping
//! missing cells. `BayesNet` is a tree-augmented naive Bayes (TAN) learned
//! with Chow–Liu conditional mutual information over discretized
//! attributes — Weka's default K2/TAN structure search restricted to the
//! single-parent case. `AODE` averages one-dependence estimators over
//! discretized attributes. `NaiveBayesMultinomial` requires non-negative
//! numeric attributes (document-count semantics) and is otherwise marked
//! inapplicable — one of the OneHot' `-1` cases.

use super::dense::Discretizer;
use crate::classifier::Classifier;
use crate::error::MlError;
use crate::registry::{AlgorithmSpec, Family};
use automodel_data::{Column, Dataset};
use automodel_hpo::{Config, Domain, ParamValue, SearchSpace};

fn normalize_log(mut log_p: Vec<f64>) -> Vec<f64> {
    let max = log_p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in log_p.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in log_p.iter_mut() {
            *v /= sum;
        }
    }
    log_p
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

// ---------------------------------------------------------------- NaiveBayes

enum AttrModel {
    Gaussian {
        /// Per class: (mean, variance).
        stats: Vec<(f64, f64)>,
    },
    Multinomial {
        /// Per class: per-category log probability.
        log_p: Vec<Vec<f64>>,
    },
}

struct NaiveBayes {
    laplace: f64,
    log_prior: Vec<f64>,
    attrs: Vec<AttrModel>,
    fitted: bool,
}

impl NaiveBayes {
    fn new(laplace: f64) -> NaiveBayes {
        NaiveBayes {
            laplace,
            log_prior: Vec::new(),
            attrs: Vec::new(),
            fitted: false,
        }
    }
}

impl Classifier for NaiveBayes {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let k = data.n_classes();
        let mut counts = vec![self.laplace; k];
        for &r in rows {
            counts[data.label(r)] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        self.log_prior = counts.iter().map(|c| (c / total).ln()).collect();

        self.attrs = data
            .columns()
            .iter()
            .map(|col| match col {
                Column::Numeric { .. } => {
                    let mut sums = vec![0.0; k];
                    let mut ns = vec![0.0; k];
                    for &r in rows {
                        if let Some(v) = col.numeric_at(r) {
                            if !v.is_nan() {
                                sums[data.label(r)] += v;
                                ns[data.label(r)] += 1.0;
                            }
                        }
                    }
                    let means: Vec<f64> = sums
                        .iter()
                        .zip(&ns)
                        .map(|(s, n)| if *n > 0.0 { s / n } else { 0.0 })
                        .collect();
                    let mut vars = vec![0.0; k];
                    for &r in rows {
                        if let Some(v) = col.numeric_at(r) {
                            if !v.is_nan() {
                                let c = data.label(r);
                                vars[c] += (v - means[c]) * (v - means[c]);
                            }
                        }
                    }
                    let stats = means
                        .iter()
                        .zip(vars.iter().zip(&ns))
                        .map(|(&m, (&v, &n))| (m, if n > 1.0 { (v / n).max(1e-6) } else { 1.0 }))
                        .collect();
                    AttrModel::Gaussian { stats }
                }
                Column::Categorical { categories, .. } => {
                    let arity = categories.len().max(1);
                    let mut table = vec![vec![self.laplace; arity]; k];
                    for &r in rows {
                        if let Some(c) = col.category_at(r) {
                            table[data.label(r)][c as usize] += 1.0;
                        }
                    }
                    let log_p = table
                        .into_iter()
                        .map(|row| {
                            let t: f64 = row.iter().sum();
                            row.into_iter().map(|c| (c / t).ln()).collect()
                        })
                        .collect();
                    AttrModel::Multinomial { log_p }
                }
            })
            .collect();
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        assert!(self.fitted, "predict before fit");
        let k = self.log_prior.len();
        let mut log_post = self.log_prior.clone();
        for (col, model) in data.columns().iter().zip(&self.attrs) {
            match model {
                AttrModel::Gaussian { stats } => {
                    if let Some(v) = col.numeric_at(row) {
                        if !v.is_nan() {
                            for c in 0..k {
                                let (m, var) = stats[c];
                                let d = v - m;
                                log_post[c] += -0.5 * (d * d / var + var.ln());
                            }
                        }
                    }
                }
                AttrModel::Multinomial { log_p } => {
                    if let Some(cat) = col.category_at(row) {
                        for c in 0..k {
                            if let Some(lp) = log_p[c].get(cat as usize) {
                                log_post[c] += lp;
                            }
                        }
                    }
                }
            }
        }
        normalize_log(log_post)
    }
}

pub struct NaiveBayesSpec;

impl AlgorithmSpec for NaiveBayesSpec {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }
    fn family(&self) -> Family {
        Family::Bayes
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("laplace", Domain::float_log(0.01, 10.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("laplace", ParamValue::Float(1.0))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(NaiveBayes::new(config.float_or("laplace", 1.0).max(1e-4)))
    }
}

// --------------------------------------------------- NaiveBayesMultinomial

/// Multinomial NB over non-negative numeric attributes (count semantics):
/// `p(x | c) ∝ Π θ_{c,j}^{x_j}` with Laplace-smoothed θ. Categorical
/// attributes contribute their one-hot indicator as a count of 1.
struct NaiveBayesMultinomial {
    laplace: f64,
    log_prior: Vec<f64>,
    /// Per class, per feature (numeric cols then one-hot blocks): log θ.
    log_theta: Vec<Vec<f64>>,
    layout: Vec<(usize, usize)>, // (column index, width)
    fitted: bool,
}

impl NaiveBayesMultinomial {
    fn feature_counts(data: &Dataset, row: usize, layout: &[(usize, usize)], out: &mut Vec<f64>) {
        out.clear();
        for &(col, width) in layout {
            match &data.columns()[col] {
                Column::Numeric { .. } => {
                    let v = data.columns()[col].numeric_at(row).unwrap_or(0.0);
                    out.push(if v.is_nan() { 0.0 } else { v.max(0.0) });
                }
                Column::Categorical { .. } => {
                    let start = out.len();
                    out.resize(start + width, 0.0);
                    if let Some(c) = data.columns()[col].category_at(row) {
                        out[start + c as usize] = 1.0;
                    }
                }
            }
        }
    }
}

impl Classifier for NaiveBayesMultinomial {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.layout = data
            .columns()
            .iter()
            .enumerate()
            .map(|(i, col)| match col {
                Column::Numeric { .. } => (i, 1),
                Column::Categorical { categories, .. } => (i, categories.len()),
            })
            .collect();
        let width: usize = self.layout.iter().map(|&(_, w)| w).sum();
        let k = data.n_classes();
        let mut prior = vec![self.laplace; k];
        let mut theta = vec![vec![self.laplace; width]; k];
        let mut buf = Vec::new();
        for &r in rows {
            let c = data.label(r);
            prior[c] += 1.0;
            Self::feature_counts(data, r, &self.layout, &mut buf);
            for (t, v) in theta[c].iter_mut().zip(&buf) {
                *t += v;
            }
        }
        let total: f64 = prior.iter().sum();
        self.log_prior = prior.iter().map(|p| (p / total).ln()).collect();
        self.log_theta = theta
            .into_iter()
            .map(|row| {
                let t: f64 = row.iter().sum();
                row.into_iter().map(|v| (v / t).ln()).collect()
            })
            .collect();
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        assert!(self.fitted, "predict before fit");
        let mut buf = Vec::new();
        Self::feature_counts(data, row, &self.layout, &mut buf);
        let log_post: Vec<f64> = self
            .log_prior
            .iter()
            .zip(&self.log_theta)
            .map(|(lp, theta)| lp + theta.iter().zip(&buf).map(|(t, x)| t * x).sum::<f64>())
            .collect();
        normalize_log(log_post)
    }
}

pub struct NaiveBayesMultinomialSpec;

impl AlgorithmSpec for NaiveBayesMultinomialSpec {
    fn name(&self) -> &'static str {
        "NaiveBayesMultinomial"
    }
    fn family(&self) -> Family {
        Family::Bayes
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("laplace", Domain::float_log(0.01, 10.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new().with("laplace", ParamValue::Float(1.0))
    }
    fn check_applicable(&self, data: &Dataset) -> Result<(), MlError> {
        // Multinomial semantics require non-negative "counts".
        for (i, col) in data.columns().iter().enumerate() {
            if let Column::Numeric { values, .. } = col {
                if values.iter().any(|v| !v.is_nan() && *v < 0.0) {
                    return Err(MlError::NotApplicable {
                        algorithm: self.name().into(),
                        reason: format!("attribute {i} has negative values"),
                    });
                }
            }
        }
        Ok(())
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(NaiveBayesMultinomial {
            laplace: config.float_or("laplace", 1.0).max(1e-4),
            log_prior: Vec::new(),
            log_theta: Vec::new(),
            layout: Vec::new(),
            fitted: false,
        })
    }
}

// ------------------------------------------------------------------ BayesNet

/// Tree-augmented naive Bayes over discretized attributes: each attribute
/// gets at most one attribute-parent, chosen by a maximum-spanning tree on
/// conditional mutual information given the class (Chow–Liu / Friedman TAN).
struct BayesNet {
    bins: usize,
    laplace: f64,
    disc: Option<Discretizer>,
    log_prior: Vec<f64>,
    /// Per attribute: parent attribute (or None) and the CPT
    /// `log p(value | class, parent_value)` indexed `[class][parent_val][value]`.
    attrs: Vec<AttrCpt>,
}

/// Parent attribute (or None) plus the conditional probability table
/// indexed `[class][parent_value][value]`.
type AttrCpt = (Option<usize>, Vec<Vec<Vec<f64>>>);

impl BayesNet {
    /// Conditional mutual information I(Xi; Xj | C) over discrete values.
    fn cmi(
        data: &Dataset,
        rows: &[usize],
        disc: &Discretizer,
        i: usize,
        j: usize,
        k: usize,
    ) -> f64 {
        let ai = disc.arity(data, i).max(1);
        let aj = disc.arity(data, j).max(1);
        let mut joint = vec![0.0f64; k * ai * aj];
        let mut ci = vec![0.0f64; k * ai];
        let mut cj = vec![0.0f64; k * aj];
        let mut cc = vec![0.0f64; k];
        let mut n = 0.0;
        for &r in rows {
            let (Some(vi), Some(vj)) = (disc.value(data, r, i), disc.value(data, r, j)) else {
                continue;
            };
            let c = data.label(r);
            joint[(c * ai + vi) * aj + vj] += 1.0;
            ci[c * ai + vi] += 1.0;
            cj[c * aj + vj] += 1.0;
            cc[c] += 1.0;
            n += 1.0;
        }
        if n == 0.0 {
            return 0.0;
        }
        let mut mi = 0.0;
        for c in 0..k {
            if cc[c] == 0.0 {
                continue;
            }
            for vi in 0..ai {
                for vj in 0..aj {
                    let pxyz = joint[(c * ai + vi) * aj + vj] / n;
                    if pxyz <= 0.0 {
                        continue;
                    }
                    let pz = cc[c] / n;
                    let pxz = ci[c * ai + vi] / n;
                    let pyz = cj[c * aj + vj] / n;
                    mi += pxyz * ((pxyz * pz) / (pxz * pyz)).ln();
                }
            }
        }
        mi
    }
}

impl Classifier for BayesNet {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let k = data.n_classes();
        let n_attrs = data.n_attrs();
        let disc = Discretizer::fit(data, rows, self.bins);

        // Priors.
        let mut prior = vec![self.laplace; k];
        for &r in rows {
            prior[data.label(r)] += 1.0;
        }
        let total: f64 = prior.iter().sum();
        self.log_prior = prior.iter().map(|p| (p / total).ln()).collect();

        // Maximum spanning tree over CMI (Prim's): attribute 0 is the root.
        let mut parent: Vec<Option<usize>> = vec![None; n_attrs];
        if n_attrs > 1 {
            let mut in_tree = vec![false; n_attrs];
            in_tree[0] = true;
            let mut best_edge: Vec<(f64, usize)> = (0..n_attrs)
                .map(|j| {
                    if j == 0 {
                        (f64::NEG_INFINITY, 0)
                    } else {
                        (Self::cmi(data, rows, &disc, 0, j, k), 0)
                    }
                })
                .collect();
            for _ in 1..n_attrs {
                let Some(next) = (0..n_attrs)
                    .filter(|&j| !in_tree[j])
                    .max_by(|&a, &b| best_edge[a].0.total_cmp(&best_edge[b].0))
                else {
                    break;
                };
                in_tree[next] = true;
                parent[next] = Some(best_edge[next].1);
                for j in 0..n_attrs {
                    if !in_tree[j] {
                        let w = Self::cmi(data, rows, &disc, next, j, k);
                        if w > best_edge[j].0 {
                            best_edge[j] = (w, next);
                        }
                    }
                }
            }
        }

        // CPTs: log p(v | class, parent value); parentless attrs use a
        // single pseudo parent value.
        self.attrs = (0..n_attrs)
            .map(|i| {
                let ai = disc.arity(data, i).max(1);
                let ap = parent[i].map_or(1, |p| disc.arity(data, p).max(1));
                let mut table = vec![vec![vec![self.laplace; ai]; ap]; k];
                for &r in rows {
                    let Some(vi) = disc.value(data, r, i) else {
                        continue;
                    };
                    let pv = match parent[i] {
                        Some(p) => match disc.value(data, r, p) {
                            Some(v) => v,
                            None => continue,
                        },
                        None => 0,
                    };
                    table[data.label(r)][pv][vi] += 1.0;
                }
                for class_tab in table.iter_mut() {
                    for row in class_tab.iter_mut() {
                        let t: f64 = row.iter().sum();
                        for v in row.iter_mut() {
                            *v = (*v / t).ln();
                        }
                    }
                }
                (parent[i], table)
            })
            .collect();
        self.disc = Some(disc);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let disc = self.disc.as_ref().expect("predict before fit");
        let mut log_post = self.log_prior.clone();
        for (i, (parent, table)) in self.attrs.iter().enumerate() {
            let Some(vi) = disc.value(data, row, i) else {
                continue;
            };
            let pv = match parent {
                Some(p) => match disc.value(data, row, *p) {
                    Some(v) => v,
                    None => continue,
                },
                None => 0,
            };
            for (c, lp) in log_post.iter_mut().enumerate() {
                if let Some(v) = table[c].get(pv).and_then(|r| r.get(vi)) {
                    *lp += v;
                }
            }
        }
        normalize_log(log_post)
    }
}

pub struct BayesNetSpec;

impl AlgorithmSpec for BayesNetSpec {
    fn name(&self) -> &'static str {
        "BayesNet"
    }
    fn family(&self) -> Family {
        Family::Bayes
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("bins", Domain::int(2, 10))
            .add("laplace", Domain::float_log(0.01, 10.0))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("bins", ParamValue::Int(5))
            .with("laplace", ParamValue::Float(0.5))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(BayesNet {
            bins: config.int_or("bins", 5).max(2) as usize,
            laplace: config.float_or("laplace", 0.5).max(1e-4),
            disc: None,
            log_prior: Vec::new(),
            attrs: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------- AODE

/// Averaged one-dependence estimators over discretized attributes: for each
/// "super-parent" attribute with enough support, build a model where every
/// other attribute depends on (class, parent); average the joint estimates.
struct Aode {
    bins: usize,
    laplace: f64,
    min_support: f64,
    disc: Option<Discretizer>,
    n_classes: usize,
    rows_cache: Vec<CachedRow>,
}

struct CachedRow {
    label: usize,
    values: Vec<Option<usize>>,
}

impl Classifier for Aode {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        // AODE is naturally a "lazy-ish" counter; cache discrete values.
        let disc = Discretizer::fit(data, rows, self.bins);
        self.n_classes = data.n_classes();
        self.rows_cache = rows
            .iter()
            .map(|&r| CachedRow {
                label: data.label(r),
                values: (0..data.n_attrs())
                    .map(|a| disc.value(data, r, a))
                    .collect(),
            })
            .collect();
        self.disc = Some(disc);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(&self.predict_proba(data, row))
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let disc = self.disc.as_ref().expect("predict before fit");
        let n_attrs = data.n_attrs();
        let k = self.n_classes;
        let n = self.rows_cache.len() as f64;
        let query: Vec<Option<usize>> = (0..n_attrs).map(|a| disc.value(data, row, a)).collect();

        let mut posterior = vec![0.0; k];
        let mut used_parents = 0usize;
        for p in 0..n_attrs {
            let Some(pv) = query[p] else { continue };
            // Support of the parent value.
            let support = self
                .rows_cache
                .iter()
                .filter(|r| r.values[p] == Some(pv))
                .count() as f64;
            if support < self.min_support {
                continue;
            }
            used_parents += 1;
            for (c, post) in posterior.iter_mut().enumerate() {
                // p(c, xp) with smoothing.
                let c_and_p = self
                    .rows_cache
                    .iter()
                    .filter(|r| r.label == c && r.values[p] == Some(pv))
                    .count() as f64;
                let arity_p = disc.arity(data, p).max(1) as f64;
                let mut log_joint =
                    ((c_and_p + self.laplace) / (n + self.laplace * k as f64 * arity_p)).ln();
                for (a, qa) in query.iter().enumerate().take(n_attrs) {
                    if a == p {
                        continue;
                    }
                    let Some(av) = *qa else { continue };
                    let match_all = self
                        .rows_cache
                        .iter()
                        .filter(|r| {
                            r.label == c && r.values[p] == Some(pv) && r.values[a] == Some(av)
                        })
                        .count() as f64;
                    let arity_a = disc.arity(data, a).max(1) as f64;
                    log_joint +=
                        ((match_all + self.laplace) / (c_and_p + self.laplace * arity_a)).ln();
                }
                *post += log_joint.exp();
            }
        }
        if used_parents == 0 {
            // Fall back to class frequencies.
            let mut counts = vec![self.laplace; k];
            for r in &self.rows_cache {
                counts[r.label] += 1.0;
            }
            let t: f64 = counts.iter().sum();
            return counts.into_iter().map(|c| c / t).collect();
        }
        let total: f64 = posterior.iter().sum();
        if total > 0.0 {
            for p in posterior.iter_mut() {
                *p /= total;
            }
        }
        posterior
    }
}

pub struct AodeSpec;

impl AlgorithmSpec for AodeSpec {
    fn name(&self) -> &'static str {
        "AODE"
    }
    fn family(&self) -> Family {
        Family::Bayes
    }
    fn check_applicable(&self, data: &Dataset) -> Result<(), MlError> {
        // AODE's lazy counting is O(rows² · attrs²) at prediction time —
        // impractical on wide data (Weka's AODE is likewise restricted to
        // modest nominal spaces).
        if data.n_attrs() > 25 {
            return Err(MlError::NotApplicable {
                algorithm: self.name().into(),
                reason: format!("{} attributes (AODE is limited to 25)", data.n_attrs()),
            });
        }
        Ok(())
    }
    fn param_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .add("bins", Domain::int(2, 8))
            .add("min_support", Domain::int(1, 30))
            .build()
            .expect("static space")
    }
    fn default_config(&self) -> Config {
        Config::new()
            .with("bins", ParamValue::Int(4))
            .with("min_support", ParamValue::Int(5))
    }
    fn build(&self, config: &Config, _seed: u64) -> Box<dyn Classifier> {
        Box::new(Aode {
            bins: config.int_or("bins", 4).max(2) as usize,
            laplace: 1.0,
            min_support: config.int_or("min_support", 5).max(1) as f64,
            disc: None,
            n_classes: 0,
            rows_cache: Vec::new(),
        })
    }
    fn expensive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::cross_val_accuracy;
    use automodel_data::dataset::default_class_names;
    use automodel_data::{SynthFamily, SynthSpec};

    fn mixed() -> Dataset {
        SynthSpec::new("m", 240, 3, 3, 3, SynthFamily::Mixed, 7).generate()
    }

    fn cv(spec: &dyn AlgorithmSpec, d: &Dataset) -> f64 {
        let config = spec.default_config();
        cross_val_accuracy(|| spec.build(&config, 0), d, 5, 1).unwrap()
    }

    #[test]
    fn naive_bayes_beats_chance_on_mixed_data() {
        let acc = cv(&NaiveBayesSpec, &mixed());
        assert!(acc > 0.6, "accuracy = {acc}");
    }

    #[test]
    fn naive_bayes_gaussian_recovers_simple_means() {
        // One numeric attribute with clearly separated class means.
        let d = Dataset::builder("g")
            .numeric(
                "x",
                (0..100)
                    .map(|i| if i % 2 == 0 { 0.0 } else { 10.0 })
                    .collect(),
            )
            .target(
                "y",
                (0..100).map(|i| i % 2).collect(),
                default_class_names(2),
            )
            .unwrap();
        let spec = NaiveBayesSpec;
        let c = spec.default_config();
        let mut m = spec.build(&c, 0);
        m.fit(&d, &(0..100).collect::<Vec<_>>()).unwrap();
        assert_eq!(m.predict(&d, 0), 0);
        assert_eq!(m.predict(&d, 1), 1);
    }

    #[test]
    fn bayesnet_beats_naive_bayes_when_attributes_interact() {
        // Label = XOR of two categorical attrs: NB is blind, TAN can link them.
        let n = 400;
        let a: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let b: Vec<u32> = (0..n).map(|i| ((i / 2) % 2) as u32).collect();
        let labels: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| (x ^ y) as usize).collect();
        let d = Dataset::builder("xorcat")
            .categorical("a", a, vec!["0".into(), "1".into()])
            .categorical("b", b, vec!["0".into(), "1".into()])
            .target("y", labels, default_class_names(2))
            .unwrap();
        let nb = cv(&NaiveBayesSpec, &d);
        let bn = cv(&BayesNetSpec, &d);
        assert!(bn > 0.95, "TAN accuracy = {bn}");
        assert!(nb < 0.7, "NB should fail categorical XOR, got {nb}");
    }

    #[test]
    fn aode_beats_chance_on_mixed_data() {
        let acc = cv(&AodeSpec, &mixed());
        assert!(acc > 0.6, "accuracy = {acc}");
    }

    #[test]
    fn multinomial_rejects_negative_numerics() {
        let d = Dataset::builder("neg")
            .numeric("x", vec![-1.0, 2.0])
            .target("y", vec![0, 1], default_class_names(2))
            .unwrap();
        assert!(NaiveBayesMultinomialSpec.check_applicable(&d).is_err());
        let ok = Dataset::builder("pos")
            .numeric("x", vec![1.0, 2.0])
            .target("y", vec![0, 1], default_class_names(2))
            .unwrap();
        assert!(NaiveBayesMultinomialSpec.check_applicable(&ok).is_ok());
    }

    #[test]
    fn multinomial_learns_count_data() {
        // Class 0 heavy on attr 0, class 1 heavy on attr 1.
        let mut x0 = Vec::new();
        let mut x1 = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            if i % 2 == 0 {
                x0.push(8.0);
                x1.push(1.0);
                labels.push(0);
            } else {
                x0.push(1.0);
                x1.push(8.0);
                labels.push(1);
            }
        }
        let d = Dataset::builder("counts")
            .numeric("w0", x0)
            .numeric("w1", x1)
            .target("y", labels, default_class_names(2))
            .unwrap();
        let acc = cv(&NaiveBayesMultinomialSpec, &d);
        assert!(acc > 0.95, "accuracy = {acc}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let d = mixed();
        for spec in [
            &NaiveBayesSpec as &dyn AlgorithmSpec,
            &BayesNetSpec,
            &AodeSpec,
        ] {
            let c = spec.default_config();
            let mut m = spec.build(&c, 0);
            m.fit(&d, &(0..200).collect::<Vec<_>>()).unwrap();
            let p = m.predict_proba(&d, 210);
            assert_eq!(p.len(), 3, "{}", spec.name());
            assert!(
                (p.iter().sum::<f64>() - 1.0).abs() < 1e-6,
                "{}: {p:?}",
                spec.name()
            );
        }
    }
}
