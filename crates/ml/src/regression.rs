//! Regression-tree substrate.
//!
//! A variance-reduction CART over the same mixed-type [`Dataset`] columns as
//! the classification tree, but fitting a real-valued target supplied per
//! row index. Needed by the meta-learners that reduce classification to
//! regression (`ClassificationViaRegression`, Weka's M5/AdditiveRegression
//! family) — exactly the substrate Weka provides via `M5P`/`REPTree`
//! regression mode.
//!
//! Missing values follow the classification tree's policy: skipped while
//! scoring, routed to the heavier child.

use crate::error::MlError;
use automodel_data::{Column, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Regression-tree configuration.
#[derive(Debug, Clone)]
pub struct RegTreeParams {
    pub max_depth: usize,
    pub min_leaf: usize,
    pub min_split: usize,
    /// Random attribute subset per node (`None` = all).
    pub feature_subset: Option<usize>,
    pub seed: u64,
}

impl Default for RegTreeParams {
    fn default() -> RegTreeParams {
        RegTreeParams {
            max_depth: 12,
            min_leaf: 2,
            min_split: 4,
            feature_subset: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Numeric {
        col: usize,
        threshold: f64,
        missing_left: bool,
        left: Box<Node>,
        right: Box<Node>,
    },
    Categorical {
        col: usize,
        category: u32,
        missing_left: bool,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, data: &Dataset, row: usize) -> f64 {
        match self {
            Node::Leaf { value } => *value,
            Node::Numeric {
                col,
                threshold,
                missing_left,
                left,
                right,
            } => {
                let v = data.columns()[*col].numeric_at(row).unwrap_or(f64::NAN);
                let go_left = if v.is_nan() {
                    *missing_left
                } else {
                    v <= *threshold
                };
                if go_left {
                    left.predict(data, row)
                } else {
                    right.predict(data, row)
                }
            }
            Node::Categorical {
                col,
                category,
                missing_left,
                left,
                right,
            } => {
                let go_left = match data.columns()[*col].category_at(row) {
                    Some(c) => c == *category,
                    None => *missing_left,
                };
                if go_left {
                    left.predict(data, row)
                } else {
                    right.predict(data, row)
                }
            }
        }
    }
}

fn mean_of(target: &dyn Fn(usize) -> f64, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|&r| target(r)).sum::<f64>() / rows.len() as f64
}

fn sse_of(target: &dyn Fn(usize) -> f64, rows: &[usize]) -> f64 {
    let m = mean_of(target, rows);
    rows.iter()
        .map(|&r| (target(r) - m) * (target(r) - m))
        .sum()
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    pub params: RegTreeParams,
    root: Option<Node>,
}

impl RegressionTree {
    pub fn new(params: RegTreeParams) -> RegressionTree {
        RegressionTree { params, root: None }
    }

    /// Fit on `rows` of `data` against `target(row)`.
    pub fn fit(
        &mut self,
        data: &Dataset,
        rows: &[usize],
        target: &dyn Fn(usize) -> f64,
    ) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.root = Some(self.build(data, rows, target, 0, &mut rng));
        Ok(())
    }

    /// Predicted value for one row (0.0 before fit).
    pub fn predict(&self, data: &Dataset, row: usize) -> f64 {
        self.root.as_ref().map_or(0.0, |n| n.predict(data, row))
    }

    fn build(
        &self,
        data: &Dataset,
        rows: &[usize],
        target: &dyn Fn(usize) -> f64,
        depth: usize,
        rng: &mut StdRng,
    ) -> Node {
        let leaf = || Node::Leaf {
            value: mean_of(target, rows),
        };
        let parent_sse = sse_of(target, rows);
        if depth >= self.params.max_depth
            || rows.len() < self.params.min_split
            || parent_sse < 1e-12
        {
            return leaf();
        }

        let n_attrs = data.n_attrs();
        let mut attrs: Vec<usize> = (0..n_attrs).collect();
        if let Some(k) = self.params.feature_subset {
            attrs.shuffle(rng);
            attrs.truncate(k.max(1).min(n_attrs));
        }

        // Best (gain, split description).
        enum Split {
            Num { col: usize, threshold: f64 },
            Cat { col: usize, category: u32 },
        }
        let mut best: Option<(f64, Split)> = None;
        for &col in &attrs {
            match &data.columns()[col] {
                Column::Numeric { .. } => {
                    let mut pairs: Vec<(f64, f64)> = rows
                        .iter()
                        .filter_map(|&r| {
                            data.columns()[col]
                                .numeric_at(r)
                                .filter(|v| !v.is_nan())
                                .map(|v| (v, target(r)))
                        })
                        .collect();
                    if pairs.len() < 2 * self.params.min_leaf {
                        continue;
                    }
                    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                    let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
                    let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
                    let (mut lsum, mut lsq) = (0.0f64, 0.0f64);
                    for i in 0..pairs.len() - 1 {
                        lsum += pairs[i].1;
                        lsq += pairs[i].1 * pairs[i].1;
                        if pairs[i].0 == pairs[i + 1].0 {
                            continue;
                        }
                        let nl = (i + 1) as f64;
                        let nr = (pairs.len() - i - 1) as f64;
                        if nl < self.params.min_leaf as f64 || nr < self.params.min_leaf as f64 {
                            continue;
                        }
                        let sse_l = lsq - lsum * lsum / nl;
                        let rsum = total_sum - lsum;
                        let sse_r = (total_sq - lsq) - rsum * rsum / nr;
                        let gain = parent_sse - sse_l - sse_r;
                        if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                            best = Some((
                                gain,
                                Split::Num {
                                    col,
                                    threshold: (pairs[i].0 + pairs[i + 1].0) / 2.0,
                                },
                            ));
                        }
                    }
                }
                Column::Categorical { categories, .. } => {
                    for cat in 0..categories.len() as u32 {
                        let (mut left, mut right) = (Vec::new(), Vec::new());
                        for &r in rows {
                            match data.columns()[col].category_at(r) {
                                Some(c) if c == cat => left.push(r),
                                Some(_) => right.push(r),
                                None => {}
                            }
                        }
                        if left.len() < self.params.min_leaf || right.len() < self.params.min_leaf {
                            continue;
                        }
                        let gain = parent_sse - sse_of(target, &left) - sse_of(target, &right);
                        if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                            best = Some((gain, Split::Cat { col, category: cat }));
                        }
                    }
                }
            }
        }

        match best {
            Some((_, Split::Num { col, threshold })) => {
                let (mut left, mut right, mut miss) = (vec![], vec![], vec![]);
                for &r in rows {
                    match data.columns()[col].numeric_at(r) {
                        Some(v) if !v.is_nan() => {
                            if v <= threshold {
                                left.push(r)
                            } else {
                                right.push(r)
                            }
                        }
                        _ => miss.push(r),
                    }
                }
                let missing_left = left.len() >= right.len();
                if missing_left {
                    left.extend(miss);
                } else {
                    right.extend(miss);
                }
                Node::Numeric {
                    col,
                    threshold,
                    missing_left,
                    left: Box::new(self.build(data, &left, target, depth + 1, rng)),
                    right: Box::new(self.build(data, &right, target, depth + 1, rng)),
                }
            }
            Some((_, Split::Cat { col, category })) => {
                let (mut left, mut right, mut miss) = (vec![], vec![], vec![]);
                for &r in rows {
                    match data.columns()[col].category_at(r) {
                        Some(c) if c == category => left.push(r),
                        Some(_) => right.push(r),
                        None => miss.push(r),
                    }
                }
                let missing_left = left.len() >= right.len();
                if missing_left {
                    left.extend(miss);
                } else {
                    right.extend(miss);
                }
                Node::Categorical {
                    col,
                    category,
                    missing_left,
                    left: Box::new(self.build(data, &left, target, depth + 1, rng)),
                    right: Box::new(self.build(data, &right, target, depth + 1, rng)),
                }
            }
            None => leaf(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automodel_data::dataset::default_class_names;
    use automodel_data::{SynthFamily, SynthSpec};

    #[test]
    fn fits_a_step_function_exactly() {
        let d = Dataset::builder("step")
            .numeric("x", (0..50).map(|i| i as f64).collect())
            .target("y", vec![0; 50], default_class_names(1))
            .unwrap();
        let rows: Vec<usize> = (0..50).collect();
        let target = |r: usize| if r < 25 { -1.0 } else { 1.0 };
        let mut tree = RegressionTree::new(RegTreeParams::default());
        tree.fit(&d, &rows, &target).unwrap();
        assert!((tree.predict(&d, 3) + 1.0).abs() < 1e-9);
        assert!((tree.predict(&d, 40) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn approximates_a_smooth_function() {
        let d = Dataset::builder("smooth")
            .numeric("x", (0..200).map(|i| i as f64 / 100.0 - 1.0).collect())
            .target("y", vec![0; 200], default_class_names(1))
            .unwrap();
        let rows: Vec<usize> = (0..200).collect();
        let f = |r: usize| {
            let x = r as f64 / 100.0 - 1.0;
            x * x
        };
        let mut tree = RegressionTree::new(RegTreeParams::default());
        tree.fit(&d, &rows, &f).unwrap();
        let mse: f64 = rows
            .iter()
            .map(|&r| (tree.predict(&d, r) - f(r)).powi(2))
            .sum::<f64>()
            / 200.0;
        assert!(mse < 0.01, "mse = {mse}");
    }

    #[test]
    fn splits_on_categorical_attributes() {
        let d = Dataset::builder("cat")
            .categorical(
                "c",
                (0..60).map(|i| (i % 3) as u32).collect(),
                vec!["a".into(), "b".into(), "c".into()],
            )
            .target("y", vec![0; 60], default_class_names(1))
            .unwrap();
        let rows: Vec<usize> = (0..60).collect();
        let target = |r: usize| match r % 3 {
            0 => 5.0,
            1 => -5.0,
            _ => 0.0,
        };
        let mut tree = RegressionTree::new(RegTreeParams::default());
        tree.fit(&d, &rows, &target).unwrap();
        assert!((tree.predict(&d, 0) - 5.0).abs() < 1e-9);
        assert!((tree.predict(&d, 1) + 5.0).abs() < 1e-9);
        assert!(tree.predict(&d, 2).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_bounds_complexity() {
        let d = SynthSpec::new("m", 150, 3, 1, 2, SynthFamily::Mixed, 5).generate();
        let rows: Vec<usize> = (0..150).collect();
        let target = |r: usize| (r % 7) as f64;
        let mut stump = RegressionTree::new(RegTreeParams {
            max_depth: 1,
            ..RegTreeParams::default()
        });
        stump.fit(&d, &rows, &target).unwrap();
        // Depth-1 tree can emit at most two distinct values.
        let mut outs: Vec<f64> = rows.iter().map(|&r| stump.predict(&d, r)).collect();
        outs.sort_by(f64::total_cmp);
        outs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert!(outs.len() <= 2, "distinct outputs: {}", outs.len());
    }

    #[test]
    fn empty_training_errors() {
        let d = SynthSpec::new("e", 10, 2, 0, 2, SynthFamily::Hyperplane, 1).generate();
        let mut tree = RegressionTree::new(RegTreeParams::default());
        assert_eq!(
            tree.fit(&d, &[], &|_r| 0.0).err(),
            Some(MlError::EmptyTrainingSet)
        );
    }

    #[test]
    fn handles_missing_values() {
        let d = SynthSpec::new("miss", 120, 3, 2, 2, SynthFamily::Mixed, 9)
            .with_missing(0.25)
            .generate();
        let rows: Vec<usize> = (0..120).collect();
        let target = |r: usize| d.label(r) as f64;
        let mut tree = RegressionTree::new(RegTreeParams::default());
        tree.fit(&d, &rows, &target).unwrap();
        for &r in &rows {
            assert!(tree.predict(&d, r).is_finite());
        }
    }
}
