//! Cross-validation scoring — the paper's `f(λ, A, D)`.
//!
//! Every experiment in §IV scores a (algorithm, hyperparameter, dataset)
//! triple by stratified k-fold cross-validation accuracy (k = 10 in the
//! paper). The classifier factory is invoked once per fold so folds never
//! share state.

use crate::classifier::{accuracy_on, Classifier};
use crate::error::MlError;
use automodel_data::{stratified_kfold, Dataset};
use automodel_parallel::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stratified k-fold cross-validation accuracy. `factory` produces a fresh
/// classifier per fold. A fold whose training fails propagates the error.
pub fn cross_val_accuracy<F>(
    factory: F,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<f64, MlError>
where
    F: Fn() -> Box<dyn Classifier>,
{
    if data.n_rows() < 2 {
        return Err(MlError::EmptyTrainingSet);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = stratified_kfold(data, k, &mut rng)?;
    let mut weighted_correct = 0.0;
    let mut total = 0usize;
    for (train, test) in plan.splits() {
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let mut model = factory();
        model.fit(data, &train)?;
        let correct = test
            .iter()
            .filter(|&&r| model.predict(data, r) == data.label(r))
            .count();
        weighted_correct += correct as f64;
        total += test.len();
    }
    if total == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    Ok(weighted_correct / total as f64)
}

/// Like [`cross_val_accuracy`], but folds are trained and scored on
/// `executor`. Fold results are reduced in fold order, so the accuracy is
/// byte-identical to the serial path at any thread count (the fold plan
/// depends only on `seed`, and `factory` builds an independent classifier
/// per fold). An error in any fold propagates; when several folds fail, the
/// earliest fold's error wins, again independent of scheduling.
pub fn cross_val_accuracy_threaded<F>(
    factory: F,
    data: &Dataset,
    k: usize,
    seed: u64,
    executor: &Executor,
) -> Result<f64, MlError>
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    if data.n_rows() < 2 {
        return Err(MlError::EmptyTrainingSet);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = stratified_kfold(data, k, &mut rng)?;
    let folds: Vec<(Vec<usize>, Vec<usize>)> = plan
        .splits()
        .map(|(train, test)| (train, test.to_vec()))
        .collect();
    let per_fold = executor.map(folds.len(), |i| -> Result<(f64, usize), MlError> {
        let (train, test) = &folds[i];
        if train.is_empty() || test.is_empty() {
            return Ok((0.0, 0));
        }
        let mut model = factory();
        model.fit(data, train)?;
        let correct = test
            .iter()
            .filter(|&&r| model.predict(data, r) == data.label(r))
            .count();
        Ok((correct as f64, test.len()))
    });
    let mut weighted_correct = 0.0;
    let mut total = 0usize;
    for fold in per_fold {
        let (correct, tested) = fold?;
        weighted_correct += correct;
        total += tested;
    }
    if total == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    Ok(weighted_correct / total as f64)
}

/// Train on `train_rows`, score accuracy on `test_rows`.
pub fn holdout_accuracy(
    model: &mut dyn Classifier,
    data: &Dataset,
    train_rows: &[usize],
    test_rows: &[usize],
) -> Result<f64, MlError> {
    model.fit(data, train_rows)?;
    Ok(accuracy_on(model, data, test_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, TreeParams};
    use automodel_data::{SynthFamily, SynthSpec};

    fn tree_factory() -> Box<dyn Classifier> {
        Box::new(DecisionTree::new(TreeParams::default()))
    }

    #[test]
    fn cv_accuracy_is_high_on_separable_data() {
        let d = SynthSpec::new(
            "s",
            300,
            4,
            0,
            3,
            SynthFamily::GaussianBlobs { spread: 0.5 },
            1,
        )
        .generate();
        let acc = cross_val_accuracy(tree_factory, &d, 5, 42).unwrap();
        assert!(acc > 0.85, "cv accuracy = {acc}");
    }

    #[test]
    fn cv_accuracy_is_near_chance_on_noise() {
        let d = SynthSpec::new("n", 300, 3, 0, 2, SynthFamily::Hyperplane, 2)
            .with_label_noise(1.0)
            .generate();
        let acc = cross_val_accuracy(tree_factory, &d, 5, 42).unwrap();
        assert!(acc < 0.65, "cv accuracy on pure noise = {acc}");
    }

    #[test]
    fn cv_is_deterministic_in_seed() {
        let d = SynthSpec::new("d", 200, 3, 0, 2, SynthFamily::Hyperplane, 3).generate();
        let a = cross_val_accuracy(tree_factory, &d, 5, 9).unwrap();
        let b = cross_val_accuracy(tree_factory, &d, 5, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_cv_matches_serial_at_any_thread_count() {
        let d = SynthSpec::new("p", 240, 4, 1, 3, SynthFamily::Mixed, 6).generate();
        let serial = cross_val_accuracy(tree_factory, &d, 6, 17).unwrap();
        for threads in [1, 2, 8] {
            let ex = automodel_parallel::Executor::new(threads);
            let par = cross_val_accuracy_threaded(tree_factory, &d, 6, 17, &ex).unwrap();
            assert_eq!(
                serial.to_bits(),
                par.to_bits(),
                "{threads} threads: {par} vs serial {serial}"
            );
        }
    }

    #[test]
    fn threaded_cv_propagates_fold_errors() {
        let d = SynthSpec::new("e", 40, 2, 0, 2, SynthFamily::Hyperplane, 8).generate();
        let one = d.subset(&[0]).unwrap();
        let ex = automodel_parallel::Executor::new(4);
        assert!(cross_val_accuracy_threaded(tree_factory, &one, 5, 1, &ex).is_err());
    }

    #[test]
    fn holdout_scores_only_test_rows() {
        let d = SynthSpec::new("h", 100, 3, 0, 2, SynthFamily::Hyperplane, 4).generate();
        let train: Vec<usize> = (0..80).collect();
        let test: Vec<usize> = (80..100).collect();
        let mut tree = DecisionTree::new(TreeParams::default());
        let acc = holdout_accuracy(&mut tree, &d, &train, &test).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn tiny_datasets_error() {
        let d = SynthSpec::new("t", 2, 1, 0, 2, SynthFamily::Hyperplane, 5).generate();
        // 2 rows → k clamps to 2; folds of 1 can still work, but 1 row fails.
        let one = d.subset(&[0]).unwrap();
        assert!(cross_val_accuracy(tree_factory, &one, 5, 1).is_err());
    }
}
