//! Error type for the classification substrate.

use std::fmt;

/// Errors produced while fitting or applying classifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training set was empty or otherwise unusable.
    EmptyTrainingSet,
    /// The algorithm cannot process this dataset (the paper's OneHot' case),
    /// e.g. Id3 on numeric attributes.
    NotApplicable { algorithm: String, reason: String },
    /// Prediction requested before `fit`.
    NotFitted,
    /// A hyperparameter value was structurally unusable.
    BadHyperparameter { name: String, message: String },
    /// Wrapped dataset error.
    Data(automodel_data::DataError),
    /// Unknown algorithm name in the registry.
    UnknownAlgorithm(String),
    /// Training diverged or failed numerically.
    TrainingFailed(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "empty training set"),
            MlError::NotApplicable { algorithm, reason } => {
                write!(f, "{algorithm} cannot process this dataset: {reason}")
            }
            MlError::NotFitted => write!(f, "classifier used before fit"),
            MlError::BadHyperparameter { name, message } => {
                write!(f, "bad hyperparameter '{name}': {message}")
            }
            MlError::Data(e) => write!(f, "data error: {e}"),
            MlError::UnknownAlgorithm(name) => write!(f, "unknown algorithm '{name}'"),
            MlError::TrainingFailed(m) => write!(f, "training failed: {m}"),
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<automodel_data::DataError> for MlError {
    fn from(e: automodel_data::DataError) -> Self {
        MlError::Data(e)
    }
}
