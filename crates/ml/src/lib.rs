//! # automodel-ml
//!
//! Classification-algorithm substrate: a "mini-Weka".
//!
//! The paper treats Weka as a pool of ~50 tunable black-box classifiers
//! (`CAList`, Table IV) spanning seven families. Weka itself is a JVM
//! artifact unavailable here, so this crate implements the pool from
//! scratch, preserving the interface every experiment needs:
//!
//! * a common [`Classifier`] trait (fit on row indices of a
//!   [`automodel_data::Dataset`], predict per row, class probabilities);
//! * a typed hyperparameter [`automodel_hpo::SearchSpace`] per algorithm;
//! * a [`registry::Registry`] mapping Weka-style names
//!   (`J48`, `IBk`, `RandomForest`, …) to factories, with per-dataset
//!   applicability checks (the OneHot' `-1` mask of Algorithm 3);
//! * k-fold cross-validation scoring ([`eval`]) — the paper's
//!   `f(λ, A, D)`.
//!
//! Families and algorithms are organized exactly as Weka's packages:
//! [`algorithms::lazy`], [`algorithms::bayes`], [`algorithms::trees`],
//! [`algorithms::rules`], [`algorithms::functions`], [`algorithms::misc`],
//! [`algorithms::meta`].

pub mod algorithms;
pub mod classifier;
pub mod error;
pub mod eval;
pub mod registry;
pub mod regression;
pub mod tree;

pub use classifier::Classifier;
pub use error::MlError;
pub use eval::{cross_val_accuracy, cross_val_accuracy_threaded, holdout_accuracy};
pub use registry::{AlgorithmSpec, Family, Registry};
