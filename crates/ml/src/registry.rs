//! The algorithm registry: the paper's `CAList`.
//!
//! Each entry couples a Weka-style name with its family, a typed
//! hyperparameter space, a default configuration, an applicability predicate
//! (the OneHot' `-1` mask — e.g. `Id3` cannot process numeric attributes)
//! and a factory producing a fresh [`Classifier`].

use crate::classifier::Classifier;
use crate::error::MlError;
use automodel_data::Dataset;
use automodel_hpo::{Config, SearchSpace};
use std::sync::Arc;

/// Weka package family (Table IV's "Algorithm Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    Lazy,
    Bayes,
    Trees,
    Rules,
    Functions,
    Misc,
    Meta,
}

impl Family {
    pub fn weka_package(self) -> &'static str {
        match self {
            Family::Lazy => "weka.classifiers.lazy",
            Family::Bayes => "weka.classifiers.bayes",
            Family::Trees => "weka.classifiers.trees",
            Family::Rules => "weka.classifiers.rules",
            Family::Functions => "weka.classifiers.functions",
            Family::Misc => "weka.classifiers.misc",
            Family::Meta => "weka.classifiers.meta",
        }
    }
}

/// One registered algorithm.
pub trait AlgorithmSpec: Send + Sync {
    /// Weka-style class name, e.g. `"J48"`.
    fn name(&self) -> &'static str;

    /// Weka package family.
    fn family(&self) -> Family;

    /// Typed hyperparameter space (tuned by UDR and by Auto-Weka).
    fn param_space(&self) -> SearchSpace;

    /// Default configuration (Weka-style defaults).
    fn default_config(&self) -> Config;

    /// Can this algorithm process `data` at all? `Err` explains why not
    /// (the paper's OneHot' mask sets −1 exactly for these cases).
    fn check_applicable(&self, data: &Dataset) -> Result<(), MlError> {
        let _ = data;
        Ok(())
    }

    /// Build a fresh classifier for `config`. `seed` controls any internal
    /// randomness (bootstraps, initializations, tie-breaking).
    fn build(&self, config: &Config, seed: u64) -> Box<dyn Classifier>;

    /// Rough relative cost of one `fit` on a mid-sized dataset; UDR uses a
    /// measured probe instead, but tests and docs reference this hint.
    fn expensive(&self) -> bool {
        false
    }

    /// Name of the hyperparameter that counts training iterations
    /// (epochs, boosting rounds, optimizer steps), when the algorithm has
    /// one. Multi-fidelity schedulers scale or cap this parameter at
    /// cheap rungs; `None` (the default) means training cost is not
    /// iteration-shaped and only row subsampling applies.
    fn iteration_param(&self) -> Option<&'static str> {
        None
    }
}

/// The `CAList`: an ordered, name-addressable set of algorithms.
#[derive(Clone)]
pub struct Registry {
    entries: Vec<Arc<dyn AlgorithmSpec>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry {
            entries: Vec::new(),
        }
    }

    /// Register one algorithm. Panics on duplicate names (a registry is
    /// assembled once, at startup).
    pub fn register(&mut self, spec: Arc<dyn AlgorithmSpec>) {
        assert!(
            self.get(spec.name()).is_none(),
            "duplicate algorithm '{}'",
            spec.name()
        );
        self.entries.push(spec);
    }

    /// All registered algorithms, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn AlgorithmSpec>> {
        self.entries.iter()
    }

    /// Number of algorithms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn AlgorithmSpec>> {
        self.entries.iter().find(|s| s.name() == name)
    }

    /// Look up by name or error.
    pub fn require(&self, name: &str) -> Result<&Arc<dyn AlgorithmSpec>, MlError> {
        self.get(name)
            .ok_or_else(|| MlError::UnknownAlgorithm(name.to_string()))
    }

    /// Index of a name in registration order (the OneHot' coordinate).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|s| s.name() == name)
    }

    /// Names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.name()).collect()
    }

    /// Build a classifier by name with its default configuration.
    pub fn build_default(&self, name: &str, seed: u64) -> Result<Box<dyn Classifier>, MlError> {
        let spec = self.require(name)?;
        Ok(spec.build(&spec.default_config(), seed))
    }

    /// The full mini-Weka registry (see `algorithms::register_all`).
    pub fn full() -> Registry {
        let mut r = Registry::new();
        crate::algorithms::register_all(&mut r);
        r
    }

    /// A small, fast subset used by tests and quick examples.
    pub fn fast() -> Registry {
        let mut r = Registry::new();
        crate::algorithms::register_fast(&mut r);
        r
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("algorithms", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_registry_spans_all_seven_families() {
        let r = Registry::full();
        assert!(r.len() >= 30, "registry has only {} algorithms", r.len());
        for family in [
            Family::Lazy,
            Family::Bayes,
            Family::Trees,
            Family::Rules,
            Family::Functions,
            Family::Misc,
            Family::Meta,
        ] {
            assert!(
                r.iter().any(|s| s.family() == family),
                "no algorithm in {family:?}"
            );
        }
    }

    #[test]
    fn names_are_unique_and_indexable() {
        let r = Registry::full();
        let names = r.names();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        for (i, name) in names.iter().enumerate() {
            assert_eq!(r.index_of(name), Some(i));
        }
    }

    #[test]
    fn default_configs_validate_against_their_spaces() {
        let r = Registry::full();
        for spec in r.iter() {
            let space = spec.param_space();
            let config = spec.default_config();
            space
                .validate(&config)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        }
    }

    #[test]
    fn iteration_params_name_declared_int_parameters() {
        // A fidelity scheduler scales the named parameter, so it must
        // exist in the spec's own space (and the known iterative
        // learners must advertise one).
        let r = Registry::full();
        let mut advertised = Vec::new();
        for spec in r.iter() {
            if let Some(param) = spec.iteration_param() {
                let space = spec.param_space();
                assert!(
                    space.params().iter().any(|p| p.name == param),
                    "{}: iteration_param '{param}' not in its space",
                    spec.name()
                );
                advertised.push(spec.name());
            }
        }
        for expected in ["SimpleLogistic", "MultilayerPerceptron", "SMO", "LibSVM"] {
            assert!(advertised.contains(&expected), "{expected} lost its knob");
        }
    }

    #[test]
    fn unknown_names_error() {
        let r = Registry::fast();
        assert!(matches!(
            r.require("NoSuchThing"),
            Err(MlError::UnknownAlgorithm(_))
        ));
    }
}
