//! Configurable decision-tree core.
//!
//! One recursive-partitioning engine serves the whole `trees` family plus
//! the ensemble learners: J48 (gain ratio, multiway categorical splits,
//! pessimistic pruning), SimpleCart (Gini, binary splits), REPTree
//! (information gain, reduced-error pruning), RandomTree (per-node random
//! feature subsets, no pruning), Id3 (categorical-only, no pruning) and
//! DecisionStump (depth 1) are all parameterizations of [`DecisionTree`].
//!
//! Missing values are skipped while scoring splits and routed to the child
//! that received the larger share of training rows. Row index lists may
//! contain duplicates, which gives weighted training by resampling (used by
//! the boosting meta-learners).

use crate::classifier::{class_distribution, Classifier};
use crate::error::MlError;
use automodel_data::{Column, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    Gini,
    InfoGain,
    GainRatio,
}

/// Categorical attribute handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatSplit {
    /// One child per category (C4.5 style).
    Multiway,
    /// Binary one-category-vs-rest split (CART style).
    Binary,
}

/// Post-pruning strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pruning {
    None,
    /// Hold out this fraction of the training rows and prune bottom-up
    /// wherever a leaf does no worse on the holdout.
    ReducedError {
        fraction: f64,
    },
    /// C4.5-style pessimistic pruning on the training counts with a
    /// continuity correction of `penalty` errors per leaf.
    Pessimistic {
        penalty: f64,
    },
}

/// Full tree configuration.
#[derive(Debug, Clone)]
pub struct TreeParams {
    pub criterion: Criterion,
    pub max_depth: usize,
    pub min_leaf: usize,
    /// Minimum rows required to attempt a split.
    pub min_split: usize,
    /// Number of randomly chosen candidate attributes per node
    /// (`None` = all attributes).
    pub feature_subset: Option<usize>,
    /// Restrict splits to these attribute indices (`None` = all). Used by
    /// the RandomSubSpace / RotationForest ensembles.
    pub allowed_attrs: Option<Vec<usize>>,
    pub cat_split: CatSplit,
    pub pruning: Pruning,
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            criterion: Criterion::InfoGain,
            max_depth: 30,
            min_leaf: 1,
            min_split: 2,
            feature_subset: None,
            allowed_attrs: None,
            cat_split: CatSplit::Multiway,
            pruning: Pruning::None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        dist: Vec<f64>,
    },
    Numeric {
        col: usize,
        threshold: f64,
        /// Where missing values go: true = left.
        missing_left: bool,
        left: Box<Node>,
        right: Box<Node>,
        /// Class distribution at this node (used when pruning to a leaf).
        dist: Vec<f64>,
    },
    CatMulti {
        col: usize,
        children: Vec<Option<Box<Node>>>,
        /// Child index for missing/unseen categories.
        default_child: usize,
        dist: Vec<f64>,
    },
    CatBinary {
        col: usize,
        category: u32,
        missing_left: bool,
        /// Left = "equals category".
        left: Box<Node>,
        right: Box<Node>,
        dist: Vec<f64>,
    },
}

impl Node {
    fn dist(&self) -> &[f64] {
        match self {
            Node::Leaf { dist, .. }
            | Node::Numeric { dist, .. }
            | Node::CatMulti { dist, .. }
            | Node::CatBinary { dist, .. } => dist,
        }
    }

    fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Numeric { left, right, .. } | Node::CatBinary { left, right, .. } => {
                left.n_leaves() + right.n_leaves()
            }
            Node::CatMulti { children, .. } => children
                .iter()
                .flatten()
                .map(|c| c.n_leaves())
                .sum::<usize>()
                .max(1),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Numeric { left, right, .. } | Node::CatBinary { left, right, .. } => {
                1 + left.depth().max(right.depth())
            }
            Node::CatMulti { children, .. } => {
                1 + children
                    .iter()
                    .flatten()
                    .map(|c| c.depth())
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    fn route<'a>(&'a self, data: &Dataset, row: usize) -> &'a [f64] {
        match self {
            Node::Leaf { dist, .. } => dist,
            Node::Numeric {
                col,
                threshold,
                missing_left,
                left,
                right,
                ..
            } => {
                let v = data.columns()[*col].numeric_at(row).unwrap_or(f64::NAN);
                let go_left = if v.is_nan() {
                    *missing_left
                } else {
                    v <= *threshold
                };
                if go_left {
                    left.route(data, row)
                } else {
                    right.route(data, row)
                }
            }
            Node::CatMulti {
                col,
                children,
                default_child,
                dist,
            } => {
                let idx = data.columns()[*col]
                    .category_at(row)
                    .map(|c| c as usize)
                    .unwrap_or(*default_child);
                match children.get(idx).and_then(|c| c.as_ref()) {
                    Some(child) => child.route(data, row),
                    None => match children.get(*default_child).and_then(|c| c.as_ref()) {
                        Some(child) => child.route(data, row),
                        None => dist,
                    },
                }
            }
            Node::CatBinary {
                col,
                category,
                missing_left,
                left,
                right,
                ..
            } => {
                let go_left = match data.columns()[*col].category_at(row) {
                    Some(c) => c == *category,
                    None => *missing_left,
                };
                if go_left {
                    left.route(data, row)
                } else {
                    right.route(data, row)
                }
            }
        }
    }
}

/// Impurity of a class-count histogram.
fn impurity(counts: &[f64], total: f64, criterion: Criterion) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    match criterion {
        Criterion::Gini => {
            1.0 - counts
                .iter()
                .map(|&c| {
                    let p = c / total;
                    p * p
                })
                .sum::<f64>()
        }
        Criterion::InfoGain | Criterion::GainRatio => counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / total;
                -p * p.log2()
            })
            .sum(),
    }
}

struct SplitCandidate {
    score: f64,
    kind: SplitKind,
}

enum SplitKind {
    Numeric { col: usize, threshold: f64 },
    CatMulti { col: usize },
    CatBinary { col: usize, category: u32 },
}

/// The trained tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    pub params: TreeParams,
    root: Option<Node>,
    n_classes: usize,
}

impl DecisionTree {
    pub fn new(params: TreeParams) -> DecisionTree {
        DecisionTree {
            params,
            root: None,
            n_classes: 0,
        }
    }

    /// Leaves of the trained tree (0 before fit).
    pub fn n_leaves(&self) -> usize {
        self.root.as_ref().map_or(0, Node::n_leaves)
    }

    /// Depth of the trained tree (0 before fit or for a single leaf).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }

    fn build(&self, data: &Dataset, rows: &[usize], depth: usize, rng: &mut StdRng) -> Node {
        let dist = class_distribution(data, rows, 1e-9);
        let leaf = || Node::Leaf { dist: dist.clone() };
        if depth >= self.params.max_depth
            || rows.len() < self.params.min_split
            || is_pure(data, rows)
        {
            return leaf();
        }

        // Candidate attributes: the allowed set (or all), optionally
        // subsampled per node.
        let n_attrs = data.n_attrs();
        let mut attrs: Vec<usize> = match &self.params.allowed_attrs {
            Some(allowed) => allowed.iter().copied().filter(|&a| a < n_attrs).collect(),
            None => (0..n_attrs).collect(),
        };
        if let Some(k) = self.params.feature_subset {
            attrs.shuffle(rng);
            attrs.truncate(k.max(1).min(attrs.len().max(1)));
        }

        let mut best: Option<SplitCandidate> = None;
        for &col in &attrs {
            let cand = match &data.columns()[col] {
                Column::Numeric { .. } => self.best_numeric_split(data, rows, col),
                Column::Categorical { .. } => match self.params.cat_split {
                    CatSplit::Multiway => self.score_cat_multiway(data, rows, col),
                    CatSplit::Binary => self.best_cat_binary(data, rows, col),
                },
            };
            if let Some(c) = cand {
                if best.as_ref().is_none_or(|b| c.score > b.score) {
                    best = Some(c);
                }
            }
        }
        let Some(best) = best else { return leaf() };
        if best.score <= 1e-12 {
            return leaf();
        }

        match best.kind {
            SplitKind::Numeric { col, threshold } => {
                let (mut left, mut right, mut miss) = (vec![], vec![], vec![]);
                for &r in rows {
                    match data.columns()[col].numeric_at(r) {
                        Some(v) if !v.is_nan() => {
                            if v <= threshold {
                                left.push(r)
                            } else {
                                right.push(r)
                            }
                        }
                        _ => miss.push(r),
                    }
                }
                if left.len() < self.params.min_leaf || right.len() < self.params.min_leaf {
                    return leaf();
                }
                let missing_left = left.len() >= right.len();
                if missing_left {
                    left.extend(miss);
                } else {
                    right.extend(miss);
                }
                Node::Numeric {
                    col,
                    threshold,
                    missing_left,
                    left: Box::new(self.build(data, &left, depth + 1, rng)),
                    right: Box::new(self.build(data, &right, depth + 1, rng)),
                    dist,
                }
            }
            SplitKind::CatMulti { col } => {
                let k = data.columns()[col].n_categories();
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
                let mut miss = Vec::new();
                for &r in rows {
                    match data.columns()[col].category_at(r) {
                        Some(c) => buckets[c as usize].push(r),
                        None => miss.push(r),
                    }
                }
                let default_child = buckets
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.len())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                buckets[default_child].extend(miss);
                let children: Vec<Option<Box<Node>>> = buckets
                    .iter()
                    .map(|bucket| {
                        if bucket.is_empty() {
                            None
                        } else {
                            Some(Box::new(self.build(data, bucket, depth + 1, rng)))
                        }
                    })
                    .collect();
                Node::CatMulti {
                    col,
                    children,
                    default_child,
                    dist,
                }
            }
            SplitKind::CatBinary { col, category } => {
                let (mut left, mut right, mut miss) = (vec![], vec![], vec![]);
                for &r in rows {
                    match data.columns()[col].category_at(r) {
                        Some(c) if c == category => left.push(r),
                        Some(_) => right.push(r),
                        None => miss.push(r),
                    }
                }
                if left.len() < self.params.min_leaf || right.len() < self.params.min_leaf {
                    return leaf();
                }
                let missing_left = left.len() >= right.len();
                if missing_left {
                    left.extend(miss);
                } else {
                    right.extend(miss);
                }
                Node::CatBinary {
                    col,
                    category,
                    missing_left,
                    left: Box::new(self.build(data, &left, depth + 1, rng)),
                    right: Box::new(self.build(data, &right, depth + 1, rng)),
                    dist,
                }
            }
        }
    }

    /// Gain of splitting `rows` into the given per-branch class-count
    /// histograms, under the configured criterion.
    fn gain(&self, parent_counts: &[f64], branches: &[Vec<f64>]) -> f64 {
        let total: f64 = parent_counts.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let parent_imp = impurity(parent_counts, total, self.params.criterion);
        let mut child_imp = 0.0;
        let mut split_info = 0.0;
        for counts in branches {
            let bt: f64 = counts.iter().sum();
            if bt <= 0.0 {
                continue;
            }
            child_imp += bt / total * impurity(counts, bt, self.params.criterion);
            let p = bt / total;
            split_info -= p * p.log2();
        }
        let gain = parent_imp - child_imp;
        match self.params.criterion {
            Criterion::GainRatio => {
                if split_info < 1e-9 {
                    0.0
                } else {
                    gain / split_info
                }
            }
            _ => gain,
        }
    }

    fn best_numeric_split(
        &self,
        data: &Dataset,
        rows: &[usize],
        col: usize,
    ) -> Option<SplitCandidate> {
        let column = &data.columns()[col];
        let mut pairs: Vec<(f64, usize)> = rows
            .iter()
            .filter_map(|&r| {
                column
                    .numeric_at(r)
                    .filter(|v| !v.is_nan())
                    .map(|v| (v, data.label(r)))
            })
            .collect();
        if pairs.len() < 2 * self.params.min_leaf {
            return None;
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let parent = {
            let mut c = vec![0.0; self.n_classes];
            for &(_, l) in &pairs {
                c[l] += 1.0;
            }
            c
        };
        let mut left = vec![0.0; self.n_classes];
        let mut right = parent.clone();
        let mut best: Option<(f64, f64)> = None; // (score, threshold)
        for i in 0..pairs.len() - 1 {
            left[pairs[i].1] += 1.0;
            right[pairs[i].1] -= 1.0;
            if pairs[i].0 == pairs[i + 1].0 {
                continue;
            }
            if (i + 1) < self.params.min_leaf || (pairs.len() - i - 1) < self.params.min_leaf {
                continue;
            }
            let score = self.gain(&parent, &[left.clone(), right.clone()]);
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, (pairs[i].0 + pairs[i + 1].0) / 2.0));
            }
        }
        best.map(|(score, threshold)| SplitCandidate {
            score,
            kind: SplitKind::Numeric { col, threshold },
        })
    }

    fn score_cat_multiway(
        &self,
        data: &Dataset,
        rows: &[usize],
        col: usize,
    ) -> Option<SplitCandidate> {
        let column = &data.columns()[col];
        let k = column.n_categories();
        if k < 2 {
            return None;
        }
        let mut branches = vec![vec![0.0; self.n_classes]; k];
        let mut parent = vec![0.0; self.n_classes];
        for &r in rows {
            if let Some(c) = column.category_at(r) {
                branches[c as usize][data.label(r)] += 1.0;
                parent[data.label(r)] += 1.0;
            }
        }
        let observed = branches
            .iter()
            .filter(|b| b.iter().sum::<f64>() > 0.0)
            .count();
        if observed < 2 {
            return None;
        }
        let score = self.gain(&parent, &branches);
        Some(SplitCandidate {
            score,
            kind: SplitKind::CatMulti { col },
        })
    }

    fn best_cat_binary(
        &self,
        data: &Dataset,
        rows: &[usize],
        col: usize,
    ) -> Option<SplitCandidate> {
        let column = &data.columns()[col];
        let k = column.n_categories();
        if k < 2 {
            return None;
        }
        let mut per_cat = vec![vec![0.0; self.n_classes]; k];
        let mut parent = vec![0.0; self.n_classes];
        for &r in rows {
            if let Some(c) = column.category_at(r) {
                per_cat[c as usize][data.label(r)] += 1.0;
                parent[data.label(r)] += 1.0;
            }
        }
        let total: f64 = parent.iter().sum();
        let mut best: Option<(f64, u32)> = None;
        for (cat, counts) in per_cat.iter().enumerate() {
            let in_total: f64 = counts.iter().sum();
            if in_total < self.params.min_leaf as f64
                || total - in_total < self.params.min_leaf as f64
            {
                continue;
            }
            let rest: Vec<f64> = parent.iter().zip(counts).map(|(p, c)| p - c).collect();
            let score = self.gain(&parent, &[counts.clone(), rest]);
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, cat as u32));
            }
        }
        best.map(|(score, category)| SplitCandidate {
            score,
            kind: SplitKind::CatBinary { col, category },
        })
    }

    /// Bottom-up reduced-error pruning against `prune_rows`.
    fn prune_reduced_error(node: Node, data: &Dataset, prune_rows: &[usize]) -> Node {
        match node {
            Node::Leaf { .. } => node,
            _ => {
                // Partition prune rows among children, recurse, then decide.
                let node = match node {
                    Node::Numeric {
                        col,
                        threshold,
                        missing_left,
                        left,
                        right,
                        dist,
                    } => {
                        let (mut lrows, mut rrows) = (vec![], vec![]);
                        for &r in prune_rows {
                            let v = data.columns()[col].numeric_at(r).unwrap_or(f64::NAN);
                            let go_left = if v.is_nan() {
                                missing_left
                            } else {
                                v <= threshold
                            };
                            if go_left {
                                lrows.push(r)
                            } else {
                                rrows.push(r)
                            }
                        }
                        Node::Numeric {
                            col,
                            threshold,
                            missing_left,
                            left: Box::new(Self::prune_reduced_error(*left, data, &lrows)),
                            right: Box::new(Self::prune_reduced_error(*right, data, &rrows)),
                            dist,
                        }
                    }
                    Node::CatBinary {
                        col,
                        category,
                        missing_left,
                        left,
                        right,
                        dist,
                    } => {
                        let (mut lrows, mut rrows) = (vec![], vec![]);
                        for &r in prune_rows {
                            let go_left = match data.columns()[col].category_at(r) {
                                Some(c) => c == category,
                                None => missing_left,
                            };
                            if go_left {
                                lrows.push(r)
                            } else {
                                rrows.push(r)
                            }
                        }
                        Node::CatBinary {
                            col,
                            category,
                            missing_left,
                            left: Box::new(Self::prune_reduced_error(*left, data, &lrows)),
                            right: Box::new(Self::prune_reduced_error(*right, data, &rrows)),
                            dist,
                        }
                    }
                    Node::CatMulti {
                        col,
                        children,
                        default_child,
                        dist,
                    } => {
                        let k = children.len();
                        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
                        for &r in prune_rows {
                            let idx = data.columns()[col]
                                .category_at(r)
                                .map(|c| c as usize)
                                .unwrap_or(default_child);
                            buckets[idx.min(k.saturating_sub(1))].push(r);
                        }
                        let children = children
                            .into_iter()
                            .zip(buckets.iter())
                            .map(|(child, bucket)| {
                                child.map(|c| Box::new(Self::prune_reduced_error(*c, data, bucket)))
                            })
                            .collect();
                        Node::CatMulti {
                            col,
                            children,
                            default_child,
                            dist,
                        }
                    }
                    leaf @ Node::Leaf { .. } => leaf,
                };
                // Compare subtree vs collapsed leaf on the prune rows.
                if prune_rows.is_empty() {
                    return node;
                }
                let subtree_errors = prune_rows
                    .iter()
                    .filter(|&&r| {
                        let dist = node.route(data, r);
                        argmax(dist) != data.label(r)
                    })
                    .count();
                let dist = node.dist().to_vec();
                let leaf_class = argmax(&dist);
                let leaf_errors = prune_rows
                    .iter()
                    .filter(|&&r| data.label(r) != leaf_class)
                    .count();
                if leaf_errors <= subtree_errors {
                    Node::Leaf { dist }
                } else {
                    node
                }
            }
        }
    }

    /// C4.5-style pessimistic pruning on training counts: collapse a subtree
    /// whenever `leaf_errors + penalty ≤ subtree_errors + penalty × leaves`.
    fn prune_pessimistic(node: Node, data: &Dataset, rows: &[usize], penalty: f64) -> Node {
        match node {
            Node::Leaf { .. } => node,
            _ => {
                let node = match node {
                    Node::Numeric {
                        col,
                        threshold,
                        missing_left,
                        left,
                        right,
                        dist,
                    } => {
                        let (mut lrows, mut rrows) = (vec![], vec![]);
                        for &r in rows {
                            let v = data.columns()[col].numeric_at(r).unwrap_or(f64::NAN);
                            let go_left = if v.is_nan() {
                                missing_left
                            } else {
                                v <= threshold
                            };
                            if go_left {
                                lrows.push(r)
                            } else {
                                rrows.push(r)
                            }
                        }
                        Node::Numeric {
                            col,
                            threshold,
                            missing_left,
                            left: Box::new(Self::prune_pessimistic(*left, data, &lrows, penalty)),
                            right: Box::new(Self::prune_pessimistic(*right, data, &rrows, penalty)),
                            dist,
                        }
                    }
                    Node::CatBinary {
                        col,
                        category,
                        missing_left,
                        left,
                        right,
                        dist,
                    } => {
                        let (mut lrows, mut rrows) = (vec![], vec![]);
                        for &r in rows {
                            let go_left = match data.columns()[col].category_at(r) {
                                Some(c) => c == category,
                                None => missing_left,
                            };
                            if go_left {
                                lrows.push(r)
                            } else {
                                rrows.push(r)
                            }
                        }
                        Node::CatBinary {
                            col,
                            category,
                            missing_left,
                            left: Box::new(Self::prune_pessimistic(*left, data, &lrows, penalty)),
                            right: Box::new(Self::prune_pessimistic(*right, data, &rrows, penalty)),
                            dist,
                        }
                    }
                    Node::CatMulti {
                        col,
                        children,
                        default_child,
                        dist,
                    } => {
                        let k = children.len();
                        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
                        for &r in rows {
                            let idx = data.columns()[col]
                                .category_at(r)
                                .map(|c| c as usize)
                                .unwrap_or(default_child);
                            buckets[idx.min(k.saturating_sub(1))].push(r);
                        }
                        let children = children
                            .into_iter()
                            .zip(buckets.iter())
                            .map(|(child, bucket)| {
                                child.map(|c| {
                                    Box::new(Self::prune_pessimistic(*c, data, bucket, penalty))
                                })
                            })
                            .collect();
                        Node::CatMulti {
                            col,
                            children,
                            default_child,
                            dist,
                        }
                    }
                    leaf @ Node::Leaf { .. } => leaf,
                };
                if rows.is_empty() {
                    return node;
                }
                let subtree_errors = rows
                    .iter()
                    .filter(|&&r| argmax(node.route(data, r)) != data.label(r))
                    .count() as f64;
                let dist = node.dist().to_vec();
                let leaf_class = argmax(&dist);
                let leaf_errors = rows
                    .iter()
                    .filter(|&&r| data.label(r) != leaf_class)
                    .count() as f64;
                let n_leaves = node.n_leaves() as f64;
                if leaf_errors + penalty <= subtree_errors + penalty * n_leaves {
                    Node::Leaf { dist }
                } else {
                    node
                }
            }
        }
    }
}

fn is_pure(data: &Dataset, rows: &[usize]) -> bool {
    let mut it = rows.iter();
    let Some(&first) = it.next() else { return true };
    let label = data.label(first);
    it.all(|&r| data.label(r) == label)
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset, rows: &[usize]) -> Result<(), MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = data.n_classes();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let root = match self.params.pruning {
            Pruning::ReducedError { fraction } if rows.len() >= 10 => {
                let mut shuffled = rows.to_vec();
                shuffled.shuffle(&mut rng);
                let n_prune = ((rows.len() as f64 * fraction.clamp(0.05, 0.5)).round() as usize)
                    .clamp(1, rows.len() - 1);
                let (prune_rows, grow_rows) = shuffled.split_at(n_prune);
                let grown = self.build(data, grow_rows, 0, &mut rng);
                DecisionTree::prune_reduced_error(grown, data, prune_rows)
            }
            Pruning::Pessimistic { penalty } => {
                let grown = self.build(data, rows, 0, &mut rng);
                DecisionTree::prune_pessimistic(grown, data, rows, penalty.max(0.0))
            }
            _ => self.build(data, rows, 0, &mut rng),
        };
        self.root = Some(root);
        Ok(())
    }

    fn predict(&self, data: &Dataset, row: usize) -> usize {
        argmax(self.predict_proba(data, row).as_slice())
    }

    fn predict_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        match &self.root {
            Some(root) => root.route(data, row).to_vec(),
            None => vec![0.0; data.n_classes().max(1)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::accuracy_on;
    use automodel_data::dataset::default_class_names;
    use automodel_data::{SynthFamily, SynthSpec};

    fn all_rows(d: &Dataset) -> Vec<usize> {
        (0..d.n_rows()).collect()
    }

    #[test]
    fn fits_axis_aligned_numeric_boundary_perfectly() {
        let d = Dataset::builder("t")
            .numeric("x", (0..40).map(|i| i as f64).collect())
            .target(
                "y",
                (0..40).map(|i| usize::from(i >= 20)).collect(),
                default_class_names(2),
            )
            .unwrap();
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d, &all_rows(&d)).unwrap();
        assert_eq!(accuracy_on(&tree, &d, &all_rows(&d)), 1.0);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.n_leaves(), 2);
    }

    #[test]
    fn multiway_categorical_split_separates_categories() {
        let d = Dataset::builder("c")
            .categorical(
                "color",
                vec![0, 0, 1, 1, 2, 2, 0, 1, 2],
                vec!["r".into(), "g".into(), "b".into()],
            )
            .target("y", vec![0, 0, 1, 1, 2, 2, 0, 1, 2], default_class_names(3))
            .unwrap();
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d, &all_rows(&d)).unwrap();
        assert_eq!(accuracy_on(&tree, &d, &all_rows(&d)), 1.0);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn binary_cat_split_mode_also_separates() {
        let d = Dataset::builder("c")
            .categorical(
                "color",
                vec![0, 0, 1, 1, 2, 2],
                vec!["r".into(), "g".into(), "b".into()],
            )
            .target("y", vec![0, 0, 1, 1, 1, 1], default_class_names(2))
            .unwrap();
        let mut tree = DecisionTree::new(TreeParams {
            cat_split: CatSplit::Binary,
            criterion: Criterion::Gini,
            ..TreeParams::default()
        });
        tree.fit(&d, &all_rows(&d)).unwrap();
        assert_eq!(accuracy_on(&tree, &d, &all_rows(&d)), 1.0);
    }

    #[test]
    fn max_depth_caps_growth() {
        let spec = SynthSpec::new("x", 200, 5, 0, 2, SynthFamily::Xor { dims: 2 }, 3);
        let d = spec.generate();
        let mut tree = DecisionTree::new(TreeParams {
            max_depth: 2,
            ..TreeParams::default()
        });
        tree.fit(&d, &all_rows(&d)).unwrap();
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn solves_xor_which_defeats_stumps() {
        let spec = SynthSpec::new("x", 400, 2, 0, 2, SynthFamily::Xor { dims: 2 }, 5);
        let d = spec.generate();
        let mut deep = DecisionTree::new(TreeParams::default());
        deep.fit(&d, &all_rows(&d)).unwrap();
        let deep_acc = accuracy_on(&deep, &d, &all_rows(&d));
        assert!(deep_acc > 0.95, "deep tree accuracy = {deep_acc}");
        let mut stump = DecisionTree::new(TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        });
        stump.fit(&d, &all_rows(&d)).unwrap();
        let stump_acc = accuracy_on(&stump, &d, &all_rows(&d));
        assert!(stump_acc < 0.7, "stump should fail xor, got {stump_acc}");
    }

    #[test]
    fn reduced_error_pruning_shrinks_noisy_trees() {
        let spec =
            SynthSpec::new("n", 400, 4, 0, 2, SynthFamily::Hyperplane, 7).with_label_noise(0.25);
        let d = spec.generate();
        let mut unpruned = DecisionTree::new(TreeParams::default());
        unpruned.fit(&d, &all_rows(&d)).unwrap();
        let mut pruned = DecisionTree::new(TreeParams {
            pruning: Pruning::ReducedError { fraction: 0.3 },
            ..TreeParams::default()
        });
        pruned.fit(&d, &all_rows(&d)).unwrap();
        assert!(
            pruned.n_leaves() < unpruned.n_leaves(),
            "pruned {} vs unpruned {}",
            pruned.n_leaves(),
            unpruned.n_leaves()
        );
    }

    #[test]
    fn pessimistic_pruning_shrinks_noisy_trees() {
        let spec =
            SynthSpec::new("n", 400, 4, 0, 2, SynthFamily::Hyperplane, 9).with_label_noise(0.25);
        let d = spec.generate();
        let mut unpruned = DecisionTree::new(TreeParams::default());
        unpruned.fit(&d, &all_rows(&d)).unwrap();
        let mut pruned = DecisionTree::new(TreeParams {
            pruning: Pruning::Pessimistic { penalty: 0.5 },
            ..TreeParams::default()
        });
        pruned.fit(&d, &all_rows(&d)).unwrap();
        assert!(pruned.n_leaves() < unpruned.n_leaves());
    }

    #[test]
    fn handles_missing_values_at_fit_and_predict() {
        let spec = SynthSpec::new("m", 300, 3, 2, 2, SynthFamily::Mixed, 11).with_missing(0.2);
        let d = spec.generate();
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d, &all_rows(&d)).unwrap();
        let acc = accuracy_on(&tree, &d, &all_rows(&d));
        assert!(acc > 0.6, "accuracy with missing data = {acc}");
    }

    #[test]
    fn duplicate_rows_act_as_weights() {
        // Row 0 has label 1 among many label-0 rows; duplicating it should
        // flip the majority at the root leaf of a stump trained on a
        // constant attribute.
        let d = Dataset::builder("w")
            .numeric("x", vec![1.0; 5])
            .target("y", vec![1, 0, 0, 0, 0], default_class_names(2))
            .unwrap();
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(tree.predict(&d, 1), 0);
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&d, &[0, 0, 0, 0, 0, 0, 1, 2, 3, 4]).unwrap();
        assert_eq!(tree.predict(&d, 1), 1);
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let d = SynthSpec::new("e", 10, 2, 0, 2, SynthFamily::Hyperplane, 1).generate();
        let mut tree = DecisionTree::new(TreeParams::default());
        assert_eq!(tree.fit(&d, &[]), Err(MlError::EmptyTrainingSet));
    }

    #[test]
    fn feature_subset_trees_differ_across_seeds() {
        let spec = SynthSpec::new("r", 300, 8, 0, 2, SynthFamily::Hyperplane, 13);
        let d = spec.generate();
        // Compare on held-out rows: on training rows both unpruned trees
        // memorize the labels and agree trivially.
        let train: Vec<usize> = (0..200).collect();
        let preds = |seed: u64| -> Vec<usize> {
            let mut tree = DecisionTree::new(TreeParams {
                feature_subset: Some(2),
                max_depth: 4,
                seed,
                ..TreeParams::default()
            });
            tree.fit(&d, &train).unwrap();
            (200..d.n_rows()).map(|r| tree.predict(&d, r)).collect()
        };
        assert_ne!(preds(1), preds(2), "random trees should differ by seed");
    }

    #[test]
    fn gain_ratio_discourages_high_arity_splits() {
        // An id-like attribute (every row its own category) has maximal info
        // gain but maximal split info; gain ratio must prefer the real signal.
        let n = 24;
        let id_values: Vec<u32> = (0..n as u32).collect();
        let signal: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let d = Dataset::builder("gr")
            .categorical("id", id_values, (0..n).map(|i| format!("i{i}")).collect())
            .categorical("signal", signal, vec!["a".into(), "b".into()])
            .target("y", labels, default_class_names(2))
            .unwrap();
        let mut tree = DecisionTree::new(TreeParams {
            criterion: Criterion::GainRatio,
            max_depth: 1,
            ..TreeParams::default()
        });
        tree.fit(&d, &all_rows(&d)).unwrap();
        // Splitting on `signal` classifies held-out-style rows correctly;
        // verify by checking the tree is perfect (id split at depth 1 would
        // also be perfect on train) AND that unseen categories fall back
        // sanely — rely on leaf count: signal split has 2 leaves, id has 24.
        assert_eq!(tree.n_leaves(), 2, "gain ratio should pick the binary attr");
    }
}
