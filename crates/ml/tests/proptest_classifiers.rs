//! Property tests: classifier contract across the fast registry and
//! arbitrary dataset shapes — fit never panics on applicable data,
//! predictions are in range, probability vectors are distributions.

use automodel_data::{SynthFamily, SynthSpec};
use automodel_ml::Registry;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SynthSpec> {
    (
        prop_oneof![
            Just(SynthFamily::GaussianBlobs { spread: 1.0 }),
            Just(SynthFamily::Hyperplane),
            Just(SynthFamily::RuleBased { depth: 3 }),
            Just(SynthFamily::Mixed),
        ],
        30usize..120,
        0usize..5,
        0usize..4,
        2usize..4,
        0.0f64..0.25, // missing rate
        0u64..5_000,
    )
        .prop_map(|(family, rows, numeric, categorical, classes, missing, seed)| {
            let numeric = if numeric + categorical == 0 { 2 } else { numeric };
            SynthSpec::new("prop", rows.max(classes * 5), numeric, categorical, classes, family, seed)
                .with_missing(missing)
        })
}

proptest! {
    // Each case fits 8 classifiers; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_fast_registry_classifier_upholds_the_contract(spec in spec_strategy()) {
        let data = spec.generate();
        let registry = Registry::fast();
        let train: Vec<usize> = (0..data.n_rows() * 3 / 4).collect();
        let test: Vec<usize> = (data.n_rows() * 3 / 4..data.n_rows()).collect();
        for alg in registry.iter() {
            if alg.check_applicable(&data).is_err() {
                continue;
            }
            let mut model = alg.build(&alg.default_config(), 7);
            model.fit(&data, &train).unwrap_or_else(|e| {
                panic!("{} failed to fit: {e}", alg.name())
            });
            for &r in &test {
                let pred = model.predict(&data, r);
                prop_assert!(pred < data.n_classes(), "{}: class {} out of range", alg.name(), pred);
                let proba = model.predict_proba(&data, r);
                prop_assert_eq!(proba.len(), data.n_classes(), "{}", alg.name());
                let sum: f64 = proba.iter().sum();
                prop_assert!(
                    (sum - 1.0).abs() < 1e-6,
                    "{}: probabilities sum to {sum}",
                    alg.name()
                );
                prop_assert!(
                    proba.iter().all(|&p| (-1e-9..=1.0 + 1e-9).contains(&p)),
                    "{}: probability out of [0,1]: {proba:?}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn random_configs_build_and_fit(seed in 0u64..2_000) {
        // Sample one random configuration per algorithm: builders must
        // accept anything the space can produce.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let data = SynthSpec::new("cfg", 60, 3, 1, 2, SynthFamily::Mixed, seed).generate();
        let registry = Registry::fast();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<usize> = (0..50).collect();
        for alg in registry.iter() {
            let config = alg.param_space().sample(&mut rng);
            let mut model = alg.build(&config, seed);
            model.fit(&data, &rows).unwrap_or_else(|e| {
                panic!("{} with {config} failed: {e}", alg.name())
            });
            let pred = model.predict(&data, 55);
            prop_assert!(pred < 2);
        }
    }

    #[test]
    fn cross_validation_is_within_bounds(spec in spec_strategy(), seed in 0u64..100) {
        let data = spec.generate();
        let registry = Registry::fast();
        let alg = registry.get("NaiveBayes").unwrap();
        let config = alg.default_config();
        let acc = automodel_ml::cross_val_accuracy(
            || alg.build(&config, seed),
            &data,
            3,
            seed,
        ).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}
