//! Seeded property tests: classifier contract across the fast registry and
//! arbitrary dataset shapes — fit never panics on applicable data,
//! predictions are in range, probability vectors are distributions.
//! Cases are generated from explicit seeds (no proptest: the build is
//! offline, and deterministic replay is a workspace invariant).

use automodel_data::{SynthFamily, SynthSpec};
use automodel_ml::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_spec(rng: &mut StdRng) -> SynthSpec {
    let family = match rng.gen_range(0..4usize) {
        0 => SynthFamily::GaussianBlobs { spread: 1.0 },
        1 => SynthFamily::Hyperplane,
        2 => SynthFamily::RuleBased { depth: 3 },
        _ => SynthFamily::Mixed,
    };
    let rows = rng.gen_range(30usize..120);
    let numeric = rng.gen_range(0usize..5);
    let categorical = rng.gen_range(0usize..4);
    let classes = rng.gen_range(2usize..4);
    let missing = rng.gen_range(0.0f64..0.25);
    let seed = rng.gen_range(0u64..5_000);
    let numeric = if numeric + categorical == 0 {
        2
    } else {
        numeric
    };
    SynthSpec::new(
        "prop",
        rows.max(classes * 5),
        numeric,
        categorical,
        classes,
        family,
        seed,
    )
    .with_missing(missing)
}

fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

// Each case fits the whole fast registry; keep the case count moderate.
#[test]
fn every_fast_registry_classifier_upholds_the_contract() {
    for case in 0..24u64 {
        let mut rng = case_rng(31, case);
        let spec = random_spec(&mut rng);
        let data = spec.generate();
        let registry = Registry::fast();
        let train: Vec<usize> = (0..data.n_rows() * 3 / 4).collect();
        let test: Vec<usize> = (data.n_rows() * 3 / 4..data.n_rows()).collect();
        for alg in registry.iter() {
            if alg.check_applicable(&data).is_err() {
                continue;
            }
            let mut model = alg.build(&alg.default_config(), 7);
            model
                .fit(&data, &train)
                .unwrap_or_else(|e| panic!("case {case}: {} failed to fit: {e}", alg.name()));
            for &r in &test {
                let pred = model.predict(&data, r);
                assert!(
                    pred < data.n_classes(),
                    "case {case}: {}: class {} out of range",
                    alg.name(),
                    pred
                );
                let proba = model.predict_proba(&data, r);
                assert_eq!(proba.len(), data.n_classes(), "case {case}: {}", alg.name());
                let sum: f64 = proba.iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-6,
                    "case {case}: {}: probabilities sum to {sum}",
                    alg.name()
                );
                assert!(
                    proba.iter().all(|&p| (-1e-9..=1.0 + 1e-9).contains(&p)),
                    "case {case}: {}: probability out of [0,1]: {proba:?}",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn random_configs_build_and_fit() {
    // Sample one random configuration per algorithm: builders must accept
    // anything the space can produce.
    for seed in 0..24u64 {
        let data = SynthSpec::new("cfg", 60, 3, 1, 2, SynthFamily::Mixed, seed).generate();
        let registry = Registry::fast();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<usize> = (0..50).collect();
        for alg in registry.iter() {
            let config = alg.param_space().sample(&mut rng);
            let mut model = alg.build(&config, seed);
            model
                .fit(&data, &rows)
                .unwrap_or_else(|e| panic!("{} with {config} failed: {e}", alg.name()));
            let pred = model.predict(&data, 55);
            assert!(pred < 2, "seed {seed}: {}", alg.name());
        }
    }
}

#[test]
fn cross_validation_is_within_bounds() {
    for case in 0..12u64 {
        let mut rng = case_rng(33, case);
        let spec = random_spec(&mut rng);
        let seed = rng.gen_range(0u64..100);
        let data = spec.generate();
        let registry = Registry::fast();
        let alg = registry.get("NaiveBayes").unwrap();
        let config = alg.default_config();
        let acc =
            automodel_ml::cross_val_accuracy(|| alg.build(&config, seed), &data, 3, seed).unwrap();
        assert!((0.0..=1.0).contains(&acc), "case {case}: acc = {acc}");
    }
}
