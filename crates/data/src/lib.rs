//! # automodel-data
//!
//! Tabular dataset substrate for the Auto-Model reproduction.
//!
//! The paper assumes Weka's ARFF data stack: classification datasets with a
//! mix of numeric and categorical ("nominal") attributes, possibly missing
//! values, and a categorical target. This crate provides:
//!
//! * [`Dataset`] — a columnar in-memory dataset with numeric and categorical
//!   columns and a class target ([`dataset`]).
//! * The 23 task-instance meta-features of the paper's Table III
//!   ([`features`]).
//! * Stratified k-fold cross-validation and train/test splitting ([`folds`]).
//! * Synthetic dataset generators ([`synth`]) and the paper's dataset suites
//!   ([`suites`]) — the 21 test datasets of Table XI cloned by *shape*
//!   (records, numeric/categorical attribute counts, classes) plus the
//!   69-dataset knowledge suite.
//! * Dense numeric encoding (standardization + one-hot) shared by the
//!   function-family and neural classifiers ([`encoding`]).
//! * A minimal typed CSV reader/writer ([`csv`]).

pub mod csv;
pub mod dataset;
pub mod encoding;
pub mod error;
pub mod features;
pub mod folds;
pub mod subsample;
pub mod suites;
pub mod synth;

pub use dataset::{ClassId, Column, Dataset, DatasetBuilder, Target};
pub use error::DataError;
pub use features::{meta_features, FeatureVector, FEATURE_COUNT, FEATURE_NAMES};
pub use folds::{
    check_class_support, stratified_kfold, stratified_kfold_checked, train_test_split, FoldPlan,
};
pub use subsample::stratified_nested_rows;
pub use synth::{SynthFamily, SynthSpec};
