//! Columnar classification dataset.
//!
//! A [`Dataset`] stores *common attributes* (the paper's terminology for
//! non-target attributes) as typed columns plus a categorical [`Target`].
//! Missing numeric values are `NaN`; missing categorical values use the
//! [`MISSING_CATEGORY`] sentinel. Classifiers access rows by index so that
//! cross-validation never copies data.

use crate::error::DataError;
use serde::{Deserialize, Serialize};

/// Class label index into [`Target::classes`].
pub type ClassId = usize;

/// Sentinel for a missing categorical cell.
pub const MISSING_CATEGORY: u32 = u32::MAX;

/// A single attribute column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Numeric ("numeral" in the paper) attribute; `NaN` encodes missing.
    Numeric { name: String, values: Vec<f64> },
    /// Categorical (nominal) attribute; `MISSING_CATEGORY` encodes missing.
    Categorical {
        name: String,
        values: Vec<u32>,
        categories: Vec<String>,
    },
}

impl Column {
    /// Attribute name.
    pub fn name(&self) -> &str {
        match self {
            Column::Numeric { name, .. } | Column::Categorical { name, .. } => name,
        }
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric { values, .. } => values.len(),
            Column::Categorical { values, .. } => values.len(),
        }
    }

    /// True when the column stores no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for numeric columns.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Column::Numeric { .. })
    }

    /// True for categorical columns.
    pub fn is_categorical(&self) -> bool {
        matches!(self, Column::Categorical { .. })
    }

    /// Numeric value at `row` (possibly `NaN`), or `None` for categorical columns.
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Numeric { values, .. } => values.get(row).copied(),
            Column::Categorical { .. } => None,
        }
    }

    /// Categorical value at `row`; `None` for numeric columns or a missing cell.
    pub fn category_at(&self, row: usize) -> Option<u32> {
        match self {
            Column::Categorical { values, .. } => {
                values.get(row).copied().filter(|&v| v != MISSING_CATEGORY)
            }
            Column::Numeric { .. } => None,
        }
    }

    /// Number of distinct categories a categorical column can take
    /// (0 for numeric columns).
    pub fn n_categories(&self) -> usize {
        match self {
            Column::Categorical { categories, .. } => categories.len(),
            Column::Numeric { .. } => 0,
        }
    }

    /// True when the cell at `row` is missing.
    pub fn is_missing(&self, row: usize) -> bool {
        match self {
            Column::Numeric { values, .. } => values.get(row).is_none_or(|v| v.is_nan()),
            Column::Categorical { values, .. } => {
                values.get(row).is_none_or(|&v| v == MISSING_CATEGORY)
            }
        }
    }

    fn subset(&self, rows: &[usize]) -> Column {
        match self {
            Column::Numeric { name, values } => Column::Numeric {
                name: name.clone(),
                values: rows.iter().map(|&r| values[r]).collect(),
            },
            Column::Categorical {
                name,
                values,
                categories,
            } => Column::Categorical {
                name: name.clone(),
                values: rows.iter().map(|&r| values[r]).collect(),
                categories: categories.clone(),
            },
        }
    }
}

/// The class (target) attribute. Labels are dense indices into `classes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Target {
    pub name: String,
    pub labels: Vec<ClassId>,
    pub classes: Vec<String>,
}

impl Target {
    /// Per-class record counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes.len()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// A classification dataset: named columns plus a class target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    columns: Vec<Column>,
    target: Target,
    n_rows: usize,
}

impl Dataset {
    /// Start building a dataset.
    pub fn builder(name: impl Into<String>) -> DatasetBuilder {
        DatasetBuilder {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Dataset name (the paper's task-instance identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records `m`.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of common attributes `n`.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Number of target classes.
    pub fn n_classes(&self) -> usize {
        self.target.classes.len()
    }

    /// All common-attribute columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, i: usize) -> Result<&Column, DataError> {
        self.columns.get(i).ok_or(DataError::ColumnOutOfBounds {
            column: i,
            n_columns: self.columns.len(),
        })
    }

    /// The class target.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Class label of `row`.
    pub fn label(&self, row: usize) -> ClassId {
        self.target.labels[row]
    }

    /// Indices of numeric columns.
    pub fn numeric_columns(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&i| self.columns[i].is_numeric())
            .collect()
    }

    /// Indices of categorical columns.
    pub fn categorical_columns(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&i| self.columns[i].is_categorical())
            .collect()
    }

    /// Per-class record counts.
    pub fn class_counts(&self) -> Vec<usize> {
        self.target.class_counts()
    }

    /// Fraction of cells (over all columns) that are missing.
    pub fn missing_rate(&self) -> f64 {
        if self.n_rows == 0 || self.columns.is_empty() {
            return 0.0;
        }
        let mut missing = 0usize;
        for col in &self.columns {
            for row in 0..self.n_rows {
                if col.is_missing(row) {
                    missing += 1;
                }
            }
        }
        missing as f64 / (self.n_rows * self.columns.len()) as f64
    }

    /// Materialize a row-subset as a new dataset (categories and classes are
    /// preserved verbatim so label indices stay comparable).
    pub fn subset(&self, rows: &[usize]) -> Result<Dataset, DataError> {
        for &r in rows {
            if r >= self.n_rows {
                return Err(DataError::RowOutOfBounds {
                    row: r,
                    n_rows: self.n_rows,
                });
            }
        }
        Ok(Dataset {
            name: self.name.clone(),
            columns: self.columns.iter().map(|c| c.subset(rows)).collect(),
            target: Target {
                name: self.target.name.clone(),
                labels: rows.iter().map(|&r| self.target.labels[r]).collect(),
                classes: self.target.classes.clone(),
            },
            n_rows: rows.len(),
        })
    }

    /// Sample without replacement at most `n` rows, stratified by class where
    /// possible, using the supplied RNG. Used to cap the cost of meta-feature
    /// extraction and evaluation-time probes on very large datasets.
    pub fn sample_rows<R: rand::Rng>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        use rand::seq::SliceRandom;
        if n >= self.n_rows {
            return (0..self.n_rows).collect();
        }
        // Stratified: keep each class's share, at least one row per observed class.
        let counts = self.class_counts();
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for row in 0..self.n_rows {
            per_class[self.label(row)].push(row);
        }
        let mut picked = Vec::with_capacity(n);
        for (c, rows) in per_class.iter_mut().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let share = ((counts[c] as f64 / self.n_rows as f64) * n as f64)
                .round()
                .max(1.0) as usize;
            rows.shuffle(rng);
            picked.extend(rows.iter().take(share.min(rows.len())).copied());
        }
        picked.shuffle(rng);
        picked.truncate(n);
        picked.sort_unstable();
        picked
    }
}

/// Builder that validates column lengths and class indices.
pub struct DatasetBuilder {
    name: String,
    columns: Vec<Column>,
}

impl DatasetBuilder {
    /// Add a numeric column (`NaN` = missing).
    pub fn numeric(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.columns.push(Column::Numeric {
            name: name.into(),
            values,
        });
        self
    }

    /// Add a categorical column (`MISSING_CATEGORY` = missing).
    pub fn categorical(
        mut self,
        name: impl Into<String>,
        values: Vec<u32>,
        categories: Vec<String>,
    ) -> Self {
        self.columns.push(Column::Categorical {
            name: name.into(),
            values,
            categories,
        });
        self
    }

    /// Finish with the given target. Validates all lengths and indices.
    pub fn target(
        self,
        name: impl Into<String>,
        labels: Vec<ClassId>,
        classes: Vec<String>,
    ) -> Result<Dataset, DataError> {
        let n_rows = labels.len();
        if classes.is_empty() {
            return Err(DataError::Empty("no classes".into()));
        }
        for col in &self.columns {
            if col.len() != n_rows {
                return Err(DataError::LengthMismatch {
                    column: col.name().to_string(),
                    expected: n_rows,
                    actual: col.len(),
                });
            }
            if let Column::Categorical {
                name,
                values,
                categories,
            } = col
            {
                for &v in values {
                    if v != MISSING_CATEGORY && v as usize >= categories.len() {
                        return Err(DataError::BadCategory {
                            column: name.clone(),
                            index: v,
                        });
                    }
                }
            }
        }
        for &l in &labels {
            if l >= classes.len() {
                return Err(DataError::BadClass {
                    index: l,
                    n_classes: classes.len(),
                });
            }
        }
        Ok(Dataset {
            name: self.name,
            columns: self.columns,
            target: Target {
                name: name.into(),
                labels,
                classes,
            },
            n_rows,
        })
    }
}

/// Convenience: generic class names `c0..c{n-1}`.
pub fn default_class_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("c{i}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::builder("tiny")
            .numeric("x", vec![1.0, 2.0, f64::NAN, 4.0])
            .categorical(
                "color",
                vec![0, 1, MISSING_CATEGORY, 0],
                vec!["red".into(), "blue".into()],
            )
            .target("y", vec![0, 1, 0, 1], default_class_names(2))
            .unwrap()
    }

    #[test]
    fn builder_validates_lengths() {
        let err = Dataset::builder("bad")
            .numeric("x", vec![1.0, 2.0])
            .target("y", vec![0, 1, 0], default_class_names(2))
            .unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn builder_validates_class_indices() {
        let err = Dataset::builder("bad")
            .target("y", vec![0, 2], default_class_names(2))
            .unwrap_err();
        assert!(matches!(err, DataError::BadClass { index: 2, .. }));
    }

    #[test]
    fn builder_validates_category_indices() {
        let err = Dataset::builder("bad")
            .categorical("c", vec![0, 5], vec!["a".into()])
            .target("y", vec![0, 1], default_class_names(2))
            .unwrap_err();
        assert!(matches!(err, DataError::BadCategory { index: 5, .. }));
    }

    #[test]
    fn accessors_report_shape() {
        let d = tiny();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_attrs(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.numeric_columns(), vec![0]);
        assert_eq!(d.categorical_columns(), vec![1]);
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    fn missing_cells_are_detected() {
        let d = tiny();
        assert!(!d.column(0).unwrap().is_missing(0));
        assert!(d.column(0).unwrap().is_missing(2));
        assert!(d.column(1).unwrap().is_missing(2));
        assert!((d.missing_rate() - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn category_at_hides_missing() {
        let d = tiny();
        assert_eq!(d.column(1).unwrap().category_at(0), Some(0));
        assert_eq!(d.column(1).unwrap().category_at(2), None);
    }

    #[test]
    fn subset_preserves_classes_and_categories() {
        let d = tiny();
        let s = d.subset(&[3, 0]).unwrap();
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.label(0), 1);
        assert_eq!(s.label(1), 0);
        assert_eq!(s.n_classes(), 2);
        assert_eq!(s.column(1).unwrap().n_categories(), 2);
        assert_eq!(s.column(0).unwrap().numeric_at(0), Some(4.0));
    }

    #[test]
    fn subset_rejects_out_of_bounds() {
        let err = tiny().subset(&[9]).unwrap_err();
        assert!(matches!(err, DataError::RowOutOfBounds { row: 9, .. }));
    }

    #[test]
    fn sample_rows_is_stratified_and_bounded() {
        use rand::SeedableRng;
        let mut labels = vec![0usize; 90];
        labels.extend(vec![1usize; 10]);
        let d = Dataset::builder("skew")
            .numeric("x", (0..100).map(|i| i as f64).collect())
            .target("y", labels, default_class_names(2))
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let rows = d.sample_rows(20, &mut rng);
        assert!(rows.len() <= 20);
        // Minority class must survive sampling.
        assert!(rows.iter().any(|&r| d.label(r) == 1));
        // Sorted, unique, in range.
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
        assert!(rows.iter().all(|&r| r < 100));
    }

    #[test]
    fn sample_rows_returns_everything_when_small() {
        use rand::SeedableRng;
        let d = tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(d.sample_rows(10, &mut rng), vec![0, 1, 2, 3]);
    }
}
