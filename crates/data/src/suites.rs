//! The paper's dataset suites.
//!
//! [`paper_test_suite`] clones the 21 held-out test datasets of Table XI by
//! shape (records, numeric/categorical attribute counts, classes), assigning
//! each a content family that loosely matches the original's character (e.g.
//! Hill-Valley — a curve-shape problem — becomes a [`SynthFamily::Ring`];
//! Nursery — all-categorical rules — becomes [`SynthFamily::RuleBased`]).
//!
//! [`knowledge_suite`] produces the 69 datasets behind `CRelations`
//! (the paper extracts 69 pairs from its 20-paper corpus) with varied shapes
//! and families.
//!
//! Both accept a row cap so experiments can run scaled-down; EXPERIMENTS.md
//! records the scaling used for each reported table.

use crate::synth::{SynthFamily, SynthSpec};

/// One suite member: the paper's symbol (e.g. `D7`) plus its generator spec.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    pub symbol: String,
    pub paper_name: String,
    pub spec: SynthSpec,
}

impl SuiteEntry {
    /// Generate the dataset (named after the paper symbol).
    pub fn generate(&self) -> crate::dataset::Dataset {
        self.spec.generate()
    }
}

/// Row shapes of Table XI: (paper name, records, numeric, categorical, classes).
const TABLE_XI: [(&str, usize, usize, usize, usize); 21] = [
    ("Pittsburgh Bridges (MATERIAL)", 108, 3, 10, 3),
    ("Pittsburgh Bridges (TYPE)", 108, 3, 10, 6),
    ("Flags", 194, 10, 20, 8),
    ("Liver Disorders", 345, 6, 1, 2),
    ("Vertebral Column", 310, 5, 1, 2),
    ("Planning Relax", 182, 12, 1, 2),
    ("Mammographic Mass", 961, 1, 5, 2),
    ("Teaching Assistant Evaluation", 151, 1, 5, 3),
    ("Hill-Valley", 606, 100, 1, 2),
    ("Ozone Level Detection", 2536, 72, 1, 2),
    ("Breast Tissue", 106, 9, 1, 6),
    ("banknote authentication", 1372, 4, 1, 2),
    ("Thoracic Surgery Data", 470, 3, 14, 2),
    ("Leaf", 340, 14, 2, 30),
    ("Climate Model Simulation Crashes", 540, 18, 1, 2),
    ("Nursery", 12960, 0, 8, 3),
    ("Avila", 20867, 9, 1, 12),
    ("Chronic Kidney Disease", 400, 14, 11, 2),
    ("Crowdsourced Mapping", 10546, 28, 1, 6),
    ("default of credit card clients", 30000, 14, 10, 2),
    ("Mice Protein Expression", 1080, 78, 4, 8),
];

/// Content family assigned to each Table XI row (see module docs).
fn test_family(i: usize) -> SynthFamily {
    match i {
        0 => SynthFamily::Mixed,                          // Bridges MATERIAL
        1 => SynthFamily::RuleBased { depth: 4 },         // Bridges TYPE
        2 => SynthFamily::Mixed,                          // Flags
        3 => SynthFamily::GaussianBlobs { spread: 1.8 },  // Liver (hard, overlapping)
        4 => SynthFamily::Hyperplane,                     // Vertebral
        5 => SynthFamily::GaussianBlobs { spread: 2.5 },  // Planning Relax (near-chance)
        6 => SynthFamily::RuleBased { depth: 3 },         // Mammographic
        7 => SynthFamily::RuleBased { depth: 4 },         // Teaching Assistant
        8 => SynthFamily::Ring,                           // Hill-Valley (shape problem)
        9 => SynthFamily::Hyperplane,                     // Ozone
        10 => SynthFamily::GaussianBlobs { spread: 1.0 }, // Breast Tissue
        11 => SynthFamily::Hyperplane,                    // banknote (well separated)
        12 => SynthFamily::RuleBased { depth: 3 },        // Thoracic
        13 => SynthFamily::GaussianBlobs { spread: 0.9 }, // Leaf (30 classes)
        14 => SynthFamily::Hyperplane,                    // Climate crashes
        15 => SynthFamily::RuleBased { depth: 5 },        // Nursery (pure rules)
        16 => SynthFamily::Mixed,                         // Avila
        17 => SynthFamily::RuleBased { depth: 3 },        // Kidney (clean rules)
        18 => SynthFamily::GaussianBlobs { spread: 1.1 }, // Crowdsourced Mapping
        19 => SynthFamily::Xor { dims: 3 },               // credit default (interactions)
        20 => SynthFamily::GaussianBlobs { spread: 0.8 }, // Mice Protein
        _ => SynthFamily::Mixed,
    }
}

/// Per-dataset label noise calibrated to the paper's difficulty spread: some
/// Table XI datasets are near-perfectly learnable (banknote, Mice Protein),
/// others hover near chance (Planning Relax, Teaching Assistant).
fn test_noise(i: usize) -> f64 {
    match i {
        3 => 0.18,  // Liver
        5 => 0.35,  // Planning Relax
        7 => 0.25,  // Teaching Assistant
        2 => 0.12,  // Flags
        6 => 0.10,  // Mammographic
        13 => 0.10, // Leaf
        19 => 0.15, // credit default
        11 | 15 | 17 | 20 => 0.01,
        _ => 0.06,
    }
}

/// Base RNG seed for the test suite (distinct from the knowledge suite so
/// the two never alias).
const TEST_SUITE_SEED: u64 = 0xD1000;

/// The 21 test datasets of Table XI. `max_rows` caps the record count of the
/// large datasets (shape otherwise preserved); pass `None` for paper-sized.
pub fn paper_test_suite(max_rows: Option<usize>) -> Vec<SuiteEntry> {
    TABLE_XI
        .iter()
        .enumerate()
        .map(|(i, &(name, rows, numeric, categorical, classes))| {
            let rows = max_rows.map_or(rows, |cap| rows.min(cap.max(classes * 4)));
            let spec = SynthSpec::new(
                format!("D{}", i + 1),
                rows,
                numeric,
                categorical,
                classes,
                test_family(i),
                TEST_SUITE_SEED + i as u64,
            )
            .with_label_noise(test_noise(i))
            .with_imbalance(if i == 9 || i == 12 { 1.2 } else { 0.3 })
            .with_missing(match i {
                0 | 1 | 12 | 17 => 0.04, // the UCI originals have missing cells
                _ => 0.0,
            });
            SuiteEntry {
                symbol: format!("D{}", i + 1),
                paper_name: name.to_string(),
                spec,
            }
        })
        .collect()
}

/// The knowledge suite: `n` datasets (69 in the paper) whose winners seed the
/// synthetic paper corpus. Shapes and families vary systematically so that
/// the meta-feature → best-algorithm mapping is learnable.
pub fn knowledge_suite(n: usize, seed: u64, max_rows: usize) -> Vec<SuiteEntry> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let family = match i % 6 {
                0 => SynthFamily::GaussianBlobs {
                    spread: rng.gen_range(0.6..2.2),
                },
                1 => SynthFamily::Hyperplane,
                2 => SynthFamily::RuleBased {
                    depth: rng.gen_range(2..6),
                },
                3 => SynthFamily::Ring,
                4 => SynthFamily::Xor { dims: 2 },
                _ => SynthFamily::Mixed,
            };
            let classes = [2usize, 2, 2, 3, 3, 4, 5, 6, 8, 12][i % 10];
            let rows = rng.gen_range(100..=max_rows.max(120));
            // Shape coverage must span the test suite's range (Table XI goes
            // up to 100 numeric attributes): every fifth dataset is "wide".
            let numeric = if i % 5 == 4 {
                rng.gen_range(20..=48usize)
            } else {
                rng.gen_range(0..=14usize)
            };
            // All-categorical only for rule-based; otherwise ensure ≥1 numeric.
            let numeric = if matches!(family, SynthFamily::RuleBased { .. }) {
                numeric
            } else {
                numeric.max(2)
            };
            let categorical = rng.gen_range(0..=10usize);
            let categorical = if numeric == 0 {
                categorical.max(2)
            } else {
                categorical
            };
            let spec = SynthSpec::new(
                format!("K{i}"),
                rows,
                numeric,
                categorical,
                classes,
                family,
                seed ^ (0xA5A5_0000 + i as u64),
            )
            .with_label_noise(rng.gen_range(0.0..0.2))
            .with_imbalance(rng.gen_range(0.0..1.0));
            SuiteEntry {
                symbol: format!("K{i}"),
                paper_name: format!("knowledge-{i}"),
                spec,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_suite_matches_table_xi_shapes() {
        let suite = paper_test_suite(None);
        assert_eq!(suite.len(), 21);
        for (entry, &(name, rows, numeric, categorical, classes)) in
            suite.iter().zip(TABLE_XI.iter())
        {
            assert_eq!(entry.paper_name, name);
            assert_eq!(entry.spec.rows, rows);
            assert_eq!(entry.spec.numeric, numeric);
            assert_eq!(entry.spec.categorical, categorical);
            assert_eq!(entry.spec.classes, classes);
        }
    }

    #[test]
    fn generated_dataset_matches_spec_shape() {
        let suite = paper_test_suite(Some(300));
        // D12 (banknote): 4 numeric, 1 categorical, 2 classes.
        let d12 = suite[11].generate();
        assert_eq!(d12.numeric_columns().len(), 4);
        assert_eq!(d12.categorical_columns().len(), 1);
        assert_eq!(d12.n_classes(), 2);
        assert!(d12.n_rows() <= 300);
    }

    #[test]
    fn row_cap_preserves_class_coverage() {
        // D14 (Leaf) has 30 classes; a tight cap must still show them all.
        let suite = paper_test_suite(Some(150));
        let d14 = suite[13].generate();
        assert_eq!(d14.n_classes(), 30);
        assert!(d14.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn nursery_is_all_categorical() {
        let suite = paper_test_suite(Some(400));
        let d16 = suite[15].generate();
        assert_eq!(d16.numeric_columns().len(), 0);
        assert_eq!(d16.categorical_columns().len(), 8);
    }

    #[test]
    fn knowledge_suite_has_requested_size_and_varied_shapes() {
        let suite = knowledge_suite(69, 42, 400);
        assert_eq!(suite.len(), 69);
        let shapes: std::collections::HashSet<(usize, usize, usize)> = suite
            .iter()
            .map(|e| (e.spec.numeric, e.spec.categorical, e.spec.classes))
            .collect();
        assert!(shapes.len() > 20, "shapes too uniform: {}", shapes.len());
        for e in &suite {
            let d = e.generate();
            assert!(d.n_rows() >= 100);
            assert!(d.class_counts().iter().all(|&c| c > 0), "{}", e.symbol);
        }
    }

    #[test]
    fn knowledge_suite_is_deterministic() {
        let a = knowledge_suite(10, 7, 300);
        let b = knowledge_suite(10, 7, 300);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.generate(), y.generate());
        }
    }
}
