//! Seeded, stratified, *nested* row subsampling for multi-fidelity
//! evaluation.
//!
//! A successive-halving rung at row fraction `num/den` must see a subset
//! that is:
//!
//! * **deterministic** — a pure function of `(dataset, fraction, seed)`,
//!   so every thread count, process and resume replays the same rows;
//! * **stratified** — each class contributes `⌈c·num/den⌉` of its `c`
//!   rows (clamped to `[min(c,2), c]`), so rare classes survive cheap
//!   rungs and the class-support audit in [`crate::folds`] stays green;
//! * **nested** — the rows at fraction `a` are a subset of the rows at
//!   any fraction `b ≥ a`, so promoting a config to a higher rung only
//!   *adds* data, never swaps it (the score trajectory across rungs
//!   measures more-of-the-same, not a different draw).
//!
//! Nesting falls out of the construction: each class's rows are shuffled
//! once by an RNG seeded from `(seed, class)` — never from the fraction —
//! and a rung takes a *prefix* of that fixed permutation. Prefix lengths
//! are monotone in the fraction, and prefixes of one permutation are
//! nested by definition.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The stratified row subset for fraction `num/den` of `data`, sorted
/// ascending. `num = den` returns every row. See the module docs for the
/// determinism/stratification/nesting contract.
///
/// # Panics
/// If `num == 0`, `den == 0` or `num > den` (fractions come from static
/// rung geometry, so a bad one is a programming error).
pub fn stratified_nested_rows(data: &Dataset, num: u32, den: u32, seed: u64) -> Vec<usize> {
    assert!(num > 0 && den > 0, "subsample fraction parts must be > 0");
    assert!(num <= den, "subsample fraction must be ≤ 1 ({num}/{den})");
    if num == den {
        return (0..data.n_rows()).collect();
    }
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
    for row in 0..data.n_rows() {
        per_class[data.label(row)].push(row);
    }
    let mut keep = Vec::new();
    for (class, rows) in per_class.iter_mut().enumerate() {
        let c = rows.len();
        if c == 0 {
            continue;
        }
        // The permutation depends on (seed, class) only — NOT the
        // fraction — so different fractions take prefixes of the same
        // order and the subsets nest.
        let mut rng = StdRng::seed_from_u64(mix(seed, class as u64));
        rows.shuffle(&mut rng);
        // ⌈c·num/den⌉, floored at 2 rows per present class (when the
        // class has them) so no rung starves a class down to one row.
        let take = ((c as u64 * num as u64).div_ceil(den as u64) as usize)
            .max(c.min(2))
            .min(c);
        keep.extend(rows.iter().take(take).copied());
    }
    keep.sort_unstable();
    keep
}

/// SplitMix64 finalizer over the (seed, stream) pair: decorrelates the
/// per-class RNG streams without pulling in the workspace's seed-stream
/// helper (this crate sits below `automodel-parallel`).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{default_class_names, Dataset};

    fn labeled(counts: &[usize]) -> Dataset {
        let mut labels = Vec::new();
        for (c, &n) in counts.iter().enumerate() {
            labels.extend(std::iter::repeat_n(c, n));
        }
        let m = labels.len();
        Dataset::builder("d")
            .numeric("x", (0..m).map(|i| i as f64).collect())
            .target("y", labels, default_class_names(counts.len()))
            .unwrap()
    }

    #[test]
    fn full_fraction_is_every_row_and_subsets_are_deterministic() {
        let d = labeled(&[30, 20, 10]);
        assert_eq!(stratified_nested_rows(&d, 3, 3, 9).len(), 60);
        let a = stratified_nested_rows(&d, 1, 3, 9);
        assert_eq!(a, stratified_nested_rows(&d, 1, 3, 9));
        assert_ne!(a, stratified_nested_rows(&d, 1, 3, 10), "seed must matter");
    }

    #[test]
    fn subsets_are_stratified_with_a_two_row_floor() {
        let d = labeled(&[27, 9, 3]);
        let rows = stratified_nested_rows(&d, 1, 9, 4);
        let count = |class| rows.iter().filter(|&&r| d.label(r) == class).count();
        assert_eq!(count(0), 3); // ceil(27/9)
        assert_eq!(count(1), 2); // ceil(9/9) = 1, floored to 2
        assert_eq!(count(2), 2); // ceil(3/9) = 1, floored to 2
    }

    #[test]
    fn one_row_classes_survive_without_invention() {
        let d = labeled(&[1, 50]);
        let rows = stratified_nested_rows(&d, 1, 27, 0);
        assert!(rows.contains(&0), "the lone class-0 row must be kept");
    }

    #[test]
    fn fractions_nest_along_the_rung_ladder() {
        let d = labeled(&[40, 25, 13, 2]);
        for seed in [0, 97, 4242] {
            let ladder: Vec<Vec<usize>> = [(1u32, 27u32), (1, 9), (1, 3), (1, 1)]
                .iter()
                .map(|&(n, de)| stratified_nested_rows(&d, n, de, seed))
                .collect();
            for w in ladder.windows(2) {
                assert!(
                    w[0].iter().all(|r| w[1].contains(r)),
                    "seed {seed}: lower rung not nested in higher"
                );
            }
        }
    }

    #[test]
    fn output_is_sorted_and_duplicate_free() {
        let d = labeled(&[10, 10]);
        let rows = stratified_nested_rows(&d, 1, 2, 7);
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "must be ≤ 1")]
    fn oversized_fraction_panics() {
        let d = labeled(&[4]);
        let _ = stratified_nested_rows(&d, 3, 2, 0);
    }
}
