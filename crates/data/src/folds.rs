//! Stratified cross-validation and train/test splitting.
//!
//! Every experiment in the paper scores configurations by k-fold
//! cross-validation accuracy (`f(λ, A, D)` with 10 folds in §IV). Folds are
//! produced as index lists so the dataset is never copied.

use crate::dataset::Dataset;
use crate::error::DataError;
use rand::seq::SliceRandom;
use rand::Rng;

/// A cross-validation plan: `folds[i]` are the *test* rows of fold `i`.
#[derive(Debug, Clone)]
pub struct FoldPlan {
    folds: Vec<Vec<usize>>,
    n_rows: usize,
}

impl FoldPlan {
    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// Test rows of fold `i`.
    pub fn test(&self, i: usize) -> &[usize] {
        &self.folds[i]
    }

    /// Train rows of fold `i` (everything not in the test fold).
    pub fn train(&self, i: usize) -> Vec<usize> {
        let mut in_test = vec![false; self.n_rows];
        for &r in &self.folds[i] {
            in_test[r] = true;
        }
        (0..self.n_rows).filter(|&r| !in_test[r]).collect()
    }

    /// Iterate `(train, test)` pairs.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, &[usize])> + '_ {
        (0..self.k()).map(|i| (self.train(i), self.test(i)))
    }
}

/// Build a stratified k-fold plan: each fold's class distribution mirrors the
/// dataset's. `k` is clamped to `[2, n_rows]`, so every fold's test set is
/// non-empty; a dataset with fewer than 2 rows cannot be split at all and is
/// an error (previously `n = 1` produced a plan with an empty test fold,
/// which let CV accuracy divide by zero downstream). Rows of each class are
/// shuffled, then dealt round-robin so fold sizes differ by at most one per
/// class.
pub fn stratified_kfold<R: Rng>(
    data: &Dataset,
    k: usize,
    rng: &mut R,
) -> Result<FoldPlan, DataError> {
    let n = data.n_rows();
    if n < 2 {
        return Err(DataError::Empty(format!(
            "stratified k-fold needs at least 2 rows, got {n}"
        )));
    }
    let k = k.clamp(2, n);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
    for row in 0..n {
        per_class[data.label(row)].push(row);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    // Offset each class's deal so small classes don't pile into fold 0.
    let mut next_fold = 0usize;
    for rows in per_class.iter_mut() {
        rows.shuffle(rng);
        for &row in rows.iter() {
            folds[next_fold].push(row);
            next_fold = (next_fold + 1) % k;
        }
    }
    for f in &mut folds {
        f.sort_unstable();
    }
    debug_assert!(
        folds.iter().all(|f| !f.is_empty()),
        "k ≤ n guarantees every fold a test row"
    );
    Ok(FoldPlan { folds, n_rows: n })
}

/// Verify every *present* class has enough rows to survive k-fold CV.
///
/// Round-robin dealing spreads a class's `c` rows over `min(c, k)` folds,
/// so a training fold can only lose a class entirely when `c = 1`: the
/// lone row sits in exactly one test fold, whose training side then holds
/// zero examples of the class. That is the failure mode aggressive row
/// subsampling (low-fidelity rungs) can create — the subsample keeps ≥ 2
/// rows per present class precisely to avoid it, and this check turns any
/// remaining starvation into a typed [`DataError::ClassStarvation`]
/// instead of a silently lopsided model. Classes with zero rows are fine:
/// they are absent, not starved.
pub fn check_class_support(data: &Dataset) -> Result<(), DataError> {
    let mut counts = vec![0usize; data.n_classes()];
    for row in 0..data.n_rows() {
        counts[data.label(row)] += 1;
    }
    for (class, &rows) in counts.iter().enumerate() {
        if rows == 1 {
            return Err(DataError::ClassStarvation { class, rows });
        }
    }
    Ok(())
}

/// [`stratified_kfold`] with the class-support audit up front: starved
/// classes become a typed error *before* any fold is built (and before
/// the rng is touched, so a recovered caller replays identically). `k`
/// is still clamped deterministically to `[2, n_rows]` as in the
/// unchecked form.
pub fn stratified_kfold_checked<R: Rng>(
    data: &Dataset,
    k: usize,
    rng: &mut R,
) -> Result<FoldPlan, DataError> {
    check_class_support(data)?;
    stratified_kfold(data, k, rng)
}

/// Stratified train/test split; `test_fraction` in `(0, 1)`. Returns
/// `(train_rows, test_rows)`. Each observed class contributes at least one
/// row to the training set when it has any rows at all.
pub fn train_test_split<R: Rng>(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0,1), got {test_fraction}"
    );
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
    for row in 0..data.n_rows() {
        per_class[data.label(row)].push(row);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for rows in per_class.iter_mut() {
        if rows.is_empty() {
            continue;
        }
        rows.shuffle(rng);
        let mut n_test = (rows.len() as f64 * test_fraction).round() as usize;
        // Keep at least one training row per class.
        if n_test >= rows.len() {
            n_test = rows.len() - 1;
        }
        test.extend(rows.iter().take(n_test).copied());
        train.extend(rows.iter().skip(n_test).copied());
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{default_class_names, Dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled(counts: &[usize]) -> Dataset {
        let mut labels = Vec::new();
        for (c, &n) in counts.iter().enumerate() {
            labels.extend(std::iter::repeat_n(c, n));
        }
        let m = labels.len();
        Dataset::builder("d")
            .numeric("x", (0..m).map(|i| i as f64).collect())
            .target("y", labels, default_class_names(counts.len()))
            .unwrap()
    }

    #[test]
    fn folds_partition_all_rows() {
        let d = labeled(&[30, 20, 10]);
        let mut rng = StdRng::seed_from_u64(42);
        let plan = stratified_kfold(&d, 5, &mut rng).unwrap();
        let mut seen = vec![false; d.n_rows()];
        for i in 0..plan.k() {
            for &r in plan.test(i) {
                assert!(!seen[r], "row {r} appears in two folds");
                seen[r] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every row must be in some test fold"
        );
    }

    #[test]
    fn folds_are_stratified() {
        let d = labeled(&[50, 50]);
        let mut rng = StdRng::seed_from_u64(7);
        let plan = stratified_kfold(&d, 5, &mut rng).unwrap();
        for i in 0..plan.k() {
            let c0 = plan.test(i).iter().filter(|&&r| d.label(r) == 0).count();
            let c1 = plan.test(i).len() - c0;
            assert!(
                (c0 as i64 - c1 as i64).abs() <= 1,
                "fold {i} not stratified: {c0} vs {c1}"
            );
        }
    }

    #[test]
    fn train_and_test_are_disjoint_and_complete() {
        let d = labeled(&[12, 8]);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = stratified_kfold(&d, 4, &mut rng).unwrap();
        for (train, test) in plan.splits() {
            assert_eq!(train.len() + test.len(), d.n_rows());
            let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), d.n_rows());
        }
    }

    #[test]
    fn k_is_clamped_to_row_count() {
        let d = labeled(&[2, 1]);
        let mut rng = StdRng::seed_from_u64(0);
        let plan = stratified_kfold(&d, 10, &mut rng).unwrap();
        assert!(plan.k() <= 3);
        assert!(plan.k() >= 2);
    }

    #[test]
    fn every_fold_has_a_nonempty_test_set_even_when_k_exceeds_rows() {
        // With k clamped to n, no fold can end up with an empty test set —
        // the n = 2, k = 10 case used to produce 8 empty folds under the
        // old `clamp(2, n.max(2))` rule only by luck of the deal; the n = 1
        // case produced a guaranteed-empty fold.
        for counts in [&[2usize, 1][..], &[3], &[1, 1]] {
            let d = labeled(counts);
            let mut rng = StdRng::seed_from_u64(0);
            let plan = stratified_kfold(&d, 10, &mut rng).unwrap();
            assert_eq!(plan.k(), d.n_rows());
            for i in 0..plan.k() {
                assert!(!plan.test(i).is_empty(), "fold {i} has no test rows");
                assert!(!plan.train(i).is_empty(), "fold {i} has no train rows");
            }
        }
    }

    #[test]
    fn single_row_dataset_is_an_error_not_an_empty_fold() {
        let d = labeled(&[1]);
        let mut rng = StdRng::seed_from_u64(0);
        let err = stratified_kfold(&d, 5, &mut rng).unwrap_err();
        assert!(matches!(err, DataError::Empty(_)), "got {err:?}");
    }

    #[test]
    fn single_row_class_is_a_typed_starvation_error() {
        // Regression (low-fidelity rungs): a class reduced to one row by
        // subsampling used to sail through fold construction and train
        // some folds on zero examples of it.
        let d = labeled(&[1, 99]);
        let mut rng = StdRng::seed_from_u64(0);
        let err = stratified_kfold_checked(&d, 5, &mut rng).unwrap_err();
        assert_eq!(err, DataError::ClassStarvation { class: 0, rows: 1 });
        assert!(err.to_string().contains("class 0"), "{err}");
        // The unchecked form still builds the plan (byte-identical legacy
        // behaviour); only the checked entry point refuses.
        assert!(stratified_kfold(&d, 5, &mut StdRng::seed_from_u64(0)).is_ok());
    }

    #[test]
    fn checked_fold_accepts_absent_and_two_row_classes() {
        // Zero rows = absent (fine); two rows = minimum viable support.
        let d = labeled(&[2, 0, 50]);
        assert!(check_class_support(&d).is_ok());
        let mut rng = StdRng::seed_from_u64(1);
        let plan = stratified_kfold_checked(&d, 4, &mut rng).unwrap();
        assert_eq!(plan.k(), 4);
        // And it is the same plan the unchecked form builds.
        let plain = stratified_kfold(&d, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        for i in 0..plan.k() {
            assert_eq!(plan.test(i), plain.test(i));
        }
    }

    #[test]
    fn split_respects_fraction_and_strata() {
        let d = labeled(&[80, 20]);
        let mut rng = StdRng::seed_from_u64(11);
        let (train, test) = train_test_split(&d, 0.25, &mut rng);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 25);
        let minority_test = test.iter().filter(|&&r| d.label(r) == 1).count();
        assert_eq!(minority_test, 5);
    }

    #[test]
    fn split_keeps_one_training_row_per_class() {
        let d = labeled(&[1, 99]);
        let mut rng = StdRng::seed_from_u64(5);
        let (train, _test) = train_test_split(&d, 0.9, &mut rng);
        assert!(train.iter().any(|&r| d.label(r) == 0));
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn split_rejects_bad_fraction() {
        let d = labeled(&[4]);
        let mut rng = StdRng::seed_from_u64(5);
        train_test_split(&d, 1.5, &mut rng);
    }
}
