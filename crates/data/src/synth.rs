//! Synthetic classification dataset generators.
//!
//! The paper evaluates on UCI datasets that are not fetchable in this
//! environment, so the suites clone each dataset's *shape* (records,
//! numeric/categorical attribute counts, classes — Table XI) and draw
//! contents from parameterized families. The families are chosen so that
//! *different algorithms win on different datasets* — the property the CASH
//! problem, the PORatio metric and the knowledge network all rely on:
//!
//! * [`SynthFamily::GaussianBlobs`] — generative Gaussian clusters (favors
//!   naive Bayes / LDA-like learners and k-NN at low spread).
//! * [`SynthFamily::Hyperplane`] — argmax of random linear scores (favors
//!   logistic regression / linear SVM).
//! * [`SynthFamily::RuleBased`] — a planted decision tree over the attributes
//!   (favors tree and rule learners).
//! * [`SynthFamily::Ring`] — radial shells (favors kernel/neighbor methods).
//! * [`SynthFamily::Xor`] — sign-parity labels (defeats linear models; favors
//!   trees, ensembles, MLPs).
//! * [`SynthFamily::Mixed`] — blobs with a rule-based override on the
//!   categorical part.

use crate::dataset::{default_class_names, Dataset, MISSING_CATEGORY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Content family of a synthetic dataset. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SynthFamily {
    GaussianBlobs { spread: f64 },
    Hyperplane,
    RuleBased { depth: usize },
    Ring,
    Xor { dims: usize },
    Mixed,
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    pub name: String,
    pub rows: usize,
    pub numeric: usize,
    pub categorical: usize,
    pub classes: usize,
    pub family: SynthFamily,
    /// Probability a row's label is replaced by a uniformly random class.
    pub label_noise: f64,
    /// Class-skew exponent: class `i` has weight `(i+1)^-imbalance`. 0 = balanced.
    pub imbalance: f64,
    /// Probability an attribute cell is missing.
    pub missing_rate: f64,
    pub seed: u64,
}

impl SynthSpec {
    /// Balanced, noise-free spec with the given shape.
    pub fn new(
        name: impl Into<String>,
        rows: usize,
        numeric: usize,
        categorical: usize,
        classes: usize,
        family: SynthFamily,
        seed: u64,
    ) -> SynthSpec {
        SynthSpec {
            name: name.into(),
            rows,
            numeric,
            categorical,
            classes,
            family,
            label_noise: 0.0,
            imbalance: 0.0,
            missing_rate: 0.0,
            seed,
        }
    }

    /// Set label noise.
    pub fn with_label_noise(mut self, p: f64) -> Self {
        self.label_noise = p;
        self
    }

    /// Set class imbalance exponent.
    pub fn with_imbalance(mut self, a: f64) -> Self {
        self.imbalance = a;
        self
    }

    /// Set missing-cell rate.
    pub fn with_missing(mut self, p: f64) -> Self {
        self.missing_rate = p;
        self
    }

    /// Generate the dataset. Deterministic in the spec (including `seed`).
    pub fn generate(&self) -> Dataset {
        assert!(self.classes >= 2, "need at least two classes");
        assert!(self.rows >= self.classes, "need at least one row per class");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let gen = Generator::new(self, &mut rng);
        gen.run(self, &mut rng)
    }
}

/// Class-sampling weights under the imbalance exponent.
fn class_weights(classes: usize, imbalance: f64) -> Vec<f64> {
    let raw: Vec<f64> = (0..classes)
        .map(|i| ((i + 1) as f64).powf(-imbalance))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

fn sample_weighted<R: Rng>(weights: &[f64], rng: &mut R) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Standard normal via Box-Muller (keeps us off extra dependencies).
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Planted structure reused across all rows of one dataset.
struct Generator {
    /// Per-class centers for numeric attributes (blobs/mixed).
    centers: Vec<Vec<f64>>,
    /// Per-class linear score weights (hyperplane).
    weights: Vec<Vec<f64>>,
    /// Per-categorical-attribute: number of categories and per-class
    /// preferred category (class-correlated attributes) or `None` (noise).
    cat_schema: Vec<CatAttr>,
    /// Planted tree for RuleBased (list of (attr, threshold-or-category) tests
    /// hashed into a class).
    rule_salt: u64,
    rule_depth: usize,
    spread: f64,
}

struct CatAttr {
    n_categories: usize,
    /// For class-correlated attributes: the category each class prefers.
    preferred: Option<Vec<u32>>,
    /// Probability mass on the preferred category.
    fidelity: f64,
}

impl Generator {
    fn new(spec: &SynthSpec, rng: &mut StdRng) -> Generator {
        let centers = (0..spec.classes)
            .map(|_| {
                (0..spec.numeric)
                    .map(|_| rng.gen_range(-3.0..3.0))
                    .collect()
            })
            .collect();
        let weights = (0..spec.classes)
            .map(|_| {
                (0..spec.numeric.max(1))
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect()
            })
            .collect();
        let cat_schema = (0..spec.categorical)
            .map(|i| {
                let n_categories = rng.gen_range(2..=6usize);
                // Roughly 60% of categorical attributes carry class signal.
                let correlated = i % 5 < 3;
                let preferred = correlated.then(|| {
                    (0..spec.classes)
                        .map(|_| rng.gen_range(0..n_categories as u32))
                        .collect()
                });
                CatAttr {
                    n_categories,
                    preferred,
                    fidelity: rng.gen_range(0.55..0.9),
                }
            })
            .collect();
        let (rule_depth, spread) = match spec.family {
            SynthFamily::RuleBased { depth } => (depth.max(1), 1.0),
            SynthFamily::GaussianBlobs { spread } => (2, spread),
            _ => (2, 1.0),
        };
        Generator {
            centers,
            weights,
            cat_schema,
            rule_salt: rng.gen(),
            rule_depth,
            spread,
        }
    }

    fn run(&self, spec: &SynthSpec, rng: &mut StdRng) -> Dataset {
        let weights = class_weights(spec.classes, spec.imbalance);
        let mut numeric: Vec<Vec<f64>> = vec![Vec::with_capacity(spec.rows); spec.numeric];
        let mut categorical: Vec<Vec<u32>> = vec![Vec::with_capacity(spec.rows); spec.categorical];
        let mut labels = Vec::with_capacity(spec.rows);

        for row in 0..spec.rows {
            // Guarantee every class appears at least once: the first
            // `classes` rows cycle through the classes.
            let forced = (row < spec.classes).then_some(row % spec.classes);
            let (label, nums, cats) = self.generate_row(spec, forced, &weights, rng);
            let label = if rng.gen::<f64>() < spec.label_noise {
                rng.gen_range(0..spec.classes)
            } else {
                label
            };
            labels.push(label);
            for (col, v) in numeric.iter_mut().zip(&nums) {
                let v = if rng.gen::<f64>() < spec.missing_rate {
                    f64::NAN
                } else {
                    *v
                };
                col.push(v);
            }
            for (col, v) in categorical.iter_mut().zip(&cats) {
                let v = if rng.gen::<f64>() < spec.missing_rate {
                    MISSING_CATEGORY
                } else {
                    *v
                };
                col.push(v);
            }
        }

        // Attribute-first families (hyperplane, xor, rule-based) derive labels
        // from the attributes, so a class can end up empty; patch coverage by
        // relabeling a random row per missing class (equivalent to a trace of
        // label noise).
        let mut counts = vec![0usize; spec.classes];
        for &l in &labels {
            counts[l] += 1;
        }
        for c in 0..spec.classes {
            if counts[c] == 0 {
                let victim = loop {
                    let r = rng.gen_range(0..spec.rows);
                    if counts[labels[r]] > 1 {
                        break r;
                    }
                };
                counts[labels[victim]] -= 1;
                labels[victim] = c;
                counts[c] += 1;
            }
        }

        let mut builder = Dataset::builder(spec.name.clone());
        for (i, values) in numeric.into_iter().enumerate() {
            builder = builder.numeric(format!("n{i}"), values);
        }
        for (i, values) in categorical.into_iter().enumerate() {
            let cats = (0..self.cat_schema[i].n_categories)
                .map(|c| format!("a{i}v{c}"))
                .collect();
            builder = builder.categorical(format!("c{i}"), values, cats);
        }
        builder
            .target("class", labels, default_class_names(spec.classes))
            // lint:allow(no-panic-lib): every column above was built with `rows` entries
            .expect("generator produces consistent shapes")
    }

    /// Produce one `(label, numeric values, categorical values)` row.
    fn generate_row(
        &self,
        spec: &SynthSpec,
        forced_class: Option<usize>,
        class_weights: &[f64],
        rng: &mut StdRng,
    ) -> (usize, Vec<f64>, Vec<u32>) {
        match spec.family {
            SynthFamily::GaussianBlobs { .. } => {
                let label = forced_class.unwrap_or_else(|| sample_weighted(class_weights, rng));
                let nums = (0..spec.numeric)
                    .map(|d| self.centers[label][d] + gauss(rng) * self.spread)
                    .collect();
                let cats = self.class_conditioned_cats(label, rng);
                (label, nums, cats)
            }
            SynthFamily::Hyperplane => {
                let nums: Vec<f64> = (0..spec.numeric)
                    .map(|_| rng.gen_range(-2.0..2.0))
                    .collect();
                let label = if spec.numeric == 0 {
                    forced_class.unwrap_or_else(|| sample_weighted(class_weights, rng))
                } else {
                    self.argmax_linear(&nums)
                };
                let cats = self.class_conditioned_cats(label, rng);
                (label, nums, cats)
            }
            SynthFamily::Ring => {
                let label = forced_class.unwrap_or_else(|| sample_weighted(class_weights, rng));
                // Radius band selects the class; remaining dims are noise.
                let radius = 1.0 + label as f64 + rng.gen_range(-0.35..0.35);
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                let mut nums: Vec<f64> = (0..spec.numeric).map(|_| gauss(rng) * 0.6).collect();
                if spec.numeric >= 1 {
                    nums[0] = radius * angle.cos();
                }
                if spec.numeric >= 2 {
                    nums[1] = radius * angle.sin();
                }
                let cats = self.noise_cats(rng);
                (label, nums, cats)
            }
            SynthFamily::Xor { dims } => {
                let nums: Vec<f64> = (0..spec.numeric)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                let dims = dims.clamp(1, spec.numeric.max(1));
                let parity = nums.iter().take(dims).filter(|&&v| v > 0.0).count();
                let label = if spec.numeric == 0 {
                    forced_class.unwrap_or_else(|| sample_weighted(class_weights, rng))
                } else {
                    parity % spec.classes
                };
                let cats = self.noise_cats(rng);
                (label, nums, cats)
            }
            SynthFamily::RuleBased { .. } => {
                let nums: Vec<f64> = (0..spec.numeric)
                    .map(|_| rng.gen_range(-2.0..2.0))
                    .collect();
                let cats = self.noise_cats(rng);
                let label = self.rule_label(spec, &nums, &cats);
                (label, nums, cats)
            }
            SynthFamily::Mixed => {
                let label = forced_class.unwrap_or_else(|| sample_weighted(class_weights, rng));
                let nums = (0..spec.numeric)
                    .map(|d| self.centers[label][d] + gauss(rng) * 1.2)
                    .collect();
                let cats = self.class_conditioned_cats(label, rng);
                (label, nums, cats)
            }
        }
    }

    fn class_conditioned_cats(&self, label: usize, rng: &mut StdRng) -> Vec<u32> {
        self.cat_schema
            .iter()
            .map(|attr| match &attr.preferred {
                Some(pref) if rng.gen::<f64>() < attr.fidelity => pref[label],
                _ => rng.gen_range(0..attr.n_categories as u32),
            })
            .collect()
    }

    fn noise_cats(&self, rng: &mut StdRng) -> Vec<u32> {
        self.cat_schema
            .iter()
            .map(|attr| rng.gen_range(0..attr.n_categories as u32))
            .collect()
    }

    fn argmax_linear(&self, nums: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (c, w) in self.weights.iter().enumerate() {
            let score: f64 = w.iter().zip(nums).map(|(wi, xi)| wi * xi).sum();
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    /// Deterministic planted decision tree evaluated by hashing the path of
    /// test outcomes. Tests alternate over attributes; thresholds at 0 for
    /// numeric, median category for categorical.
    fn rule_label(&self, spec: &SynthSpec, nums: &[f64], cats: &[u32]) -> usize {
        let mut path = self.rule_salt;
        let total = spec.numeric + spec.categorical;
        if total == 0 {
            return 0;
        }
        for level in 0..self.rule_depth {
            let attr = (self
                .rule_salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(level as u64)
                >> 7) as usize
                % total;
            let bit = if attr < spec.numeric {
                nums[attr] > 0.0
            } else {
                let a = attr - spec.numeric;
                u64::from(cats[a]) * 2 >= self.cat_schema[a].n_categories as u64
            };
            path = path
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(level as u64 * 2 + bit as u64);
        }
        (path >> 33) as usize % spec.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(family: SynthFamily) -> SynthSpec {
        SynthSpec::new("t", 200, 4, 3, 3, family, 42)
    }

    #[test]
    fn shapes_match_spec_for_every_family() {
        for family in [
            SynthFamily::GaussianBlobs { spread: 1.0 },
            SynthFamily::Hyperplane,
            SynthFamily::RuleBased { depth: 3 },
            SynthFamily::Ring,
            SynthFamily::Xor { dims: 2 },
            SynthFamily::Mixed,
        ] {
            let d = spec(family).generate();
            assert_eq!(d.n_rows(), 200);
            assert_eq!(d.numeric_columns().len(), 4);
            assert_eq!(d.categorical_columns().len(), 3);
            assert_eq!(d.n_classes(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = spec(SynthFamily::Mixed).generate();
        let b = spec(SynthFamily::Mixed).generate();
        assert_eq!(a, b);
        let mut other = spec(SynthFamily::Mixed);
        other.seed = 43;
        assert_ne!(a, other.generate());
    }

    #[test]
    fn every_class_appears() {
        for family in [
            SynthFamily::GaussianBlobs { spread: 1.0 },
            SynthFamily::Ring,
            SynthFamily::Mixed,
        ] {
            let mut s = spec(family);
            s.imbalance = 2.0;
            let d = s.generate();
            assert!(d.class_counts().iter().all(|&c| c > 0), "{family:?}");
        }
    }

    #[test]
    fn imbalance_skews_class_counts() {
        let mut s = spec(SynthFamily::GaussianBlobs { spread: 1.0 });
        s.rows = 2000;
        s.imbalance = 1.5;
        let counts = s.generate().class_counts();
        assert!(counts[0] > counts[2] * 2, "counts: {counts:?}");
    }

    #[test]
    fn missing_rate_injects_missing_cells() {
        let mut s = spec(SynthFamily::Mixed);
        s.missing_rate = 0.3;
        let d = s.generate();
        let rate = d.missing_rate();
        assert!(rate > 0.2 && rate < 0.4, "rate: {rate}");
    }

    #[test]
    fn zero_numeric_or_zero_categorical_are_supported() {
        let d = SynthSpec::new("nocat", 100, 5, 0, 2, SynthFamily::Hyperplane, 1).generate();
        assert_eq!(d.categorical_columns().len(), 0);
        let d = SynthSpec::new(
            "nonum",
            100,
            0,
            5,
            2,
            SynthFamily::RuleBased { depth: 2 },
            1,
        )
        .generate();
        assert_eq!(d.numeric_columns().len(), 0);
        assert!(d.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn blobs_are_roughly_separable_at_low_spread() {
        // Nearest-center classification on the planted centers should beat
        // chance comfortably — sanity check that the labels carry signal.
        let s = SynthSpec::new(
            "sep",
            300,
            3,
            0,
            3,
            SynthFamily::GaussianBlobs { spread: 0.5 },
            9,
        );
        let d = s.generate();
        // Recover per-class means and classify by nearest mean.
        let mut sums = vec![vec![0.0; 3]; 3];
        let mut counts = vec![0usize; 3];
        for r in 0..d.n_rows() {
            let l = d.label(r);
            counts[l] += 1;
            for (j, s) in sums[l].iter_mut().enumerate() {
                *s += d.column(j).unwrap().numeric_at(r).unwrap();
            }
        }
        for (s, &c) in sums.iter_mut().zip(&counts) {
            for v in s.iter_mut() {
                *v /= c.max(1) as f64;
            }
        }
        let mut correct = 0usize;
        for r in 0..d.n_rows() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, mean) in sums.iter().enumerate() {
                let dist: f64 = (0..3)
                    .map(|j| {
                        let v = d.column(j).unwrap().numeric_at(r).unwrap();
                        (v - mean[j]) * (v - mean[j])
                    })
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if best == d.label(r) {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.n_rows() as f64;
        assert!(acc > 0.7, "nearest-center accuracy too low: {acc}");
    }

    #[test]
    fn label_noise_reduces_signal() {
        let clean = SynthSpec::new("c", 500, 2, 0, 2, SynthFamily::Hyperplane, 5).generate();
        let noisy = SynthSpec::new("c", 500, 2, 0, 2, SynthFamily::Hyperplane, 5)
            .with_label_noise(0.5)
            .generate();
        // With 50% noise the labels should disagree with the clean ones often.
        let disagreements = (0..500)
            .filter(|&r| clean.label(r) != noisy.label(r))
            .count();
        assert!(disagreements > 50, "only {disagreements} disagreements");
    }
}
