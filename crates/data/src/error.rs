//! Error type for the data substrate.

use std::fmt;

/// Errors produced while building, loading, or slicing datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Column lengths disagree with the dataset's row count.
    LengthMismatch {
        column: String,
        expected: usize,
        actual: usize,
    },
    /// A categorical cell references a category index that does not exist.
    BadCategory { column: String, index: u32 },
    /// A class label index is out of range for the target.
    BadClass { index: usize, n_classes: usize },
    /// The dataset has no rows or no classes where at least one is required.
    Empty(String),
    /// A row index is out of bounds.
    RowOutOfBounds { row: usize, n_rows: usize },
    /// A column index is out of bounds.
    ColumnOutOfBounds { column: usize, n_columns: usize },
    /// CSV parsing failed at `line`; `field` names the offending column
    /// when the failure is attributable to one (`None` for structural
    /// errors like a ragged row or a malformed header).
    Parse {
        line: usize,
        field: Option<String>,
        message: String,
    },
    /// A present class has too few rows for every CV training fold to
    /// contain it: with a single row, the fold holding that row as test
    /// data trains on zero examples of the class. Raised by
    /// [`check_class_support`](crate::folds::check_class_support) before
    /// fold construction, so tiny (e.g. aggressively subsampled) datasets
    /// fail with a diagnosis instead of silently training lopsided models.
    ClassStarvation {
        /// Class label index with insufficient support.
        class: usize,
        /// Rows of that class present in the dataset.
        rows: usize,
    },
    /// Underlying I/O failure (message only, to keep the error cloneable).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column '{column}' has {actual} values but the dataset has {expected} rows"
            ),
            DataError::BadCategory { column, index } => {
                write!(f, "column '{column}' references unknown category {index}")
            }
            DataError::BadClass { index, n_classes } => {
                write!(
                    f,
                    "class index {index} out of range (dataset has {n_classes} classes)"
                )
            }
            DataError::Empty(what) => write!(f, "dataset is empty: {what}"),
            DataError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row {row} out of bounds (n_rows = {n_rows})")
            }
            DataError::ColumnOutOfBounds { column, n_columns } => {
                write!(f, "column {column} out of bounds (n_columns = {n_columns})")
            }
            DataError::Parse {
                line,
                field,
                message,
            } => match field {
                Some(field) => {
                    write!(f, "parse error at line {line}, field '{field}': {message}")
                }
                None => write!(f, "parse error at line {line}: {message}"),
            },
            DataError::ClassStarvation { class, rows } => write!(
                f,
                "class {class} has only {rows} row(s): every CV split would \
                 train some fold on zero examples of it"
            ),
            DataError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}
