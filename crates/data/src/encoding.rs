//! Dense numeric encoding of mixed-type rows.
//!
//! The function-family classifiers (logistic regression, SVMs, MLPs, RBF
//! networks) and distance-based learners need dense `f64` vectors. A
//! [`NumericEncoder`] is *fit on training rows only* (mean/std per numeric
//! column, category table per categorical column) and then encodes any row:
//!
//! * numeric column → standardized value, missing imputed with the train mean;
//! * categorical column → one-hot block, missing (or unseen) → all zeros.

use crate::dataset::{Column, Dataset};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
enum ColumnEncoder {
    Numeric { mean: f64, std: f64 },
    Categorical { n_categories: usize },
}

/// Fitted row encoder. See the module docs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NumericEncoder {
    columns: Vec<ColumnEncoder>,
    width: usize,
    standardize: bool,
}

impl NumericEncoder {
    /// Fit on the given training rows. `standardize = false` keeps raw
    /// numeric values (used by tree wrappers that only need imputation).
    pub fn fit(data: &Dataset, rows: &[usize], standardize: bool) -> NumericEncoder {
        let mut columns = Vec::with_capacity(data.n_attrs());
        let mut width = 0usize;
        for col in data.columns() {
            match col {
                Column::Numeric { .. } => {
                    let mut sum = 0.0;
                    let mut count = 0usize;
                    for &r in rows {
                        if let Some(v) = col.numeric_at(r) {
                            if !v.is_nan() {
                                sum += v;
                                count += 1;
                            }
                        }
                    }
                    let mean = if count > 0 { sum / count as f64 } else { 0.0 };
                    let mut var = 0.0;
                    if count > 0 {
                        for &r in rows {
                            if let Some(v) = col.numeric_at(r) {
                                if !v.is_nan() {
                                    var += (v - mean) * (v - mean);
                                }
                            }
                        }
                        var /= count as f64;
                    }
                    let std = var.sqrt();
                    columns.push(ColumnEncoder::Numeric {
                        mean,
                        std: if std > 1e-12 { std } else { 1.0 },
                    });
                    width += 1;
                }
                Column::Categorical { categories, .. } => {
                    columns.push(ColumnEncoder::Categorical {
                        n_categories: categories.len(),
                    });
                    width += categories.len();
                }
            }
        }
        NumericEncoder {
            columns,
            width,
            standardize,
        }
    }

    /// Width of an encoded row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encode row `row` of `data` into `out` (cleared first).
    pub fn encode_into(&self, data: &Dataset, row: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.width);
        for (col, enc) in data.columns().iter().zip(&self.columns) {
            match enc {
                ColumnEncoder::Numeric { mean, std } => {
                    let v = col.numeric_at(row).unwrap_or(f64::NAN);
                    let v = if v.is_nan() { *mean } else { v };
                    out.push(if self.standardize {
                        (v - mean) / std
                    } else {
                        v
                    });
                }
                ColumnEncoder::Categorical { n_categories } => {
                    let start = out.len();
                    out.resize(start + n_categories, 0.0);
                    if let Some(c) = col.category_at(row) {
                        if (c as usize) < *n_categories {
                            out[start + c as usize] = 1.0;
                        }
                    }
                }
            }
        }
    }

    /// Encode row `row` into a fresh vector.
    pub fn encode(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.encode_into(data, row, &mut out);
        out
    }

    /// Encode a batch of rows as a dense row-major matrix.
    pub fn encode_matrix(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter().map(|&r| self.encode(data, r)).collect()
    }
}

/// Standardizer for plain feature matrices (used on meta-feature vectors,
/// which never pass through a [`Dataset`]). Columns with zero variance map
/// to zero.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VecStandardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl VecStandardizer {
    /// Fit per-column mean/std on `rows` (all rows must share a width).
    pub fn fit(rows: &[Vec<f64>]) -> VecStandardizer {
        let width = rows.first().map_or(0, |r| r.len());
        let n = rows.len().max(1) as f64;
        let mut means = vec![0.0; width];
        for r in rows {
            for (m, &v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; width];
        for r in rows {
            for ((s, &v), m) in stds.iter_mut().zip(r).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s <= 1e-12 {
                *s = 1.0;
            }
        }
        VecStandardizer { means, stds }
    }

    /// Standardize one vector in place.
    pub fn apply(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Standardized copy of `row`.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{default_class_names, Dataset, MISSING_CATEGORY};

    fn data() -> Dataset {
        Dataset::builder("enc")
            .numeric("a", vec![0.0, 2.0, 4.0, f64::NAN])
            .categorical(
                "c",
                vec![0, 1, MISSING_CATEGORY, 2],
                vec!["x".into(), "y".into(), "z".into()],
            )
            .target("y", vec![0, 0, 1, 1], default_class_names(2))
            .unwrap()
    }

    #[test]
    fn width_counts_onehot_blocks() {
        let d = data();
        let enc = NumericEncoder::fit(&d, &[0, 1, 2, 3], true);
        assert_eq!(enc.width(), 1 + 3);
    }

    #[test]
    fn standardization_uses_train_statistics_only() {
        let d = data();
        // Train on rows 0,1 → mean 1, std 1.
        let enc = NumericEncoder::fit(&d, &[0, 1], true);
        let r0 = enc.encode(&d, 0);
        let r2 = enc.encode(&d, 2);
        assert!((r0[0] - (-1.0)).abs() < 1e-12);
        assert!((r2[0] - 3.0).abs() < 1e-12); // (4-1)/1 — out-of-train value scales fine
    }

    #[test]
    fn missing_numeric_imputes_train_mean() {
        let d = data();
        let enc = NumericEncoder::fit(&d, &[0, 1, 2], true);
        let r3 = enc.encode(&d, 3);
        assert!(r3[0].abs() < 1e-12, "imputed mean standardizes to 0");
    }

    #[test]
    fn missing_category_encodes_all_zeros() {
        let d = data();
        let enc = NumericEncoder::fit(&d, &[0, 1, 2, 3], false);
        let r2 = enc.encode(&d, 2);
        assert_eq!(&r2[1..], &[0.0, 0.0, 0.0]);
        let r1 = enc.encode(&d, 1);
        assert_eq!(&r1[1..], &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn non_standardizing_encoder_keeps_raw_values() {
        let d = data();
        let enc = NumericEncoder::fit(&d, &[0, 1, 2], false);
        assert_eq!(enc.encode(&d, 1)[0], 2.0);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let d = Dataset::builder("const")
            .numeric("a", vec![5.0, 5.0, 5.0])
            .target("y", vec![0, 1, 0], default_class_names(2))
            .unwrap();
        let enc = NumericEncoder::fit(&d, &[0, 1, 2], true);
        let r = enc.encode(&d, 0);
        assert!(r[0].is_finite());
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn vec_standardizer_roundtrip() {
        let rows = vec![vec![0.0, 10.0], vec![2.0, 10.0], vec![4.0, 10.0]];
        let s = VecStandardizer::fit(&rows);
        let t = s.transform(&rows[0]);
        assert!((t[0] + 1.224744871391589).abs() < 1e-9);
        assert_eq!(t[1], 0.0); // zero-variance column maps to 0
    }
}
