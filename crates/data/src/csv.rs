//! Minimal typed CSV serialization for [`Dataset`].
//!
//! Format: the header cell of each column is `num:<name>` or `cat:<name>`;
//! the final column is `class:<name>`. Missing cells are the empty string.
//! Categorical values and class labels are written as their string names.
//! This is intentionally small — enough to round-trip our datasets and to
//! let users feed their own data into the examples.

use crate::dataset::{ClassId, Column, Dataset, MISSING_CATEGORY};
use crate::error::DataError;
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};

/// Write `data` as CSV.
pub fn write_csv<W: Write>(data: &Dataset, writer: W) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    let mut header: Vec<String> = data
        .columns()
        .iter()
        .map(|c| match c {
            Column::Numeric { name, .. } => format!("num:{name}"),
            Column::Categorical { name, .. } => format!("cat:{name}"),
        })
        .collect();
    header.push(format!("class:{}", data.target().name));
    writeln!(w, "{}", header.join(","))?;
    for row in 0..data.n_rows() {
        let mut cells: Vec<String> = Vec::with_capacity(data.n_attrs() + 1);
        for col in data.columns() {
            cells.push(match col {
                Column::Numeric { values, .. } => {
                    let v = values[row];
                    if v.is_nan() {
                        String::new()
                    } else {
                        format!("{v}")
                    }
                }
                Column::Categorical {
                    values, categories, ..
                } => {
                    let v = values[row];
                    if v == MISSING_CATEGORY {
                        String::new()
                    } else {
                        categories[v as usize].clone()
                    }
                }
            });
        }
        cells.push(data.target().classes[data.label(row)].clone());
        writeln!(w, "{}", cells.join(","))?;
    }
    w.flush()?;
    Ok(())
}

enum ColKind {
    Num,
    Cat,
}

/// Read a dataset in the format produced by [`write_csv`].
pub fn read_csv<R: BufRead>(name: &str, reader: R) -> Result<Dataset, DataError> {
    let mut lines = reader.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| DataError::Parse {
        line: 1,
        field: None,
        message: "empty file".into(),
    })?;
    let header = header?;
    let mut kinds: Vec<ColKind> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut class_name = String::new();
    let fields: Vec<&str> = header.split(',').collect();
    for (i, field) in fields.iter().enumerate() {
        let (kind, col_name) = field.split_once(':').ok_or_else(|| DataError::Parse {
            line: 1,
            field: Some(field.to_string()),
            message: "header cell missing type prefix".into(),
        })?;
        match kind {
            "num" => {
                kinds.push(ColKind::Num);
                names.push(col_name.to_string());
            }
            "cat" => {
                kinds.push(ColKind::Cat);
                names.push(col_name.to_string());
            }
            "class" => {
                if i != fields.len() - 1 {
                    return Err(DataError::Parse {
                        line: 1,
                        field: Some(col_name.to_string()),
                        message: "class column must be last".into(),
                    });
                }
                class_name = col_name.to_string();
            }
            other => {
                return Err(DataError::Parse {
                    line: 1,
                    field: Some(col_name.to_string()),
                    message: format!("unknown column kind '{other}'"),
                })
            }
        }
    }
    if class_name.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            field: None,
            message: "missing class column".into(),
        });
    }

    let n_cols = kinds.len();
    let mut numeric: Vec<Vec<f64>> = kinds.iter().map(|_| Vec::new()).collect();
    let mut cat_values: Vec<Vec<u32>> = kinds.iter().map(|_| Vec::new()).collect();
    let mut cat_tables: Vec<Vec<String>> = kinds.iter().map(|_| Vec::new()).collect();
    let mut cat_lookup: Vec<HashMap<String, u32>> = kinds.iter().map(|_| HashMap::new()).collect();
    let mut labels: Vec<ClassId> = Vec::new();
    let mut classes: Vec<String> = Vec::new();
    let mut class_lookup: HashMap<String, ClassId> = HashMap::new();

    for (lineno, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != n_cols + 1 {
            return Err(DataError::Parse {
                line: lineno + 1,
                field: None,
                message: format!("expected {} cells, found {}", n_cols + 1, cells.len()),
            });
        }
        for (j, cell) in cells[..n_cols].iter().enumerate() {
            match kinds[j] {
                ColKind::Num => {
                    let v = if cell.is_empty() {
                        f64::NAN
                    } else {
                        cell.parse::<f64>().map_err(|e| DataError::Parse {
                            line: lineno + 1,
                            field: Some(names[j].clone()),
                            message: format!("bad number '{cell}': {e}"),
                        })?
                    };
                    numeric[j].push(v);
                }
                ColKind::Cat => {
                    let v = if cell.is_empty() {
                        MISSING_CATEGORY
                    } else {
                        *cat_lookup[j].entry(cell.to_string()).or_insert_with(|| {
                            cat_tables[j].push(cell.to_string());
                            (cat_tables[j].len() - 1) as u32
                        })
                    };
                    cat_values[j].push(v);
                }
            }
        }
        let label_cell = cells[n_cols];
        let label = *class_lookup
            .entry(label_cell.to_string())
            .or_insert_with(|| {
                classes.push(label_cell.to_string());
                classes.len() - 1
            });
        labels.push(label);
    }

    let mut builder = Dataset::builder(name);
    for (j, kind) in kinds.iter().enumerate() {
        builder = match kind {
            ColKind::Num => builder.numeric(names[j].clone(), std::mem::take(&mut numeric[j])),
            ColKind::Cat => builder.categorical(
                names[j].clone(),
                std::mem::take(&mut cat_values[j]),
                std::mem::take(&mut cat_tables[j]),
            ),
        };
    }
    builder.target(class_name, labels, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthFamily, SynthSpec};
    use std::io::Cursor;

    #[test]
    fn roundtrip_preserves_shape_and_labels() {
        let d = SynthSpec::new("rt", 50, 3, 2, 3, SynthFamily::Mixed, 1)
            .with_missing(0.1)
            .generate();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv("rt", Cursor::new(buf)).unwrap();
        assert_eq!(back.n_rows(), d.n_rows());
        assert_eq!(back.n_attrs(), d.n_attrs());
        assert_eq!(back.n_classes(), d.n_classes());
        for r in 0..d.n_rows() {
            let a = &d.target().classes[d.label(r)];
            let b = &back.target().classes[back.label(r)];
            assert_eq!(a, b, "row {r}");
        }
    }

    #[test]
    fn roundtrip_preserves_missing_cells() {
        let d = SynthSpec::new("m", 80, 2, 2, 2, SynthFamily::Mixed, 2)
            .with_missing(0.25)
            .generate();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv("m", Cursor::new(buf)).unwrap();
        for c in 0..d.n_attrs() {
            for r in 0..d.n_rows() {
                assert_eq!(
                    d.column(c).unwrap().is_missing(r),
                    back.column(c).unwrap().is_missing(r),
                    "cell ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn rejects_missing_class_column() {
        let err = read_csv("x", Cursor::new("num:a,num:b\n1,2\n")).unwrap_err();
        assert!(matches!(err, DataError::Parse { .. }));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = read_csv("x", Cursor::new("num:a,class:y\n1,2,3\n")).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_bad_numbers() {
        let err = read_csv("x", Cursor::new("num:a,class:y\nabc,pos\n")).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }));
    }

    #[test]
    fn bad_number_errors_name_line_and_field() {
        // Two numeric columns; the bad cell is in the *second* one, on row 3
        // of the file — the error must pinpoint both.
        let err = read_csv(
            "x",
            Cursor::new("num:width,num:height,class:y\n1,2,p\n3,oops,q\n"),
        )
        .unwrap_err();
        match &err {
            DataError::Parse {
                line,
                field,
                message,
            } => {
                assert_eq!(*line, 3);
                assert_eq!(field.as_deref(), Some("height"));
                assert!(message.contains("oops"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("line 3"), "{text}");
        assert!(text.contains("'height'"), "{text}");
    }

    #[test]
    fn structural_errors_carry_no_field() {
        let err = read_csv("x", Cursor::new("num:a,class:y\n1,2,3\n")).unwrap_err();
        assert!(matches!(err, DataError::Parse { field: None, .. }));
        let err = read_csv("x", Cursor::new("num:a,class:y,num:b\n")).unwrap_err();
        assert!(
            matches!(err, DataError::Parse { line: 1, field: Some(ref f), .. } if f == "y"),
            "misplaced class column should name it"
        );
    }

    #[test]
    fn skips_blank_lines() {
        let d = read_csv("x", Cursor::new("num:a,class:y\n1,p\n\n2,q\n")).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.n_classes(), 2);
    }
}
