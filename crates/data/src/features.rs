//! The 23 task-instance features of the paper's Table III.
//!
//! A task instance (classification dataset) `D` with `m` records, `n` common
//! attributes and a target `A_T` is summarized by the feature vector
//! `f1..f23`. `ANList`/`ACList` are the numeric/categorical common attributes.
//! Datasets with no categorical common attributes have `f10..f17 = 0`;
//! datasets with no numeric attributes have `f18..f23 = 0` (the paper's
//! OneHot' masking handles algorithms that cannot cope with either case).
//! Missing cells are skipped by every statistic.

use crate::dataset::{Column, Dataset};

/// Number of meta-features (Table III).
pub const FEATURE_COUNT: usize = 23;

/// Human-readable names `f1..f23`, aligned with Table III.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "f1_target_class_count",
    "f2_target_entropy",
    "f3_target_max_class_proportion",
    "f4_target_min_class_proportion",
    "f5_numeric_attr_count",
    "f6_categorical_attr_count",
    "f7_numeric_attr_proportion",
    "f8_attr_count",
    "f9_record_count",
    "f10_min_categories",
    "f11_min_categories_entropy",
    "f12_min_categories_max_proportion",
    "f13_min_categories_min_proportion",
    "f14_max_categories",
    "f15_max_categories_entropy",
    "f16_max_categories_max_proportion",
    "f17_max_categories_min_proportion",
    "f18_min_numeric_mean",
    "f19_max_numeric_mean",
    "f20_min_numeric_variance",
    "f21_max_numeric_variance",
    "f22_variance_of_numeric_means",
    "f23_variance_of_numeric_variances",
];

/// A dense Table III feature vector.
pub type FeatureVector = [f64; FEATURE_COUNT];

/// Shannon entropy (nats) of a count histogram; empty histograms yield 0.
fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// Population variance; fewer than one observation yields 0.
fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// Per-category counts of a categorical column, ignoring missing cells.
fn category_counts(col: &Column, n_rows: usize) -> Vec<usize> {
    let mut counts = vec![0usize; col.n_categories()];
    for row in 0..n_rows {
        if let Some(c) = col.category_at(row) {
            counts[c as usize] += 1;
        }
    }
    counts
}

/// Count of categories that actually occur (the paper's `A_i[n]`).
fn observed_categories(counts: &[usize]) -> usize {
    counts.iter().filter(|&&c| c > 0).count()
}

/// Summary statistics of one categorical attribute.
struct CatSummary {
    observed: usize,
    entropy: f64,
    max_prop: f64,
    min_prop: f64,
}

fn summarize_categorical(col: &Column, n_rows: usize) -> CatSummary {
    let counts = category_counts(col, n_rows);
    let observed = observed_categories(&counts);
    let m = n_rows as f64;
    let nonzero: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
    CatSummary {
        observed,
        entropy: entropy(&counts),
        max_prop: nonzero.iter().copied().max().unwrap_or(0) as f64 / m.max(1.0),
        min_prop: nonzero.iter().copied().min().unwrap_or(0) as f64 / m.max(1.0),
    }
}

/// Mean and variance of a numeric column, skipping missing cells.
fn numeric_stats(col: &Column, n_rows: usize) -> (f64, f64) {
    let mut vals = Vec::with_capacity(n_rows);
    for row in 0..n_rows {
        if let Some(v) = col.numeric_at(row) {
            if !v.is_nan() {
                vals.push(v);
            }
        }
    }
    if vals.is_empty() {
        (0.0, 0.0)
    } else {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (mean, variance(&vals))
    }
}

/// Compute the full Table III feature vector for a dataset.
pub fn meta_features(data: &Dataset) -> FeatureVector {
    let m = data.n_rows();
    let n = data.n_attrs();
    let mut f = [0.0f64; FEATURE_COUNT];

    // Target features f1..f4.
    let class_counts = data.class_counts();
    let observed_classes: Vec<usize> = class_counts.iter().copied().filter(|&c| c > 0).collect();
    f[0] = observed_classes.len() as f64;
    f[1] = entropy(&class_counts);
    if m > 0 && !observed_classes.is_empty() {
        // lint:allow(no-panic-lib): guarded by `!observed_classes.is_empty()`
        f[2] = *observed_classes.iter().max().unwrap() as f64 / m as f64;
        // lint:allow(no-panic-lib): guarded by `!observed_classes.is_empty()`
        f[3] = *observed_classes.iter().min().unwrap() as f64 / m as f64;
    }

    // Shape features f5..f9.
    let numeric = data.numeric_columns();
    let categorical = data.categorical_columns();
    f[4] = numeric.len() as f64;
    f[5] = categorical.len() as f64;
    f[6] = if n > 0 {
        numeric.len() as f64 / n as f64
    } else {
        0.0
    };
    f[7] = n as f64;
    f[8] = m as f64;

    // Categorical extremes f10..f17 (A# = fewest classes, A? = most classes).
    if !categorical.is_empty() {
        let summaries: Vec<CatSummary> = categorical
            .iter()
            .map(|&i| summarize_categorical(&data.columns()[i], m))
            .collect();
        let (min_idx, _) = summaries
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.observed)
            // lint:allow(no-panic-lib): one summary per categorical column, ≥ 1 here
            .unwrap();
        let (max_idx, _) = summaries
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.observed)
            // lint:allow(no-panic-lib): one summary per categorical column, ≥ 1 here
            .unwrap();
        f[9] = summaries[min_idx].observed as f64;
        f[10] = summaries[min_idx].entropy;
        f[11] = summaries[min_idx].max_prop;
        f[12] = summaries[min_idx].min_prop;
        f[13] = summaries[max_idx].observed as f64;
        f[14] = summaries[max_idx].entropy;
        f[15] = summaries[max_idx].max_prop;
        f[16] = summaries[max_idx].min_prop;
    }

    // Numeric extremes f18..f23.
    if !numeric.is_empty() {
        let stats: Vec<(f64, f64)> = numeric
            .iter()
            .map(|&i| numeric_stats(&data.columns()[i], m))
            .collect();
        let means: Vec<f64> = stats.iter().map(|s| s.0).collect();
        let vars: Vec<f64> = stats.iter().map(|s| s.1).collect();
        f[17] = means.iter().copied().fold(f64::INFINITY, f64::min);
        f[18] = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        f[19] = vars.iter().copied().fold(f64::INFINITY, f64::min);
        f[20] = vars.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        f[21] = variance(&means);
        f[22] = variance(&vars);
    }

    f
}

/// Apply a boolean mask (the DMD feature-selection output) to a feature
/// vector, keeping only the selected features, in order.
pub fn select_features(full: &FeatureVector, mask: &[bool]) -> Vec<f64> {
    assert_eq!(mask.len(), FEATURE_COUNT, "mask must cover all 23 features");
    full.iter()
        .zip(mask)
        .filter_map(|(&v, &keep)| keep.then_some(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{default_class_names, Dataset, MISSING_CATEGORY};

    fn mixed() -> Dataset {
        Dataset::builder("mixed")
            .numeric("a", vec![1.0, 2.0, 3.0, 4.0])
            .numeric("b", vec![10.0, 10.0, 10.0, 10.0])
            .categorical("c2", vec![0, 0, 1, 1], vec!["x".into(), "y".into()])
            .categorical(
                "c3",
                vec![0, 1, 2, 0],
                vec!["p".into(), "q".into(), "r".into()],
            )
            .target("y", vec![0, 0, 0, 1], default_class_names(2))
            .unwrap()
    }

    #[test]
    fn target_features_match_hand_computation() {
        let f = meta_features(&mixed());
        assert_eq!(f[0], 2.0); // f1: two classes
        let expected_entropy = -(0.75f64.ln() * 0.75 + 0.25f64.ln() * 0.25);
        assert!((f[1] - expected_entropy).abs() < 1e-12); // f2
        assert!((f[2] - 0.75).abs() < 1e-12); // f3
        assert!((f[3] - 0.25).abs() < 1e-12); // f4
    }

    #[test]
    fn shape_features_match_hand_computation() {
        let f = meta_features(&mixed());
        assert_eq!(f[4], 2.0); // numeric count
        assert_eq!(f[5], 2.0); // categorical count
        assert!((f[6] - 0.5).abs() < 1e-12); // proportion
        assert_eq!(f[7], 4.0); // n
        assert_eq!(f[8], 4.0); // m
    }

    #[test]
    fn categorical_extremes_pick_fewest_and_most_classes() {
        let f = meta_features(&mixed());
        assert_eq!(f[9], 2.0); // A# = c2 with 2 observed categories
        assert_eq!(f[13], 3.0); // A? = c3 with 3
                                // c2 is balanced 2/2.
        assert!((f[11] - 0.5).abs() < 1e-12);
        assert!((f[12] - 0.5).abs() < 1e-12);
        // c3 proportions: p=2/4, q=1/4, r=1/4.
        assert!((f[15] - 0.5).abs() < 1e-12);
        assert!((f[16] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn numeric_extremes_match_hand_computation() {
        let f = meta_features(&mixed());
        // means: a=2.5, b=10 → min 2.5 max 10.
        assert!((f[17] - 2.5).abs() < 1e-12);
        assert!((f[18] - 10.0).abs() < 1e-12);
        // variances: a=1.25 (population), b=0.
        assert!((f[19] - 0.0).abs() < 1e-12);
        assert!((f[20] - 1.25).abs() < 1e-12);
        // f22 = Var({2.5, 10}) = ((2.5-6.25)^2 + (10-6.25)^2)/2 = 14.0625
        assert!((f[21] - 14.0625).abs() < 1e-12);
        // f23 = Var({1.25, 0}) = 0.390625
        assert!((f[22] - 0.390625).abs() < 1e-9);
    }

    #[test]
    fn all_numeric_dataset_zeroes_categorical_features() {
        let d = Dataset::builder("num")
            .numeric("a", vec![1.0, 2.0])
            .target("y", vec![0, 1], default_class_names(2))
            .unwrap();
        let f = meta_features(&d);
        for (i, &fi) in f.iter().enumerate().take(17).skip(9) {
            assert_eq!(fi, 0.0, "f{} should be 0", i + 1);
        }
    }

    #[test]
    fn all_categorical_dataset_zeroes_numeric_features() {
        let d = Dataset::builder("cat")
            .categorical("c", vec![0, 1], vec!["a".into(), "b".into()])
            .target("y", vec![0, 1], default_class_names(2))
            .unwrap();
        let f = meta_features(&d);
        for (i, &fi) in f.iter().enumerate().take(23).skip(17) {
            assert_eq!(fi, 0.0, "f{} should be 0", i + 1);
        }
    }

    #[test]
    fn missing_cells_are_ignored_by_statistics() {
        let d = Dataset::builder("miss")
            .numeric("a", vec![1.0, f64::NAN, 3.0])
            .categorical(
                "c",
                vec![0, MISSING_CATEGORY, 1],
                vec!["x".into(), "y".into()],
            )
            .target("y", vec![0, 1, 0], default_class_names(2))
            .unwrap();
        let f = meta_features(&d);
        assert!((f[17] - 2.0).abs() < 1e-12); // mean of {1,3}
        assert_eq!(f[9], 2.0); // both categories observed
    }

    #[test]
    fn select_features_applies_mask_in_order() {
        let full: FeatureVector = std::array::from_fn(|i| i as f64);
        let mut mask = [false; FEATURE_COUNT];
        mask[0] = true;
        mask[4] = true;
        mask[22] = true;
        assert_eq!(select_features(&full, &mask), vec![0.0, 4.0, 22.0]);
    }

    #[test]
    fn entropy_of_uniform_is_log_k() {
        assert!((entropy(&[5, 5, 5, 5]) - 4f64.ln()).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[7]), 0.0);
    }
}
