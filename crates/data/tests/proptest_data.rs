//! Seeded property tests: dataset, fold and meta-feature invariants across
//! arbitrary synthetic dataset shapes. Cases are generated from explicit
//! seeds (no proptest: the build is offline, and deterministic replay is a
//! workspace invariant).

use automodel_data::features::{meta_features, FEATURE_COUNT};
use automodel_data::{stratified_kfold, train_test_split, SynthFamily, SynthSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_family(rng: &mut StdRng) -> SynthFamily {
    match rng.gen_range(0..6usize) {
        0 => SynthFamily::GaussianBlobs {
            spread: rng.gen_range(0.3f64..2.5),
        },
        1 => SynthFamily::Hyperplane,
        2 => SynthFamily::RuleBased {
            depth: rng.gen_range(1usize..5),
        },
        3 => SynthFamily::Ring,
        4 => SynthFamily::Xor {
            dims: rng.gen_range(1usize..4),
        },
        _ => SynthFamily::Mixed,
    }
}

fn random_spec(rng: &mut StdRng) -> SynthSpec {
    let family = random_family(rng);
    let rows = rng.gen_range(20usize..200);
    let numeric = rng.gen_range(0usize..8);
    let categorical = rng.gen_range(0usize..6);
    let classes = rng.gen_range(2usize..5);
    let noise = rng.gen_range(0.0f64..0.4);
    let imbalance = rng.gen_range(0.0f64..1.5);
    let missing = rng.gen_range(0.0f64..0.3);
    let seed = rng.gen_range(0u64..10_000);
    // At least one attribute, and rows ≥ classes.
    let numeric = if numeric + categorical == 0 {
        2
    } else {
        numeric
    };
    SynthSpec::new(
        "prop",
        rows.max(classes * 4),
        numeric,
        categorical,
        classes,
        family,
        seed,
    )
    .with_label_noise(noise)
    .with_imbalance(imbalance)
    .with_missing(missing)
}

fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

#[test]
fn generated_datasets_match_their_spec() {
    for case in 0..48u64 {
        let mut rng = case_rng(11, case);
        let spec = random_spec(&mut rng);
        let d = spec.generate();
        assert_eq!(d.n_rows(), spec.rows, "case {case}");
        assert_eq!(d.numeric_columns().len(), spec.numeric, "case {case}");
        assert_eq!(
            d.categorical_columns().len(),
            spec.categorical,
            "case {case}"
        );
        assert_eq!(d.n_classes(), spec.classes, "case {case}");
        // Every class has at least one row.
        assert!(d.class_counts().iter().all(|&c| c > 0), "case {case}");
    }
}

#[test]
fn meta_features_are_always_finite() {
    for case in 0..48u64 {
        let mut rng = case_rng(12, case);
        let spec = random_spec(&mut rng);
        let d = spec.generate();
        let f = meta_features(&d);
        assert_eq!(f.len(), FEATURE_COUNT, "case {case}");
        assert!(
            f.iter().all(|v| v.is_finite()),
            "case {case} features: {f:?}"
        );
        // Structural facts Table III guarantees.
        assert_eq!(f[4] as usize, spec.numeric, "case {case}"); // f5
        assert_eq!(f[5] as usize, spec.categorical, "case {case}"); // f6
        assert_eq!(f[8] as usize, spec.rows, "case {case}"); // f9
        assert!(f[2] >= f[3], "case {case}"); // max ≥ min class prop
        assert!(f[2] <= 1.0 && f[3] >= 0.0, "case {case}");
    }
}

#[test]
fn kfold_partitions_exactly() {
    for case in 0..48u64 {
        let mut rng = case_rng(13, case);
        let spec = random_spec(&mut rng);
        let k = rng.gen_range(2usize..8);
        let d = spec.generate();
        let plan = stratified_kfold(&d, k, &mut rng).expect("specs generate ≥ 2 rows");
        let mut seen = vec![0usize; d.n_rows()];
        for i in 0..plan.k() {
            for &r in plan.test(i) {
                seen[r] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "case {case}: rows must appear exactly once"
        );
        for (train, test) in plan.splits() {
            assert_eq!(train.len() + test.len(), d.n_rows(), "case {case}");
        }
    }
}

#[test]
fn split_is_a_partition() {
    for case in 0..48u64 {
        let mut rng = case_rng(14, case);
        let spec = random_spec(&mut rng);
        let frac = rng.gen_range(0.1f64..0.9);
        let d = spec.generate();
        let (train, test) = train_test_split(&d, frac, &mut rng);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), d.n_rows(), "case {case}");
        // Every class observed in the data keeps a training row.
        for class in 0..d.n_classes() {
            let has_rows = (0..d.n_rows()).any(|r| d.label(r) == class);
            if has_rows {
                assert!(
                    train.iter().any(|&r| d.label(r) == class),
                    "case {case}: class {class} lost all training rows"
                );
            }
        }
    }
}

#[test]
fn subset_then_features_is_consistent() {
    for case in 0..48u64 {
        let mut rng = case_rng(15, case);
        let spec = random_spec(&mut rng);
        let d = spec.generate();
        let rows = d.sample_rows(d.n_rows() / 2 + 1, &mut rng);
        let sub = d.subset(&rows).unwrap();
        assert_eq!(sub.n_rows(), rows.len(), "case {case}");
        assert_eq!(sub.n_classes(), d.n_classes(), "case {case}");
        let f = meta_features(&sub);
        assert!(f.iter().all(|v| v.is_finite()), "case {case}");
    }
}

#[test]
fn csv_roundtrip_is_lossless_on_labels() {
    for case in 0..48u64 {
        let mut rng = case_rng(16, case);
        let spec = random_spec(&mut rng);
        let d = spec.generate();
        let mut buf = Vec::new();
        automodel_data::csv::write_csv(&d, &mut buf).unwrap();
        let back = automodel_data::csv::read_csv("rt", std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.n_rows(), d.n_rows(), "case {case}");
        for r in 0..d.n_rows() {
            assert_eq!(
                &d.target().classes[d.label(r)],
                &back.target().classes[back.label(r)],
                "case {case} row {r}"
            );
        }
    }
}
