//! Property tests: dataset, fold and meta-feature invariants across
//! arbitrary synthetic dataset shapes.

use automodel_data::features::{meta_features, FEATURE_COUNT};
use automodel_data::{stratified_kfold, train_test_split, SynthFamily, SynthSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family_strategy() -> impl Strategy<Value = SynthFamily> {
    prop_oneof![
        (0.3f64..2.5).prop_map(|s| SynthFamily::GaussianBlobs { spread: s }),
        Just(SynthFamily::Hyperplane),
        (1usize..5).prop_map(|d| SynthFamily::RuleBased { depth: d }),
        Just(SynthFamily::Ring),
        (1usize..4).prop_map(|d| SynthFamily::Xor { dims: d }),
        Just(SynthFamily::Mixed),
    ]
}

fn spec_strategy() -> impl Strategy<Value = SynthSpec> {
    (
        family_strategy(),
        20usize..200,   // rows
        0usize..8,      // numeric
        0usize..6,      // categorical
        2usize..5,      // classes
        0.0f64..0.4,    // label noise
        0.0f64..1.5,    // imbalance
        0.0f64..0.3,    // missing
        0u64..10_000,   // seed
    )
        .prop_map(
            |(family, rows, numeric, categorical, classes, noise, imbalance, missing, seed)| {
                // At least one attribute, and rows ≥ classes.
                let numeric = if numeric + categorical == 0 { 2 } else { numeric };
                SynthSpec::new("prop", rows.max(classes * 4), numeric, categorical, classes, family, seed)
                    .with_label_noise(noise)
                    .with_imbalance(imbalance)
                    .with_missing(missing)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_datasets_match_their_spec(spec in spec_strategy()) {
        let d = spec.generate();
        prop_assert_eq!(d.n_rows(), spec.rows);
        prop_assert_eq!(d.numeric_columns().len(), spec.numeric);
        prop_assert_eq!(d.categorical_columns().len(), spec.categorical);
        prop_assert_eq!(d.n_classes(), spec.classes);
        // Every class has at least one row.
        prop_assert!(d.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn meta_features_are_always_finite(spec in spec_strategy()) {
        let d = spec.generate();
        let f = meta_features(&d);
        prop_assert_eq!(f.len(), FEATURE_COUNT);
        prop_assert!(f.iter().all(|v| v.is_finite()), "features: {:?}", f);
        // Structural facts Table III guarantees.
        prop_assert_eq!(f[4] as usize, spec.numeric);   // f5
        prop_assert_eq!(f[5] as usize, spec.categorical); // f6
        prop_assert_eq!(f[8] as usize, spec.rows);      // f9
        prop_assert!(f[2] >= f[3]);                      // max ≥ min class prop
        prop_assert!(f[2] <= 1.0 && f[3] >= 0.0);
    }

    #[test]
    fn kfold_partitions_exactly(spec in spec_strategy(), k in 2usize..8, seed in 0u64..1000) {
        let d = spec.generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = stratified_kfold(&d, k, &mut rng);
        let mut seen = vec![0usize; d.n_rows()];
        for i in 0..plan.k() {
            for &r in plan.test(i) {
                seen[r] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "rows must appear exactly once");
        for (train, test) in plan.splits() {
            prop_assert_eq!(train.len() + test.len(), d.n_rows());
        }
    }

    #[test]
    fn split_is_a_partition(spec in spec_strategy(), frac in 0.1f64..0.9, seed in 0u64..1000) {
        let d = spec.generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = train_test_split(&d, frac, &mut rng);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), d.n_rows());
        // Every class observed in the data keeps a training row.
        for class in 0..d.n_classes() {
            let has_rows = (0..d.n_rows()).any(|r| d.label(r) == class);
            if has_rows {
                prop_assert!(train.iter().any(|&r| d.label(r) == class));
            }
        }
    }

    #[test]
    fn subset_then_features_is_consistent(spec in spec_strategy(), seed in 0u64..1000) {
        let d = spec.generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = d.sample_rows(d.n_rows() / 2 + 1, &mut rng);
        let sub = d.subset(&rows).unwrap();
        prop_assert_eq!(sub.n_rows(), rows.len());
        prop_assert_eq!(sub.n_classes(), d.n_classes());
        let f = meta_features(&sub);
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn csv_roundtrip_is_lossless_on_labels(spec in spec_strategy()) {
        let d = spec.generate();
        let mut buf = Vec::new();
        automodel_data::csv::write_csv(&d, &mut buf).unwrap();
        let back = automodel_data::csv::read_csv("rt", std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.n_rows(), d.n_rows());
        for r in 0..d.n_rows() {
            prop_assert_eq!(
                &d.target().classes[d.label(r)],
                &back.target().classes[back.label(r)]
            );
        }
    }
}
