//! Session execution over a shared, warm-started substrate.
//!
//! A [`Server`] is built once — loading a persisted DMD artifact — and
//! then runs many sessions concurrently. Each session gets its own
//! seed, budget, tracer, fault policy and (optionally) checkpoint
//! stream; all sessions share the read-mostly DMD, the round-robin
//! batch gate, and — per evaluation context — a pooled [`TrialCache`]
//! through which identical requests warm-replay each other (see
//! [`Server`] for why the pools are context-keyed).
//!
//! **Session determinism contract:** the same request (id aside) with
//! the same seed produces a byte-identical filtered trial history
//! regardless of which — or how many — other sessions run concurrently,
//! and regardless of executor width. Three design rules carry it:
//!
//! 1. The probe clock is pinned to a [`ManualClock`], so the `auto`
//!    GA-vs-BO routing cannot flip under load.
//! 2. The batch gate is timing-only (see
//!    [`BatchGate`](automodel_hpo::BatchGate)): it reorders wall-clock
//!    interleavings, never trial content.
//! 3. The history is the session's trace stream with provenance-only
//!    events ([`PROVENANCE_KINDS`]) filtered out — a shared-cache hit
//!    replays the identical outcome it memoized, so whether a trial was
//!    computed or replayed is invisible in the filtered stream.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use automodel_core::{Dmd, DmdArtifact, UdrConfig};
use automodel_data::csv::read_csv;
use automodel_data::Dataset;
use automodel_hpo::{BatchGate, Budget, ManualClock};
use automodel_ml::Registry;
use automodel_parallel::{CacheSnapshot, TrialCache};
use automodel_store::{
    load_latest, Checkpointer, RecoveryError, StoreArtifact, StoreReader, DEFAULT_KEEP,
};
use automodel_trace::{parse_line, Tracer};
use parking_lot::Mutex;

use crate::gate::RoundRobinGate;
use crate::protocol::{
    DatasetSpec, ErrorKind, ProtocolError, SessionRequest, SessionResult, SessionSolution,
};

/// Trace event kinds that record *provenance* (where an outcome came
/// from) rather than *history* (what the outcome was). They are
/// filtered out of the session history because they legitimately vary
/// with cache temperature and checkpoint cadence while the trial
/// content stays bit-identical.
///
/// `fault` and `retry` are in the list for the same reason: they trace
/// the *live* evaluation path, and a shared-cache replay of the same
/// trial skips them while carrying their durable content — the
/// `attempts` count and final status — inside `trial_end`, which stays
/// in the history and is identity-checked.
pub const PROVENANCE_KINDS: &[&str] = &[
    "cache_hit",
    "cache_miss",
    "warm_hit",
    "artifact_load",
    "checkpoint",
    "recovery",
    "fault",
    "retry",
];

/// Server-side admission and placement knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission ceiling on a session's evaluation budget; requests
    /// beyond it are rejected with an `invalid-value` error.
    pub max_budget: usize,
    /// Per-session JSONL trace files land here as `<id>.jsonl`.
    pub trace_dir: Option<PathBuf>,
    /// Per-session checkpoint generations land here under `<id>`;
    /// `"checkpoint": true` requests are rejected when unset.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_budget: 512,
            trace_dir: None,
            checkpoint_dir: None,
        }
    }
}

/// Most cache-pool contexts a server keeps live; the oldest pool is
/// evicted past this (FIFO), trading warm replays for bounded memory.
const MAX_CACHE_CONTEXTS: usize = 64;

/// The long-running service: one loaded DMD, context-keyed shared trial
/// caches, one batch-gate rotation, many concurrent sessions.
///
/// **Why the trial cache is keyed by evaluation context.** Cache keys
/// inside the optimizers are `config @ fidelity` fingerprints — they
/// deliberately omit the dataset, the seed, the fold count and the
/// fault plan, because a single tuning run holds all of those fixed.
/// A server does not: two sessions may tune the same algorithm on
/// different datasets or seeds, and a cached score is only a valid
/// replay *within the context that measured it*. So the server pools
/// caches by a context fingerprint (algorithm, optimizer, seed, folds,
/// fault plan, dataset); sessions with identical context share a pool
/// and warm-replay each other bit-exactly, while different contexts —
/// including a faulty session next to a clean one — are fully
/// isolated. The artifact's persisted snapshot is *not* poured into
/// session pools for the same reason: its entries were measured in the
/// DMD build context, not in any session's.
#[derive(Debug)]
pub struct Server {
    dmd: Dmd,
    warm: CacheSnapshot,
    contexts: Mutex<Vec<(String, Arc<TrialCache>)>>,
    gate: Arc<RoundRobinGate>,
    config: ServerConfig,
    tickets: AtomicU64,
}

impl Server {
    /// Build a server around an already-loaded DMD plus the artifact's
    /// persisted trial-cache snapshot (reported, kept for inspection,
    /// but never replayed into session pools — see the type docs).
    pub fn new(dmd: Dmd, snapshot: &CacheSnapshot, config: ServerConfig) -> Server {
        Server {
            dmd,
            warm: snapshot.clone(),
            contexts: Mutex::new(Vec::new()),
            gate: RoundRobinGate::new(),
            config,
            tickets: AtomicU64::new(0),
        }
    }

    /// Load a persisted `AMSTORE` artifact (as written by `dmd build`)
    /// and build a server from it: DMD weights plus the warm-start
    /// trial-cache snapshot. The artifact's checksums are verified
    /// before anything is trusted.
    pub fn from_artifact(
        path: &Path,
        registry: Registry,
        config: ServerConfig,
    ) -> Result<Server, String> {
        let reader =
            StoreReader::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        reader
            .verify_all()
            .map_err(|e| format!("verify {}: {e}", path.display()))?;
        let artifact = StoreArtifact::from_reader(&reader)
            .map_err(|e| format!("decode {}: {e}", path.display()))?;
        let (dmd_artifact, snapshot) = DmdArtifact::from_store(artifact);
        let dmd = dmd_artifact
            .into_dmd(registry)
            .map_err(|e| format!("restore DMD from {}: {e}", path.display()))?;
        Ok(Server::new(dmd, &snapshot, config))
    }

    /// Entries in the artifact's persisted trial-cache snapshot.
    pub fn warm_entries(&self) -> usize {
        self.warm.len()
    }

    /// Cache-pool contexts currently live (one per distinct session
    /// evaluation context seen, FIFO-bounded).
    pub fn cache_contexts(&self) -> usize {
        self.contexts.lock().len()
    }

    /// The shared cache pool for one evaluation context, created on
    /// first use. Sessions with byte-equal context fingerprints share a
    /// pool — that is what makes an identical later request warm.
    fn cache_for(&self, context: &str) -> Arc<TrialCache> {
        let mut contexts = self.contexts.lock();
        if let Some((_, cache)) = contexts.iter().find(|(key, _)| key == context) {
            return Arc::clone(cache);
        }
        let cache = Arc::new(TrialCache::default());
        contexts.push((context.to_string(), Arc::clone(&cache)));
        if contexts.len() > MAX_CACHE_CONTEXTS {
            contexts.remove(0);
        }
        cache
    }

    pub fn max_budget(&self) -> usize {
        self.config.max_budget
    }

    /// Parse one request line and run it to completion. Malformed lines
    /// become typed error responses — the server never panics on input.
    pub fn handle_line(&self, line: &str) -> SessionResult {
        match crate::protocol::parse_request(line, self.config.max_budget) {
            Ok(request) => self.run_session(&request),
            Err(error) => SessionResult::failure("", error),
        }
    }

    /// Run one admitted session to completion. Faults inside the
    /// session (bad dataset, all-trials-failed, checkpoint I/O) are
    /// contained: they become a typed error response for *this* session
    /// and never touch the shared state other sessions read.
    pub fn run_session(&self, request: &SessionRequest) -> SessionResult {
        match self.try_session(request) {
            Ok(solution) => SessionResult {
                id: request.id.clone(),
                outcome: Ok(solution),
            },
            Err(error) => SessionResult::failure(request.id.clone(), error),
        }
    }

    fn try_session(&self, request: &SessionRequest) -> Result<SessionSolution, ProtocolError> {
        let data = self.materialize(&request.dataset)?;
        let cache = self.cache_for(&context_key(request));

        let (tracer, history) = Tracer::in_memory();
        let tracer = match &self.config.trace_dir {
            Some(dir) => {
                let path = dir.join(format!("{}.jsonl", request.id));
                tracer.with_jsonl(&path).ok_or_else(|| {
                    ProtocolError::new(
                        ErrorKind::Session,
                        format!("cannot open session trace file {}", path.display()),
                    )
                })?
            }
            None => tracer,
        };
        let tracer = Arc::new(tracer);

        let mut udr = UdrConfig::fast()
            .with_optimizer(request.optimizer)
            .with_tracer(Arc::clone(&tracer))
            .with_cache(Arc::clone(&cache))
            .with_policy(request.policy());
        udr.seed = request.seed;
        udr.cv_folds = request.folds;
        udr.tuning_budget = Budget::evals(request.budget);
        // Pin the probe clock: probe timing is wall-clock-dependent, and
        // a load-dependent GA-vs-BO flip would break session identity.
        // At time zero the probe is "fast", so `auto` routes to the GA.
        udr.probe_clock = Arc::new(ManualClock::new());

        if let Some(sink) = self.recovery(request, &cache)? {
            udr = udr.with_checkpoint(sink);
        }

        let ticket = Arc::new(self.gate.join(self.tickets.fetch_add(1, Ordering::Relaxed)));
        udr = udr.with_gate(Arc::clone(&ticket) as Arc<dyn BatchGate>);

        let solved = match &request.algorithm {
            Some(algorithm) => udr.tune(&self.dmd.registry, algorithm, &data),
            None => udr.solve(&self.dmd, &data),
        };
        // Leave the rotation *before* assembling the response: a
        // finished session must stop consuming admission turns the
        // moment its tuning returns.
        drop(udr);
        ticket.leave();

        let solution = solved.map_err(|e| ProtocolError::new(ErrorKind::Session, e.to_string()))?;
        let summary = tracer.summary();
        let (cache_hits, cache_misses, warm_hits) = summary
            .map(|s| (s.cache_hits, s.cache_misses, s.warm_hits))
            .unwrap_or((0, 0, 0));

        Ok(SessionSolution {
            algorithm: solution.algorithm,
            config: solution.config.to_string(),
            score: solution.score,
            technique: solution.technique,
            trials: solution.trials,
            quarantined: solution.quarantined,
            cache_hits,
            cache_misses,
            warm_hits,
            history: filter_history(&history.contents()),
        })
    }

    fn materialize(&self, spec: &DatasetSpec) -> Result<Dataset, ProtocolError> {
        match spec {
            // The dataset name is fixed so two sessions posting the same
            // CSV bytes share cache keys (the name participates in trial
            // identity through the trace, not the cache, but a stable
            // name keeps the histories comparable too).
            DatasetSpec::Csv(text) => read_csv("session", text.as_bytes())
                .map_err(|e| ProtocolError::new(ErrorKind::Dataset, e.to_string())),
            DatasetSpec::Synth(spec) => Ok(spec.generate()),
        }
    }

    /// Set up the session's checkpoint sink and, on `resume`, replay
    /// the newest intact generation's cache snapshot so the re-run
    /// warm-replays the crashed run's trials. A missing or unreadable
    /// checkpoint degrades to a cold start (same answer, slower), which
    /// is the CLI's recovery posture too.
    fn recovery(
        &self,
        request: &SessionRequest,
        cache: &Arc<TrialCache>,
    ) -> Result<Option<Arc<Checkpointer>>, ProtocolError> {
        if !request.checkpoint {
            return Ok(None);
        }
        let Some(dir) = &self.config.checkpoint_dir else {
            return Err(ProtocolError::new(
                ErrorKind::InvalidValue,
                "`checkpoint` requires the server to run with a checkpoint directory",
            ));
        };
        let base = dir.join(&request.id);
        if request.resume {
            match load_latest(&base, DEFAULT_KEEP) {
                Ok(state) => {
                    cache.restore(&state.cache);
                }
                Err(RecoveryError::NoCheckpoint(_)) => {}
                // Torn or corrupt generations: cold-start. The trial
                // history is identical either way; only speed differs.
                Err(_) => {}
            }
        }
        Ok(Some(Arc::new(Checkpointer::new(base))))
    }
}

/// Fingerprint of everything that parameterizes a trial's measured
/// value besides the config itself: algorithm choice, optimizer, seed,
/// folds, fault plan and the dataset. Sessions agreeing on this string
/// may share cached trial outcomes; sessions differing in any part may
/// not (see [`Server`] docs). The session id is deliberately absent —
/// identical work under different ids is the warm-replay case.
fn context_key(request: &SessionRequest) -> String {
    let dataset = match &request.dataset {
        // Hash inline CSV text instead of embedding it (it can be large);
        // FNV-1a over the bytes plus the length is collision-safe enough
        // for a correctness boundary that only risks extra cache misses…
        // except it is a *sharing* boundary, so the length is included to
        // cheaply harden it further.
        DatasetSpec::Csv(text) => format!("csv:{:016x}:{}", fnv1a(text.as_bytes()), text.len()),
        DatasetSpec::Synth(spec) => format!("synth:{spec:?}"),
    };
    format!(
        "{}|{:?}|seed={}|folds={}|faults={:?}|{dataset}",
        request.algorithm.as_deref().unwrap_or("<dmd-select>"),
        request.optimizer,
        request.seed,
        request.folds,
        request.faults,
    )
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drop provenance-only events from a session trace, keeping the byte
/// string the determinism contract is stated over. Lines the codec
/// cannot parse are kept — an undecodable line is evidence, not noise.
pub fn filter_history(raw: &str) -> Vec<String> {
    raw.lines()
        .filter(|line| match parse_line(line) {
            Ok(record) => !PROVENANCE_KINDS.contains(&record.event.kind()),
            Err(_) => true,
        })
        .map(str::to_string)
        .collect()
}
