//! The session protocol: line-delimited JSON requests and responses.
//!
//! One request is one line of JSON; one response is one line of JSON.
//! The codec is deliberately strict — the server is a long-running
//! process fed by untrusted pipes, so *every* malformed input must map
//! to a typed [`ProtocolError`] (never a panic, never a silent default):
//!
//! * lines longer than [`MAX_LINE_BYTES`] are rejected before parsing;
//! * duplicate keys anywhere in the document are rejected (the vendored
//!   JSON tree preserves them, so they are detectable — most parsers
//!   silently keep one, which is how request-smuggling bugs start);
//! * unknown fields are rejected by name;
//! * numbers are extracted *strictly*: a `u64` field rejects floats,
//!   negatives, and the hostile `1e999`-style literals that parse to
//!   `f64::INFINITY`, instead of truncating them.
//!
//! A well-formed request names a session id, a seed, an evaluation
//! budget, a dataset (inline typed CSV or a seeded synthetic spec), and
//! optionally an inner optimizer, a fault-injection plan (the
//! per-session equivalent of `AUTOMODEL_FAULTS`), and checkpointing
//! flags. The response carries the tuned solution plus the session's
//! filtered trial history — the byte string the conformance suite
//! compares across concurrent and solo runs.

use automodel_core::InnerOptimizer;
use automodel_data::{SynthFamily, SynthSpec};
use automodel_parallel::{FaultPlan, TrialPolicy};
use automodel_trace::f64_to_hex;
use serde_json::Value;
use std::fmt;

/// Hard ceiling on one request line (bytes, newline excluded). Inline
/// CSV datasets must fit inside it.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// Default evaluation budget when a request does not name one.
pub const DEFAULT_BUDGET: usize = 24;

/// Default CV folds when a request does not name them.
pub const DEFAULT_FOLDS: usize = 3;

/// The typed failure taxonomy. `wire` names are stable — clients and the
/// conformance suite match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line exceeds [`MAX_LINE_BYTES`].
    Oversized,
    /// The line is not valid JSON.
    InvalidJson,
    /// The document is valid JSON but not an object.
    NotObject,
    /// A key appears more than once somewhere in the document.
    DuplicateField,
    /// A field name the protocol does not define.
    UnknownField,
    /// A required field is absent.
    MissingField,
    /// A field holds the wrong JSON type.
    InvalidType,
    /// A field holds the right type but an out-of-range or hostile value.
    InvalidValue,
    /// The dataset payload failed to materialize (CSV parse error, …).
    Dataset,
    /// The session itself failed after admission (tuning error).
    Session,
}

impl ErrorKind {
    pub fn wire(self) -> &'static str {
        match self {
            ErrorKind::Oversized => "oversized",
            ErrorKind::InvalidJson => "invalid-json",
            ErrorKind::NotObject => "not-object",
            ErrorKind::DuplicateField => "duplicate-field",
            ErrorKind::UnknownField => "unknown-field",
            ErrorKind::MissingField => "missing-field",
            ErrorKind::InvalidType => "invalid-type",
            ErrorKind::InvalidValue => "invalid-value",
            ErrorKind::Dataset => "dataset",
            ErrorKind::Session => "session",
        }
    }
}

/// A typed rejection: the kind plus a human detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    pub kind: ErrorKind,
    pub detail: String,
}

impl ProtocolError {
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> ProtocolError {
        ProtocolError {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.wire(), self.detail)
    }
}

impl std::error::Error for ProtocolError {}

/// Where the session's dataset comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// Inline typed CSV (`num:`/`cat:`/`class:` header), as `solve --csv`
    /// reads from disk.
    Csv(String),
    /// A seeded synthetic dataset (deterministic generation).
    Synth(SynthSpec),
}

/// One admitted session request.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// Session id: 1–64 chars of `[A-Za-z0-9._-]` (it keys trace files
    /// and checkpoint directories, so path separators are rejected).
    pub id: String,
    pub seed: u64,
    /// Evaluation budget, admission-clamped to the server's ceiling.
    pub budget: usize,
    pub folds: usize,
    pub optimizer: InnerOptimizer,
    /// Tune this algorithm directly instead of running DMD selection.
    pub algorithm: Option<String>,
    pub dataset: DatasetSpec,
    /// Per-session fault injection (the `AUTOMODEL_FAULTS` grammar).
    pub faults: Option<FaultPlan>,
    /// Checkpoint this session's batch boundaries durably.
    pub checkpoint: bool,
    /// Resume from this session's newest checkpoint before tuning.
    pub resume: bool,
}

impl SessionRequest {
    /// The effective trial policy: an explicit per-session fault plan
    /// when requested, the process environment otherwise (the server
    /// validates `AUTOMODEL_FAULTS` at startup, so the fallback is safe).
    pub fn policy(&self) -> TrialPolicy {
        match &self.faults {
            Some(plan) => TrialPolicy::default().with_faults(plan.clone()),
            None => TrialPolicy::from_env_or_default(),
        }
    }
}

/// The tuned answer plus per-session provenance counters and the
/// filtered trial history.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSolution {
    pub algorithm: String,
    pub config: String,
    pub score: f64,
    pub technique: String,
    pub trials: usize,
    pub quarantined: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub warm_hits: u64,
    /// The session's trace stream with provenance-only events (cache
    /// hits/misses, warm hits, artifact loads, checkpoints, recoveries)
    /// filtered out: the byte string the session determinism contract is
    /// stated over.
    pub history: Vec<String>,
}

/// One response line: the echoed session id and either a solution or a
/// typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    pub id: String,
    pub outcome: Result<SessionSolution, ProtocolError>,
}

impl SessionResult {
    pub fn failure(id: impl Into<String>, error: ProtocolError) -> SessionResult {
        SessionResult {
            id: id.into(),
            outcome: Err(error),
        }
    }

    /// Encode as one JSON line (no trailing newline). The score is
    /// carried twice: as a JSON number for humans and as canonical hex
    /// bits for bit-exact comparison (JSON float round-trips are not
    /// part of the identity contract; the hex form is).
    pub fn to_line(&self) -> String {
        let value = match &self.outcome {
            Ok(s) => Value::Object(vec![
                ("id".into(), Value::String(self.id.clone())),
                ("ok".into(), Value::Bool(true)),
                ("algorithm".into(), Value::String(s.algorithm.clone())),
                ("config".into(), Value::String(s.config.clone())),
                ("score".into(), Value::F64(s.score)),
                ("score_bits".into(), Value::String(f64_to_hex(s.score))),
                ("technique".into(), Value::String(s.technique.clone())),
                ("trials".into(), Value::U64(s.trials as u64)),
                ("quarantined".into(), Value::U64(s.quarantined as u64)),
                ("cache_hits".into(), Value::U64(s.cache_hits)),
                ("cache_misses".into(), Value::U64(s.cache_misses)),
                ("warm_hits".into(), Value::U64(s.warm_hits)),
                (
                    "history".into(),
                    Value::Array(s.history.iter().map(|l| Value::String(l.clone())).collect()),
                ),
            ]),
            Err(e) => Value::Object(vec![
                ("id".into(), Value::String(self.id.clone())),
                ("ok".into(), Value::Bool(false)),
                (
                    "error".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::String(e.kind.wire().into())),
                        ("detail".into(), Value::String(e.detail.clone())),
                    ]),
                ),
            ]),
        };
        serde_json::to_string(&value).unwrap_or_else(|_| {
            // The value tree above contains no unserializable shapes; this
            // arm exists only to keep the crate panic-free by construction.
            "{\"id\":\"\",\"ok\":false,\"error\":{\"kind\":\"session\",\"detail\":\"encode failed\"}}"
                .to_string()
        })
    }
}

const KNOWN_FIELDS: &[&str] = &[
    "id",
    "seed",
    "budget",
    "folds",
    "optimizer",
    "algorithm",
    "dataset",
    "faults",
    "checkpoint",
    "resume",
];

const SYNTH_FIELDS: &[&str] = &[
    "rows",
    "numeric",
    "categorical",
    "classes",
    "family",
    "seed",
];

/// Parse and validate one request line against the server's budget
/// ceiling. Every failure is a typed [`ProtocolError`].
pub fn parse_request(line: &str, max_budget: usize) -> Result<SessionRequest, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::new(
            ErrorKind::Oversized,
            format!(
                "{} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
                line.len()
            ),
        ));
    }
    let value: Value = serde_json::from_str(line)
        .map_err(|e| ProtocolError::new(ErrorKind::InvalidJson, e.to_string()))?;
    reject_duplicates(&value, "request")?;
    let Value::Object(fields) = &value else {
        return Err(ProtocolError::new(
            ErrorKind::NotObject,
            "a request is a JSON object",
        ));
    };
    for (key, _) in fields {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            return Err(ProtocolError::new(
                ErrorKind::UnknownField,
                format!("unknown field `{key}`"),
            ));
        }
    }

    let id = require_str(&value, "id")?;
    if id.is_empty() || id.len() > 64 {
        return Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            "`id` must be 1-64 characters",
        ));
    }
    if !id
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            "`id` may only contain [A-Za-z0-9._-]",
        ));
    }

    let seed = opt_u64(&value, "seed")?.unwrap_or(0);
    let budget = match opt_u64(&value, "budget")? {
        Some(b) => usize::try_from(b).unwrap_or(usize::MAX),
        None => DEFAULT_BUDGET,
    };
    if budget == 0 || budget > max_budget {
        return Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            format!("`budget` must be in 1..={max_budget}, got {budget}"),
        ));
    }
    let folds = match opt_u64(&value, "folds")? {
        Some(f) => usize::try_from(f).unwrap_or(usize::MAX),
        None => DEFAULT_FOLDS,
    };
    if !(2..=16).contains(&folds) {
        return Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            format!("`folds` must be in 2..=16, got {folds}"),
        ));
    }
    let optimizer = match opt_str(&value, "optimizer")? {
        Some(name) => InnerOptimizer::parse(name).ok_or_else(|| {
            ProtocolError::new(
                ErrorKind::InvalidValue,
                format!("`optimizer` must be auto, sha or hyperband, got `{name}`"),
            )
        })?,
        None => InnerOptimizer::Auto,
    };
    let algorithm = opt_str(&value, "algorithm")?.map(str::to_string);
    let dataset = parse_dataset(value.get("dataset").ok_or_else(|| {
        ProtocolError::new(ErrorKind::MissingField, "missing required field `dataset`")
    })?)?;
    let faults =
        match opt_str(&value, "faults")? {
            Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| {
                ProtocolError::new(ErrorKind::InvalidValue, format!("`faults`: {e}"))
            })?),
            None => None,
        };
    let checkpoint = opt_bool(&value, "checkpoint")?.unwrap_or(false);
    let resume = opt_bool(&value, "resume")?.unwrap_or(false);
    if resume && !checkpoint {
        return Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            "`resume` requires `checkpoint`",
        ));
    }

    Ok(SessionRequest {
        id: id.to_string(),
        seed,
        budget,
        folds,
        optimizer,
        algorithm,
        dataset,
        faults,
        checkpoint,
        resume,
    })
}

fn parse_dataset(value: &Value) -> Result<DatasetSpec, ProtocolError> {
    let Value::Object(fields) = value else {
        return Err(ProtocolError::new(
            ErrorKind::InvalidType,
            "`dataset` must be an object",
        ));
    };
    match fields.as_slice() {
        [(key, payload)] if key == "csv" => match payload {
            Value::String(csv) if !csv.trim().is_empty() => Ok(DatasetSpec::Csv(csv.clone())),
            Value::String(_) => Err(ProtocolError::new(
                ErrorKind::InvalidValue,
                "`dataset.csv` must not be empty",
            )),
            other => Err(ProtocolError::new(
                ErrorKind::InvalidType,
                format!("`dataset.csv` must be a string, got {}", type_name(other)),
            )),
        },
        [(key, payload)] if key == "synth" => parse_synth(payload),
        [(key, _)] => Err(ProtocolError::new(
            ErrorKind::UnknownField,
            format!("unknown dataset field `{key}` (expected `csv` or `synth`)"),
        )),
        _ => Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            "`dataset` must hold exactly one of `csv` or `synth`",
        )),
    }
}

fn parse_synth(value: &Value) -> Result<DatasetSpec, ProtocolError> {
    let Value::Object(fields) = value else {
        return Err(ProtocolError::new(
            ErrorKind::InvalidType,
            "`dataset.synth` must be an object",
        ));
    };
    for (key, _) in fields {
        if !SYNTH_FIELDS.contains(&key.as_str()) {
            return Err(ProtocolError::new(
                ErrorKind::UnknownField,
                format!("unknown synth field `{key}`"),
            ));
        }
    }
    let rows = bounded(value, "rows", 20, 10_000)?;
    let numeric = bounded(value, "numeric", 0, 64)?;
    let categorical = bounded(value, "categorical", 0, 64)?;
    if numeric + categorical == 0 {
        return Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            "a synth dataset needs at least one attribute",
        ));
    }
    let classes = bounded(value, "classes", 2, 32)?;
    let seed = opt_u64(value, "seed")?.unwrap_or(0);
    let family = match opt_str(value, "family")?.unwrap_or("hyperplane") {
        "hyperplane" => SynthFamily::Hyperplane,
        "ring" => SynthFamily::Ring,
        "mixed" => SynthFamily::Mixed,
        "blobs" => SynthFamily::GaussianBlobs { spread: 1.5 },
        "xor" => SynthFamily::Xor { dims: 2 },
        other => {
            return Err(ProtocolError::new(
                ErrorKind::InvalidValue,
                format!("unknown synth family `{other}`"),
            ))
        }
    };
    let name = format!("synth-{seed}");
    Ok(DatasetSpec::Synth(SynthSpec::new(
        name,
        rows,
        numeric,
        categorical,
        classes,
        family,
        seed,
    )))
}

fn bounded(value: &Value, key: &str, lo: usize, hi: usize) -> Result<usize, ProtocolError> {
    let n = opt_u64(value, key)?.ok_or_else(|| {
        ProtocolError::new(
            ErrorKind::MissingField,
            format!("missing synth field `{key}`"),
        )
    })?;
    let n = usize::try_from(n).unwrap_or(usize::MAX);
    if !(lo..=hi).contains(&n) {
        return Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            format!("`{key}` must be in {lo}..={hi}, got {n}"),
        ));
    }
    Ok(n)
}

/// Reject duplicate keys anywhere in the tree. The vendored JSON value
/// keeps objects as ordered pair lists, so duplicates survive parsing
/// and are detectable here.
fn reject_duplicates(value: &Value, path: &str) -> Result<(), ProtocolError> {
    match value {
        Value::Object(pairs) => {
            for (i, (key, inner)) in pairs.iter().enumerate() {
                if pairs[..i].iter().any(|(k, _)| k == key) {
                    return Err(ProtocolError::new(
                        ErrorKind::DuplicateField,
                        format!("duplicate field `{key}` in {path}"),
                    ));
                }
                reject_duplicates(inner, key)?;
            }
            Ok(())
        }
        Value::Array(items) => {
            for item in items {
                reject_duplicates(item, path)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Strict u64 extraction: absent ⇒ `None`; floats (including the hostile
/// `1e999` ⇒ ∞ literals), negatives, bools and strings are typed errors.
fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, ProtocolError> {
    match value.get(key) {
        None => Ok(None),
        Some(Value::U64(n)) => Ok(Some(*n)),
        Some(Value::I64(n)) => u64::try_from(*n).map(Some).map_err(|_| {
            ProtocolError::new(
                ErrorKind::InvalidValue,
                format!("`{key}` must be a non-negative integer, got {n}"),
            )
        }),
        Some(Value::F64(x)) => Err(ProtocolError::new(
            ErrorKind::InvalidValue,
            format!("`{key}` must be an integer, got the float {x}"),
        )),
        Some(other) => Err(ProtocolError::new(
            ErrorKind::InvalidType,
            format!(
                "`{key}` must be an unsigned integer, got {}",
                type_name(other)
            ),
        )),
    }
}

fn opt_str<'a>(value: &'a Value, key: &str) -> Result<Option<&'a str>, ProtocolError> {
    match value.get(key) {
        None => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.as_str())),
        Some(other) => Err(ProtocolError::new(
            ErrorKind::InvalidType,
            format!("`{key}` must be a string, got {}", type_name(other)),
        )),
    }
}

fn require_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, ProtocolError> {
    opt_str(value, key)?.ok_or_else(|| {
        ProtocolError::new(
            ErrorKind::MissingField,
            format!("missing required field `{key}`"),
        )
    })
}

fn opt_bool(value: &Value, key: &str) -> Result<Option<bool>, ProtocolError> {
    match value.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(ProtocolError::new(
            ErrorKind::InvalidType,
            format!("`{key}` must be a boolean, got {}", type_name(other)),
        )),
    }
}

fn type_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "float",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: usize = 512;

    fn ok_line() -> String {
        r#"{"id":"s1","seed":7,"budget":12,"folds":3,"optimizer":"sha","dataset":{"synth":{"rows":100,"numeric":3,"categorical":0,"classes":2,"family":"hyperplane","seed":9}}}"#
            .to_string()
    }

    #[test]
    fn well_formed_requests_parse() {
        let req = parse_request(&ok_line(), MAX).unwrap();
        assert_eq!(req.id, "s1");
        assert_eq!(req.seed, 7);
        assert_eq!(req.budget, 12);
        assert_eq!(req.optimizer, InnerOptimizer::Sha);
        assert!(matches!(req.dataset, DatasetSpec::Synth(_)));
        assert!(req.faults.is_none());
        assert!(!req.checkpoint && !req.resume);
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let req = parse_request(
            r#"{"id":"d","dataset":{"synth":{"rows":50,"numeric":2,"categorical":0,"classes":2}}}"#,
            MAX,
        )
        .unwrap();
        assert_eq!(req.seed, 0);
        assert_eq!(req.budget, DEFAULT_BUDGET);
        assert_eq!(req.folds, DEFAULT_FOLDS);
        assert_eq!(req.optimizer, InnerOptimizer::Auto);
    }

    #[test]
    fn csv_datasets_parse() {
        let req = parse_request(
            r#"{"id":"c","dataset":{"csv":"num:x,class:y\n1,a\n2,b\n"}}"#,
            MAX,
        )
        .unwrap();
        assert!(matches!(req.dataset, DatasetSpec::Csv(_)));
    }

    #[test]
    fn each_malformation_maps_to_its_kind() {
        let cases: &[(&str, ErrorKind)] = &[
            ("{not json", ErrorKind::InvalidJson),
            ("[1,2]", ErrorKind::NotObject),
            (
                r#"{"id":"a","id":"b","dataset":{"csv":"x"}}"#,
                ErrorKind::DuplicateField,
            ),
            (
                r#"{"id":"a","surprise":1,"dataset":{"csv":"x"}}"#,
                ErrorKind::UnknownField,
            ),
            (r#"{"dataset":{"csv":"x"}}"#, ErrorKind::MissingField),
            (r#"{"id":42,"dataset":{"csv":"x"}}"#, ErrorKind::InvalidType),
            (
                r#"{"id":"../etc","dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
            (
                r#"{"id":"a","seed":1e999,"dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
            (
                r#"{"id":"a","seed":-3,"dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
            (
                r#"{"id":"a","budget":0,"dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
            (
                r#"{"id":"a","budget":99999,"dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
            (
                r#"{"id":"a","optimizer":"smac","dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
            (r#"{"id":"a","dataset":"inline"}"#, ErrorKind::InvalidType),
            (r#"{"id":"a","dataset":{}}"#, ErrorKind::InvalidValue),
            (
                r#"{"id":"a","dataset":{"synth":{"rows":50,"numeric":2,"categorical":0,"classes":2,"family":"cubist"}}}"#,
                ErrorKind::InvalidValue,
            ),
            (
                r#"{"id":"a","faults":"seed=1,warp=0.5","dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
            (
                r#"{"id":"a","resume":true,"dataset":{"csv":"x"}}"#,
                ErrorKind::InvalidValue,
            ),
        ];
        for (line, kind) in cases {
            let err = parse_request(line, MAX).expect_err(line);
            assert_eq!(err.kind, *kind, "line {line} -> {err}");
        }
    }

    #[test]
    fn oversized_lines_are_rejected_before_parsing() {
        let line = format!(
            r#"{{"id":"a","dataset":{{"csv":"{}"}}}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        let err = parse_request(&line, MAX).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Oversized);
    }

    #[test]
    fn nested_duplicates_are_caught() {
        let line = r#"{"id":"a","dataset":{"synth":{"rows":50,"rows":60,"numeric":2,"categorical":0,"classes":2}}}"#;
        let err = parse_request(line, MAX).unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateField);
    }

    #[test]
    fn fault_plans_ride_the_env_grammar() {
        let line = r#"{"id":"f","faults":"seed=3,panic=0.2,nan=0.1","dataset":{"csv":"num:x,class:y\n1,a\n"}}"#;
        let req = parse_request(line, MAX).unwrap();
        let plan = req.faults.clone().unwrap();
        assert_eq!(plan.seed, 3);
        let policy = req.policy();
        assert_eq!(policy.faults.seed, 3);
    }

    #[test]
    fn result_lines_round_trip_through_json() {
        let result = SessionResult {
            id: "s1".into(),
            outcome: Ok(SessionSolution {
                algorithm: "IBk".into(),
                config: "{k=3}".into(),
                score: 0.875,
                technique: "successive-halving".into(),
                trials: 12,
                quarantined: 0,
                cache_hits: 3,
                cache_misses: 9,
                warm_hits: 1,
                history: vec!["{\"k\":\"run_start\"}".into()],
            }),
        };
        let line = result.to_line();
        let value: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(value["id"], "s1");
        assert_eq!(value["ok"], Value::Bool(true));
        assert_eq!(value["trials"], Value::U64(12));
        assert_eq!(value["score_bits"].as_str().unwrap(), f64_to_hex(0.875));

        let err =
            SessionResult::failure("bad", ProtocolError::new(ErrorKind::Oversized, "too big"));
        let value: Value = serde_json::from_str(&err.to_line()).unwrap();
        assert_eq!(value["ok"], Value::Bool(false));
        assert_eq!(value["error"]["kind"], "oversized");
    }
}
