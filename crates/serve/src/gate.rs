//! Fair scheduling of trial batches across concurrent sessions.
//!
//! Every session holds a [`SessionTicket`] in a shared
//! [`RoundRobinGate`] rotation. The ticket implements
//! [`BatchGate`](automodel_hpo::BatchGate): before an optimizer admits a
//! batch of trials it waits until the rotation points at its session,
//! then advances the rotation and proceeds. Batches therefore *start* in
//! round-robin order while their evaluations still overlap freely — the
//! gate orders admission, not execution — so one long-running session
//! cannot starve the others of batch admissions.
//!
//! The gate is timing-only by construction (see the `BatchGate`
//! contract): it carries no trial state, so it can reorder wall-clock
//! interleavings but never a session's trial history. Session
//! determinism — the crown-jewel contract of this crate — does not
//! depend on it.

use std::fmt;
use std::sync::{Arc, Condvar};

use automodel_hpo::BatchGate;
use parking_lot::Mutex;

/// The rotation: session ids in join order, plus the index of the
/// session whose turn is next.
#[derive(Debug, Default)]
struct Rota {
    members: Vec<u64>,
    next: usize,
}

/// Shared round-robin turnstile. Sessions [`join`](RoundRobinGate::join)
/// it to receive a [`SessionTicket`]; dropping the ticket (or calling
/// [`SessionTicket::leave`]) removes the session from the rotation and
/// wakes the waiters, so a finished or failed session can never wedge
/// the rotation.
#[derive(Debug, Default)]
pub struct RoundRobinGate {
    rota: Mutex<Rota>,
    turns: Condvar,
}

impl RoundRobinGate {
    pub fn new() -> Arc<RoundRobinGate> {
        Arc::new(RoundRobinGate::default())
    }

    /// Enter the rotation under a server-unique session id.
    pub fn join(self: &Arc<Self>, id: u64) -> SessionTicket {
        {
            let mut rota = self.rota.lock();
            if !rota.members.contains(&id) {
                rota.members.push(id);
            }
        }
        self.turns.notify_all();
        SessionTicket {
            shared: Arc::clone(self),
            id,
        }
    }

    /// Sessions currently in the rotation.
    pub fn members(&self) -> usize {
        self.rota.lock().members.len()
    }

    /// Block until the rotation points at `id`, then advance it. Returns
    /// immediately if `id` has already left the rotation (a late
    /// `before_batch` after `leave` must not deadlock).
    fn wait_turn(&self, id: u64) {
        let mut rota = self.rota.lock();
        loop {
            let Some(at) = rota.members.iter().position(|&m| m == id) else {
                return;
            };
            if rota.next == at {
                rota.next = (at + 1) % rota.members.len();
                drop(rota);
                self.turns.notify_all();
                return;
            }
            // The vendored parking_lot shim hands out std guards, so the
            // std Condvar pairs with them directly; poisoning is stripped
            // the same way the shim's `lock()` strips it.
            rota = match self.turns.wait(rota) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Remove `id` from the rotation, repair the turn index, and wake
    /// everyone so the rotation re-forms without the departed session.
    fn leave(&self, id: u64) {
        {
            let mut rota = self.rota.lock();
            if let Some(at) = rota.members.iter().position(|&m| m == id) {
                rota.members.remove(at);
                if at < rota.next {
                    rota.next -= 1;
                }
                if rota.next >= rota.members.len() {
                    rota.next = 0;
                }
            }
        }
        self.turns.notify_all();
    }
}

/// One session's membership in the rotation. Cloned into the session's
/// optimizer as its [`BatchGate`]; the session runner calls
/// [`leave`](SessionTicket::leave) as soon as tuning returns (drop also
/// leaves, as a backstop) so a completed session stops consuming turns.
pub struct SessionTicket {
    shared: Arc<RoundRobinGate>,
    id: u64,
}

impl SessionTicket {
    /// Leave the rotation. Idempotent.
    pub fn leave(&self) {
        self.shared.leave(self.id);
    }
}

impl BatchGate for SessionTicket {
    fn before_batch(&self) {
        self.shared.wait_turn(self.id);
    }
}

impl Drop for SessionTicket {
    fn drop(&mut self) {
        self.leave();
    }
}

impl fmt::Debug for SessionTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionTicket")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn single_member_never_blocks() {
        let gate = RoundRobinGate::new();
        let ticket = gate.join(7);
        for _ in 0..100 {
            ticket.before_batch();
        }
        assert_eq!(gate.members(), 1);
        drop(ticket);
        assert_eq!(gate.members(), 0);
    }

    #[test]
    fn batches_are_admitted_in_rotation_order() {
        let gate = RoundRobinGate::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let tickets: Vec<SessionTicket> = (0..3).map(|id| gate.join(id)).collect();
        let handles: Vec<_> = tickets
            .into_iter()
            .map(|ticket| {
                let order = Arc::clone(&order);
                thread::spawn(move || {
                    for _ in 0..10 {
                        ticket.before_batch();
                        order.lock().push(ticket.id);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock();
        assert_eq!(order.len(), 30);
        // Admissions rotate strictly, so admission counts never differ by
        // more than 1 across live sessions. The log records each thread's
        // push *after* its admission, which can lag by one batch, so the
        // observable bound is 2: while every session is still running
        // (no count has reached 10), no prefix of the log may show one
        // session more than 2 batches ahead of another.
        let mut counts = [0usize; 3];
        for &id in order.iter() {
            counts[id as usize] += 1;
            if counts.iter().any(|&c| c >= 10) {
                break;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(
                max - min <= 2,
                "unfair admission prefix {counts:?} in {order:?}"
            );
        }
    }

    #[test]
    fn leaving_mid_rotation_unblocks_the_rest() {
        let gate = RoundRobinGate::new();
        let quitter = gate.join(0);
        let stayer = gate.join(1);
        let admitted = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&admitted);
        let runner = thread::spawn(move || {
            for _ in 0..5 {
                stayer.before_batch();
                counter.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Session 0 never calls before_batch; once it leaves, session 1
        // must make progress alone instead of waiting on 0's turn.
        quitter.leave();
        runner.join().unwrap();
        assert_eq!(admitted.load(Ordering::SeqCst), 5);
        // The stayer's ticket dropped with its thread; the quitter left
        // explicitly — the rotation is empty and drop stays idempotent.
        assert_eq!(gate.members(), 0);
        drop(quitter);
        assert_eq!(gate.members(), 0);
    }

    #[test]
    fn late_before_batch_after_leave_returns_immediately() {
        let gate = RoundRobinGate::new();
        let ticket = gate.join(3);
        ticket.leave();
        ticket.before_batch(); // must not deadlock
        ticket.leave(); // idempotent
    }
}
