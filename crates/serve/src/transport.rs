//! The server's transports — and its only raw-I/O site.
//!
//! Lint L16 (`no-adhoc-io`) pins raw socket and stdin access for the
//! whole workspace's library code to this module, so every byte that
//! enters or leaves the service crosses one auditable seam. Both
//! transports speak the same protocol: one JSONL request per line in,
//! one JSONL response per line out (see [`crate::protocol`]).
//!
//! * **TCP** ([`serve_tcp`]): requests on one connection run
//!   sequentially, in order; concurrent sessions are concurrent
//!   connections. The bound address is announced on stdout as
//!   `listening on <addr>` so callers can bind port 0 and discover the
//!   ephemeral port.
//! * **stdio** ([`serve_stdio`]): every input line becomes a
//!   concurrently running session; responses are written in completion
//!   order. Returns after EOF once every in-flight session has
//!   answered — the shape batch drivers and the crash kill-drill use.
//!
//! Fairness across the concurrent sessions of either transport comes
//! from the server's shared round-robin batch gate, not from the
//! transport threads.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::session::Server;

/// Serve over TCP. Binds `addr` (use port `0` for an ephemeral port),
/// prints `listening on <addr>` to stdout, then accepts connections
/// until the process exits. Never panics; per-connection I/O errors
/// drop that connection only.
pub fn serve_tcp(server: Arc<Server>, addr: &str) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    // lint:allow(no-adhoc-print): the banner IS the protocol handshake — clients bind port 0 and parse this line to discover the ephemeral port
    println!("listening on {local}");
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let server = Arc::clone(&server);
                // lint:allow(no-adhoc-threads): transport thread per connection; trial work stays on the deterministic executor in crates/parallel, and batch admission is scheduled by the round-robin gate
                std::thread::spawn(move || handle_connection(server, stream));
            }
            // lint:allow(no-adhoc-print): accept errors predate any session, so there is no session tracer to carry them
            Err(e) => eprintln!("accept failed: {e}"),
        }
    }
    Ok(())
}

fn handle_connection(server: Arc<Server>, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(e) => {
            // lint:allow(no-adhoc-print): the connection died before a session existed; no tracer is in scope
            eprintln!("clone connection: {e}");
            return;
        }
    };
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return, // peer went away mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let mut response = server.handle_line(&line).to_line();
        response.push('\n');
        let sent = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.flush());
        if sent.is_err() {
            return;
        }
    }
}

/// Serve over stdin/stdout: each input line spawns a session that runs
/// concurrently with the others; each response is one output line,
/// written under a shared stdout lock in completion order. Returns
/// after EOF once every in-flight session has answered.
pub fn serve_stdio(server: Arc<Server>) -> Result<(), String> {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let mut workers = Vec::new();
    for line in std::io::stdin().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let server = Arc::clone(&server);
        let stdout = Arc::clone(&stdout);
        // lint:allow(no-adhoc-threads): session thread per request line; trial work stays on the deterministic executor in crates/parallel, and batch admission is scheduled by the round-robin gate
        workers.push(std::thread::spawn(move || {
            let mut response = server.handle_line(&line).to_line();
            response.push('\n');
            let mut out = stdout.lock();
            let _ = out
                .write_all(response.as_bytes())
                .and_then(|()| out.flush());
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}
