//! `automodel-serve` — a concurrent multi-session UDR service.
//!
//! A long-running server loads a persisted `AMSTORE` DMD artifact once
//! at startup and then answers many concurrent tuning sessions over a
//! line-delimited JSONL protocol (TCP or stdin/stdout). Each session
//! carries its own seed, evaluation budget, fault policy, optimizer
//! choice and optional checkpoint stream; all sessions share the
//! loaded DMD, context-keyed read-mostly trial-cache pools (identical
//! requests warm-replay each other; differing contexts are isolated)
//! and a fair round-robin batch-admission gate. Plain std threads carry the
//! transports; trial evaluation stays on the deterministic executor in
//! `automodel-parallel` — there is no async runtime.
//!
//! # Protocol
//!
//! One JSON object per request line, one per response line.
//!
//! Request fields (unknown fields and duplicate keys are rejected):
//!
//! | field        | type   | default  | meaning                                          |
//! |--------------|--------|----------|--------------------------------------------------|
//! | `id`         | string | required | session id, `[A-Za-z0-9._-]{1,64}`               |
//! | `seed`       | u64    | `0`      | session seed                                     |
//! | `budget`     | u64    | `24`     | evaluations, `1..=` server ceiling               |
//! | `folds`      | u64    | `3`      | CV folds, `2..=16`                               |
//! | `optimizer`  | string | `auto`   | `auto` \| `sha` \| `hyperband`                   |
//! | `algorithm`  | string | absent   | tune this algorithm; absent ⇒ DMD selection      |
//! | `dataset`    | object | required | `{"csv": "..."}` or `{"synth": {...}}`           |
//! | `faults`     | string | absent   | per-session `AUTOMODEL_FAULTS` plan              |
//! | `checkpoint` | bool   | `false`  | checkpoint batch boundaries durably              |
//! | `resume`     | bool   | `false`  | warm-replay this id's newest checkpoint          |
//!
//! A response echoes the id and carries either the tuned solution
//! (algorithm, config, score as both JSON number and canonical hex
//! bits, trial counts, cache counters, and the filtered trial history)
//! or a typed error (`{"ok": false, "error": "<kind>", ...}`).
//!
//! # Contracts
//!
//! * **Session determinism:** same request + same seed ⇒ byte-identical
//!   filtered trial history, regardless of concurrent sessions and
//!   executor width (see [`session`] for the three rules carrying it).
//! * **Isolation:** a session's faults, malformed input, or checkpoint
//!   I/O errors produce a typed error on *its* response line and leave
//!   every other session untouched.
//! * **Robustness:** arbitrary input bytes yield a typed error, never a
//!   panic — this crate is on the workspace's panic-free list (L1).
//!
//! `tests/serve_oracle.rs` at the workspace root is the conformance
//! suite: it drives a spawned server over the real protocol and checks
//! each contract end to end.

pub mod gate;
pub mod protocol;
pub mod session;
pub mod transport;

pub use gate::{RoundRobinGate, SessionTicket};
pub use protocol::{
    parse_request, DatasetSpec, ErrorKind, ProtocolError, SessionRequest, SessionResult,
    SessionSolution, DEFAULT_BUDGET, DEFAULT_FOLDS, MAX_LINE_BYTES,
};
pub use session::{filter_history, Server, ServerConfig, PROVENANCE_KINDS};
pub use transport::{serve_stdio, serve_tcp};
