//! Fuzz-style protocol robustness: seeded random mutations of valid
//! request lines must always yield a typed `ProtocolError` or a
//! well-formed `SessionRequest` — never a panic, and deterministically.

use automodel_serve::{parse_request, ErrorKind, SessionResult, MAX_LINE_BYTES};

const MAX_BUDGET: usize = 64;

/// Deterministic LCG (same constants as the workspace's seeded tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn valid_line(rng: &mut Lcg) -> String {
    let family = ["hyperplane", "ring", "mixed", "blobs", "xor"][rng.below(5)];
    let optimizer = ["auto", "sha", "hyperband"][rng.below(3)];
    format!(
        concat!(
            "{{\"id\":\"fz-{}\",\"seed\":{},\"budget\":{},\"folds\":{},",
            "\"optimizer\":\"{}\",\"dataset\":{{\"synth\":{{\"rows\":{},",
            "\"numeric\":{},\"categorical\":1,\"classes\":2,",
            "\"family\":\"{}\",\"seed\":{}}}}}}}"
        ),
        rng.below(1000),
        rng.next(),
        1 + rng.below(MAX_BUDGET),
        2 + rng.below(15),
        optimizer,
        20 + rng.below(200),
        1 + rng.below(6),
        family,
        rng.next(),
    )
}

/// Apply one seeded malformation to a valid line.
fn mutate(line: &str, rng: &mut Lcg) -> String {
    let mut bytes = line.as_bytes().to_vec();
    match rng.below(8) {
        // Truncate at a random byte boundary.
        0 => {
            bytes.truncate(rng.below(bytes.len().max(1)));
        }
        // Flip one byte to a random printable character.
        1 => {
            let at = rng.below(bytes.len());
            bytes[at] = b' ' + (rng.below(94) as u8);
        }
        // Insert a random printable character.
        2 => {
            let at = rng.below(bytes.len() + 1);
            bytes.insert(at, b' ' + (rng.below(94) as u8));
        }
        // Duplicate a field (top-level or nested).
        3 => {
            let dup = [
                "\"seed\":7,",
                "\"budget\":3,",
                "\"rows\":50,",
                "\"id\":\"dup\",",
            ][rng.below(4)];
            if let Some(brace) = line.find('{') {
                let mut s = line.to_string();
                s.insert_str(brace + 1, dup);
                return s;
            }
        }
        // Hostile floats where integers belong.
        4 => {
            let needle = ["\"seed\":", "\"budget\":", "\"folds\":", "\"rows\":"][rng.below(4)];
            let payload = ["1e999", "-1", "3.5", "1e-310", "-0.0"][rng.below(5)];
            if let Some(at) = line.find(needle) {
                let tail = &line[at + needle.len()..];
                let digits = tail.bytes().take_while(|b| b.is_ascii_digit()).count();
                let mut s = line.to_string();
                s.replace_range(at + needle.len()..at + needle.len() + digits, payload);
                return s;
            }
        }
        // Unknown field injection.
        5 => {
            if let Some(brace) = line.find('{') {
                let mut s = line.to_string();
                s.insert_str(brace + 1, "\"exploit\":true,");
                return s;
            }
        }
        // Type confusion: quote a number or unquote a string.
        6 => {
            return line.replacen("\"optimizer\":\"", "\"optimizer\":[\"", 1);
        }
        // Oversize the line past the admission cap.
        _ => {
            let mut s = line.to_string();
            let pad = "x".repeat(MAX_LINE_BYTES);
            s.insert_str(s.len() - 1, &pad);
            return s;
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn mutated_requests_never_panic_and_errors_are_deterministic() {
    let mut rng = Lcg(0xF0CC_ED01);
    for round in 0..2000 {
        let line = valid_line(&mut rng);
        let mutated = mutate(&line, &mut rng);
        let first = parse_request(&mutated, MAX_BUDGET);
        let second = parse_request(&mutated, MAX_BUDGET);
        assert_eq!(first, second, "round {round}: nondeterministic parse");
        if let Ok(request) = first {
            // Survivors must still satisfy every admission invariant.
            assert!((1..=MAX_BUDGET).contains(&request.budget), "round {round}");
            assert!((2..=16).contains(&request.folds), "round {round}");
            assert!(
                !request.id.is_empty()
                    && request.id.len() <= 64
                    && request
                        .id
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b"._-".contains(&b)),
                "round {round}: admitted hostile id {:?}",
                request.id
            );
        }
    }
}

#[test]
fn valid_lines_always_parse() {
    let mut rng = Lcg(42);
    for round in 0..500 {
        let line = valid_line(&mut rng);
        let parsed = parse_request(&line, MAX_BUDGET);
        assert!(parsed.is_ok(), "round {round}: {line} -> {parsed:?}");
    }
}

#[test]
fn truncations_of_a_valid_line_all_yield_typed_errors() {
    let mut rng = Lcg(7);
    let line = valid_line(&mut rng);
    for cut in 1..line.len() {
        let result = parse_request(&line[..cut], MAX_BUDGET);
        let error = result.expect_err("every strict prefix is malformed");
        assert!(
            matches!(
                error.kind,
                ErrorKind::InvalidJson | ErrorKind::MissingField | ErrorKind::NotObject
            ),
            "cut {cut}: unexpected kind {:?}",
            error.kind
        );
    }
}

#[test]
fn oversized_lines_are_rejected_before_parsing() {
    let huge = format!("{{\"id\":\"a\",\"x\":\"{}\"}}", "y".repeat(MAX_LINE_BYTES));
    let error = parse_request(&huge, MAX_BUDGET).expect_err("oversized");
    assert_eq!(error.kind, ErrorKind::Oversized);
}

#[test]
fn error_responses_are_valid_single_line_json() {
    let mut rng = Lcg(0xBEEF);
    for _ in 0..200 {
        let mutated = mutate(&valid_line(&mut rng), &mut rng);
        if let Err(error) = parse_request(&mutated, MAX_BUDGET) {
            let line = SessionResult::failure("x", error).to_line();
            assert!(!line.contains('\n'), "response must stay one line");
            let value: serde_json::Value =
                serde_json::from_str(&line).expect("error responses must round-trip as JSON");
            assert!(matches!(
                value.get("ok"),
                Some(serde_json::Value::Bool(false))
            ));
            assert!(value.get("error").is_some());
        }
    }
}
