//! In-process session semantics: determinism under sharing, fault
//! containment, budget enforcement. The workspace-root
//! `tests/serve_oracle.rs` drives the same contracts over the real
//! spawned-binary protocol; this file checks them at the library seam
//! where failures are cheap to localize.

use std::sync::{Arc, OnceLock};

use automodel_core::{DmdConfig, DmdInput};
use automodel_knowledge::CorpusSpec;
use automodel_parallel::TrialCache;
use automodel_serve::{Server, ServerConfig};

static SERVER: OnceLock<Arc<Server>> = OnceLock::new();

/// One shared server for the whole file: sessions sharing one cache is
/// the production shape, and the determinism assertions below must hold
/// through that sharing.
fn server() -> Arc<Server> {
    SERVER
        .get_or_init(|| {
            let corpus = CorpusSpec::small().build();
            let input = DmdInput::synthetic_from_corpus(&corpus, 60, 5);
            let dmd = DmdConfig::fast().run(&input).expect("demo DMD");
            let snapshot = TrialCache::new(1).snapshot();
            Arc::new(Server::new(dmd, &snapshot, ServerConfig::default()))
        })
        .clone()
}

fn request(id: &str, seed: u64, extra: &str) -> String {
    format!(
        concat!(
            "{{\"id\":\"{}\",\"seed\":{},\"budget\":8,\"folds\":3,",
            "\"algorithm\":\"IBk\",{}\"dataset\":{{\"synth\":{{\"rows\":80,",
            "\"numeric\":3,\"categorical\":1,\"classes\":2,",
            "\"family\":\"hyperplane\",\"seed\":11}}}}}}"
        ),
        id, seed, extra
    )
}

#[test]
fn identical_requests_replay_byte_identically() {
    let server = server();
    let cold = server.handle_line(&request("replay-a", 5, ""));
    let warm = server.handle_line(&request("replay-b", 5, ""));
    let cold = cold.outcome.expect("cold session solves");
    let warm = warm.outcome.expect("warm session solves");
    assert!(!cold.history.is_empty());
    // The warm run replays the cold run through the shared cache; the
    // filtered history and the score bits must not move.
    assert_eq!(cold.history, warm.history);
    assert_eq!(cold.score.to_bits(), warm.score.to_bits());
    assert_eq!(cold.config, warm.config);
}

#[test]
fn concurrent_sessions_match_their_solo_histories() {
    let server = server();
    let seeds = [101u64, 102, 103, 104];
    let solo: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            let result = server.handle_line(&request("solo", seed, ""));
            result.outcome.expect("solo session solves").history
        })
        .collect();
    let handles: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let result = server.handle_line(&request("conc", seed, ""));
                result.outcome.expect("concurrent session solves").history
            })
        })
        .collect();
    for (expected, handle) in solo.iter().zip(handles) {
        let got = handle.join().expect("session thread");
        assert_eq!(expected, &got, "concurrency changed a session history");
    }
}

#[test]
fn faulty_session_is_contained() {
    let server = server();
    let clean_before = server
        .handle_line(&request("contain-clean", 31, ""))
        .outcome
        .expect("clean session solves");
    // A hostile fault plan in one session: NaN scores at a high rate.
    let faulty = server.handle_line(&request(
        "contain-faulty",
        31,
        "\"faults\":\"seed=9,nan=0.8\",",
    ));
    // The faulty session answers on its own line — solved-with-
    // quarantines or a typed error, never a panic or a poisoned server.
    match faulty.outcome {
        Ok(solution) => assert!(solution.quarantined > 0 || solution.trials > 0),
        Err(error) => assert_eq!(error.kind.wire(), "session"),
    }
    // And the shared substrate is untouched: a clean rerun still
    // byte-matches the pre-fault history.
    let clean_after = server
        .handle_line(&request("contain-clean2", 31, ""))
        .outcome
        .expect("clean session still solves");
    assert_eq!(clean_before.history, clean_after.history);
}

#[test]
fn budget_ceiling_is_enforced_per_session() {
    let server = server();
    let solved = server
        .handle_line(&request("budget", 7, ""))
        .outcome
        .expect("session solves");
    assert!(
        solved.trials <= 8,
        "budget 8 but ran {} trials",
        solved.trials
    );

    let oversized = server.handle_line(&request("budget-big", 7, "").replacen(
        "\"budget\":8",
        "\"budget\":100000",
        1,
    ));
    let error = oversized.outcome.expect_err("over-ceiling budget rejected");
    assert_eq!(error.kind.wire(), "invalid-value");
}

#[test]
fn malformed_lines_answer_with_typed_errors() {
    let server = server();
    for (line, kind) in [
        ("{", "invalid-json"),
        ("[1,2]", "not-object"),
        ("{\"seed\":1}", "missing-field"),
        (
            "{\"id\":\"x\",\"seed\":1,\"exploit\":true}",
            "unknown-field",
        ),
    ] {
        let result = server.handle_line(line);
        let error = result.outcome.expect_err("malformed line rejected");
        assert_eq!(error.kind.wire(), kind, "line: {line}");
    }
}
