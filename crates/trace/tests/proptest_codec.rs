//! Seeded property tests: canonical JSONL trace-codec laws.
//!
//! Whatever the event payload — hostile strings full of quotes,
//! backslashes, control characters and multi-byte unicode; floats drawn
//! from *arbitrary bit patterns* (NaN payloads, −0.0, ±∞, subnormals);
//! huge config names — (1) `encode → decode → encode` is byte-stable,
//! (2) decoding canonical output always succeeds, and (3) decoding
//! mutated or garbage input never panics: it returns a typed error or a
//! record, nothing else.
//!
//! Cases are generated from explicit seeds (no proptest: the build is
//! offline, and deterministic replay is a workspace invariant — every
//! failure reproduces from the printed case number).

use automodel_trace::{
    canonical_f64_bits, decode, encode_line, parse_line, TraceEvent, TraceRecord,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive a per-case rng: distinct streams per (test, case) pair.
fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

/// A string from a hostile alphabet: JSON metacharacters, escapes,
/// controls, multi-byte unicode, and — occasionally — huge length (the
/// "config name from hell").
fn hostile_string(rng: &mut StdRng) -> String {
    const ALPHABET: [char; 20] = [
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', '\u{1f}',
        '{', '}', ':', 'λ', '日', '🦀',
    ];
    let len = if rng.gen_range(0..20usize) == 0 {
        rng.gen_range(2_000usize..10_000) // huge name
    } else {
        rng.gen_range(0usize..40)
    };
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect()
}

/// A float from arbitrary bits: every NaN payload, both zeros, both
/// infinities, subnormals — the full 2^64 space.
fn hostile_f64(rng: &mut StdRng) -> f64 {
    f64::from_bits(rng.gen::<u64>())
}

/// An arbitrary event of any kind.
fn random_event(rng: &mut StdRng) -> TraceEvent {
    match rng.gen_range(0..22usize) {
        0 => TraceEvent::RunStart {
            optimizer: hostile_string(rng),
            seed: rng.gen(),
        },
        1 => TraceEvent::RunEnd {
            optimizer: hostile_string(rng),
            trials: rng.gen(),
            best: if rng.gen() {
                Some(hostile_f64(rng))
            } else {
                None
            },
        },
        2 => TraceEvent::StageStart {
            stage: hostile_string(rng),
        },
        3 => TraceEvent::StageEnd {
            stage: hostile_string(rng),
            detail: hostile_string(rng),
        },
        4 => TraceEvent::BatchStart {
            first_trial: rng.gen(),
            size: rng.gen(),
        },
        5 => TraceEvent::BatchEnd {
            first_trial: rng.gen(),
            evaluated: rng.gen(),
        },
        6 => TraceEvent::TrialStart {
            trial: rng.gen(),
            config: hostile_string(rng),
        },
        7 => TraceEvent::TrialEnd {
            trial: rng.gen(),
            score: hostile_f64(rng),
            attempts: rng.gen(),
            status: hostile_string(rng),
        },
        8 => TraceEvent::CacheHit { trial: rng.gen() },
        9 => TraceEvent::CacheMiss { trial: rng.gen() },
        10 => TraceEvent::Fault {
            trial: rng.gen(),
            attempt: rng.gen(),
            kind: hostile_string(rng),
            message: hostile_string(rng),
        },
        11 => TraceEvent::Retry {
            trial: rng.gen(),
            attempt: rng.gen(),
        },
        12 => TraceEvent::Quarantine {
            trial: rng.gen(),
            config: hostile_string(rng),
        },
        13 => TraceEvent::QuarantineSkip { trial: rng.gen() },
        14 => TraceEvent::WarmHit { trial: rng.gen() },
        15 => TraceEvent::ArtifactLoad {
            path: hostile_string(rng),
            sections: rng.gen(),
            bytes: rng.gen(),
        },
        16 => TraceEvent::Checkpoint {
            seq: rng.gen(),
            trials: rng.gen(),
            bytes: rng.gen(),
        },
        17 => TraceEvent::Recovery {
            seq: rng.gen(),
            trials: rng.gen(),
            restored: rng.gen(),
        },
        18 => TraceEvent::RungStart {
            bracket: rng.gen(),
            rung: rng.gen(),
            candidates: rng.gen(),
            num: rng.gen(),
            den: rng.gen(),
        },
        19 => TraceEvent::Promote {
            trial: rng.gen(),
            rung: rng.gen(),
        },
        20 => TraceEvent::Eliminate {
            trial: rng.gen(),
            rung: rng.gen(),
        },
        _ => TraceEvent::BudgetExhausted {
            evals: rng.gen(),
            reason: hostile_string(rng),
        },
    }
}

fn random_record(rng: &mut StdRng) -> TraceRecord {
    TraceRecord {
        t_us: rng.gen(),
        event: random_event(rng),
    }
}

#[test]
fn encode_decode_encode_is_byte_stable() {
    for case in 0..512u64 {
        let mut rng = case_rng(21, case);
        let record = random_record(&mut rng);
        let line = encode_line(&record);
        let back = parse_line(&line)
            .unwrap_or_else(|e| panic!("case {case}: canonical line failed to decode: {e}"));
        assert_eq!(
            encode_line(&back),
            line,
            "case {case}: re-encode not byte-stable"
        );
    }
}

#[test]
fn whole_documents_round_trip_byte_stably() {
    for case in 0..32u64 {
        let mut rng = case_rng(22, case);
        let records: Vec<TraceRecord> = (0..rng.gen_range(0usize..20))
            .map(|_| random_record(&mut rng))
            .collect();
        let doc = automodel_trace::codec::encode(&records);
        let back = decode(&doc).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(
            automodel_trace::codec::encode(&back),
            doc,
            "case {case}: document re-encode not byte-stable"
        );
    }
}

#[test]
fn float_wire_form_always_carries_canonical_bits() {
    // Whatever bits go in, the encoded line carries the canonical
    // pattern, and a second round trip cannot change it again.
    for case in 0..256u64 {
        let mut rng = case_rng(23, case);
        let score = hostile_f64(&mut rng);
        let line = encode_line(&TraceRecord {
            t_us: 0,
            event: TraceEvent::TrialEnd {
                trial: 0,
                score,
                attempts: 1,
                status: "ok".into(),
            },
        });
        let want = format!("\"score\":\"{:016x}\"", canonical_f64_bits(score));
        assert!(line.contains(&want), "case {case}: {line} lacks {want}");
    }
}

#[test]
fn mutated_canonical_lines_never_panic_the_decoder() {
    for case in 0..512u64 {
        let mut rng = case_rng(24, case);
        let line = encode_line(&random_record(&mut rng));
        // Mutate at char granularity so the input stays valid UTF-8 —
        // decode input is &str, so UTF-8 validity is the type's contract.
        let mut chars: Vec<char> = line.chars().collect();
        for _ in 0..rng.gen_range(1usize..4) {
            if chars.is_empty() {
                break;
            }
            let at = rng.gen_range(0..chars.len());
            match rng.gen_range(0..3usize) {
                0 => {
                    chars.remove(at);
                }
                1 => {
                    chars[at] =
                        ['"', '\\', '{', '}', ',', ':', 'x', '\u{0}', '𝕏'][rng.gen_range(0..9usize)]
                }
                _ => chars.insert(at, ['"', '\\', ',', '0', '}'][rng.gen_range(0..5usize)]),
            }
        }
        let mutated: String = chars.into_iter().collect();
        // Either outcome is fine; panicking is not.
        let _ = parse_line(&mutated);
    }
}

#[test]
fn garbage_input_never_panics_the_decoder() {
    const ALPHABET: [char; 16] = [
        '{', '}', '"', '\\', ',', ':', 'e', 'v', 't', '0', '9', ' ', '\u{7f}', 'Ω', '𝄞', '\u{0}',
    ];
    for case in 0..512u64 {
        let mut rng = case_rng(25, case);
        let garbage: String = (0..rng.gen_range(0usize..120))
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
            .collect();
        let _ = parse_line(&garbage);
        let _ = decode(&garbage);
    }
}
