//! Canonical float bits and their fixed-width hex wire form.
//!
//! One law, shared by the trial cache's config fingerprints and the trace
//! codec: **bit-equality of encodings coincides with `PartialEq` of
//! values** (modulo NaN, where every payload collapses to one key — the
//! useful choice: a NaN is the *same broken value* however it is
//! encoded). Concretely, all NaNs become the standard quiet NaN and
//! `-0.0` becomes `+0.0`; every other float keeps its exact bits. The
//! wire form is the canonical bit pattern as 16 lowercase hex digits —
//! fixed width, locale-free, and lossless, so encode→decode→encode is
//! byte-stable for any input float.

/// The single bit pattern all NaNs collapse to (the standard quiet NaN).
pub const CANONICAL_NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// Canonical bit pattern of a float for keying and tracing: all NaNs
/// become one quiet NaN, `-0.0` becomes `+0.0`, everything else keeps its
/// exact bits. Idempotent: re-canonicalizing a canonical pattern is a
/// no-op, which is what makes round-tripped traces byte-stable.
pub fn canonical_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        CANONICAL_NAN_BITS
    } else if v == 0.0 {
        0 // collapses -0.0 onto +0.0, matching PartialEq
    } else {
        v.to_bits()
    }
}

/// Wire form: the canonical bits as exactly 16 lowercase hex digits.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", canonical_f64_bits(v))
}

/// Parse the wire form back to a float. Accepts exactly 16 hex digits
/// (any case); anything else is `None`. The result re-encodes to the
/// canonical form of the input.
pub fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_payloads_collapse_and_negative_zero_normalizes() {
        assert_eq!(canonical_f64_bits(f64::NAN), CANONICAL_NAN_BITS);
        assert_eq!(
            canonical_f64_bits(f64::from_bits(0x7ff8_0000_0000_0001)),
            CANONICAL_NAN_BITS
        );
        assert_eq!(canonical_f64_bits(-f64::NAN), CANONICAL_NAN_BITS);
        assert_eq!(canonical_f64_bits(-0.0), 0);
        assert_eq!(canonical_f64_bits(0.0), 0);
        assert_eq!(canonical_f64_bits(1.5), 1.5f64.to_bits());
        assert_eq!(
            canonical_f64_bits(f64::NEG_INFINITY),
            f64::NEG_INFINITY.to_bits()
        );
    }

    #[test]
    fn hex_round_trips_canonically() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.5e-300,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let hex = f64_to_hex(v);
            assert_eq!(hex.len(), 16);
            let back = f64_from_hex(&hex).expect("wire form parses");
            assert_eq!(f64_to_hex(back), hex, "re-encode of {v} not byte-stable");
        }
    }

    #[test]
    fn hex_rejects_malformed_input() {
        assert!(f64_from_hex("").is_none());
        assert!(f64_from_hex("3ff").is_none());
        assert!(f64_from_hex("3ff00000000000000").is_none()); // 17 digits
        assert!(f64_from_hex("3ff000000000000g").is_none());
        assert!(f64_from_hex("+ff0000000000000").is_none());
    }
}
