//! The tracer: event intake, timestamping, summary counters, fan-out.
//!
//! A [`Tracer`] is either *disabled* — every call is a no-op costing one
//! branch, the default everywhere — or *enabled*, holding a clock, a
//! sink list, and a running [`TraceSummary`] behind one mutex. The mutex
//! is never touched on evaluation hot paths: workers build their events
//! as plain `Vec<TraceEvent>` values and the batch reducer emits them at
//! the batch boundary in trial-index order, so lock order equals trial
//! order and traces are byte-identical at any thread count.
//!
//! Timestamps come from the injected [`Clock`]; the default is a
//! [`ManualClock`] pinned at zero so traces are reproducible byte streams
//! unless a caller explicitly opts into wall-clock time.

use crate::clock::{Clock, ManualClock};
use crate::codec::{encode_line, TraceRecord};
use crate::env::EnvError;
use crate::event::TraceEvent;
use crate::sink::{memory_pair, JsonlSink, MemoryHandle, ProgressSink, Sink, TraceError};
use parking_lot::Mutex;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Running event counters, kept by every enabled tracer and rendered as
/// the end-of-run summary table.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    pub runs: u64,
    pub stages: u64,
    pub batches: u64,
    pub trials: u64,
    pub ok: u64,
    pub failed: u64,
    pub skipped: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Warm-start hits — also counted into `cache_hits`, since a warm hit
    /// is a cache hit whose entry came from a persisted artifact.
    pub warm_hits: u64,
    pub artifact_loads: u64,
    pub faults: u64,
    pub retries: u64,
    pub quarantined: u64,
    pub budget_trips: u64,
    pub checkpoints: u64,
    pub recoveries: u64,
}

impl TraceSummary {
    /// Count one event. Span counters tick on the *end* event so aborted
    /// spans are never over-counted.
    pub fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::RunEnd { .. } => self.runs += 1,
            TraceEvent::StageEnd { .. } => self.stages += 1,
            TraceEvent::BatchEnd { .. } => self.batches += 1,
            TraceEvent::TrialEnd { status, .. } => {
                self.trials += 1;
                match status.as_str() {
                    "ok" => self.ok += 1,
                    "skipped" => self.skipped += 1,
                    _ => self.failed += 1,
                }
            }
            TraceEvent::CacheHit { .. } => self.cache_hits += 1,
            TraceEvent::CacheMiss { .. } => self.cache_misses += 1,
            TraceEvent::WarmHit { .. } => {
                self.cache_hits += 1;
                self.warm_hits += 1;
            }
            TraceEvent::ArtifactLoad { .. } => self.artifact_loads += 1,
            TraceEvent::Fault { .. } => self.faults += 1,
            TraceEvent::Retry { .. } => self.retries += 1,
            TraceEvent::Quarantine { .. } => self.quarantined += 1,
            TraceEvent::BudgetExhausted { .. } => self.budget_trips += 1,
            TraceEvent::Checkpoint { .. } => self.checkpoints += 1,
            TraceEvent::Recovery { .. } => self.recoveries += 1,
            _ => {}
        }
    }

    /// Two-line human rendering for end-of-run reporting.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "trace: {} trial(s) ({} ok, {} failed, {} skipped) | cache {} hit(s) ({} warm) / {} miss(es)",
            self.trials,
            self.ok,
            self.failed,
            self.skipped,
            self.cache_hits,
            self.warm_hits,
            self.cache_misses
        );
        let _ = write!(
            s,
            "\ntrace: {} fault(s), {} retry(ies), {} quarantined | {} run(s), {} stage(s), {} batch(es), {} budget stop(s)",
            self.faults,
            self.retries,
            self.quarantined,
            self.runs,
            self.stages,
            self.batches,
            self.budget_trips
        );
        s
    }
}

struct State {
    clock: Arc<dyn Clock>,
    sinks: Vec<Box<dyn Sink>>,
    summary: TraceSummary,
    /// First sink I/O failure observed, latched for end-of-run surfacing
    /// (see [`Tracer::io_error`]).
    error: Option<TraceError>,
}

/// Structured-event intake. Cheap to share (`Arc<Tracer>`), cheap when
/// disabled, deterministic when enabled. See the module docs.
pub struct Tracer {
    state: Option<Mutex<State>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The no-op tracer: every `emit` is one branch and no work.
    pub fn disabled() -> Tracer {
        Tracer { state: None }
    }

    fn enabled_with(sinks: Vec<Box<dyn Sink>>) -> Tracer {
        Tracer {
            state: Some(Mutex::new(State {
                clock: Arc::new(ManualClock::new()),
                sinks,
                summary: TraceSummary::default(),
                error: None,
            })),
        }
    }

    /// Honor `AUTOMODEL_TRACE=<path>`: enabled with an appending JSONL
    /// sink when the variable is set, disabled when unset or empty. A
    /// path that cannot be opened for appending is a hard [`EnvError`]
    /// naming the variable and the path — tracing must never be silently
    /// dropped when the user asked for it.
    pub fn from_env() -> Result<Tracer, EnvError> {
        match std::env::var(crate::TRACE_ENV) {
            Ok(path) if !path.is_empty() => match JsonlSink::open(Path::new(&path)) {
                Some(sink) => Ok(Tracer::enabled_with(vec![Box::new(sink)])),
                None => Err(EnvError::new(
                    crate::TRACE_ENV,
                    path,
                    "a JSONL file path openable for appending",
                )),
            },
            _ => Ok(Tracer::disabled()),
        }
    }

    /// An enabled tracer writing to an in-memory buffer — the conformance
    /// tests' oracle input.
    pub fn in_memory() -> (Tracer, MemoryHandle) {
        let (sink, handle) = memory_pair();
        (Tracer::enabled_with(vec![Box::new(sink)]), handle)
    }

    /// Add an appending JSONL sink at an explicit path, enabling the
    /// tracer if it was disabled — the server keys one trace file per
    /// session this way. Returns `None` when the path cannot be opened
    /// for appending (callers surface that, same as [`Tracer::from_env`]).
    pub fn with_jsonl(self, path: &Path) -> Option<Tracer> {
        let sink: Box<dyn Sink> = Box::new(JsonlSink::open(path)?);
        Some(match self.state {
            Some(state) => {
                {
                    state.lock().sinks.push(sink);
                }
                Tracer { state: Some(state) }
            }
            None => Tracer::enabled_with(vec![sink]),
        })
    }

    /// Replace the timestamp source (no-op on a disabled tracer). The
    /// default [`ManualClock`] pins every timestamp to zero; inject a
    /// shared clock to correlate trace time with budget time.
    pub fn with_clock(self, clock: Arc<dyn Clock>) -> Tracer {
        if let Some(state) = &self.state {
            state.lock().clock = clock;
        }
        self
    }

    /// Add a human stderr progress sink, enabling the tracer if it was
    /// disabled — bench binaries call this so stage narration and the
    /// summary exist even without `AUTOMODEL_TRACE`.
    pub fn with_progress(self, prefix: &str) -> Tracer {
        let sink: Box<dyn Sink> = Box::new(ProgressSink::new(prefix));
        match self.state {
            Some(state) => {
                {
                    state.lock().sinks.push(sink);
                }
                Tracer { state: Some(state) }
            }
            None => Tracer::enabled_with(vec![sink]),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Record one event: stamp, count, encode once, fan out.
    pub fn emit(&self, event: TraceEvent) {
        self.emit_all(std::iter::once(event));
    }

    /// Record a pre-built event sequence under one lock acquisition — the
    /// batch-boundary merge path. Sinks are flushed once at the end of
    /// the batch, so an abrupt process exit loses at most the batch in
    /// flight; the first sink failure is latched (see
    /// [`Tracer::io_error`]), never panicked on.
    pub fn emit_all<I>(&self, events: I)
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        let Some(state) = &self.state else { return };
        let mut s = state.lock();
        let t_us = u64::try_from(s.clock.now().as_micros()).unwrap_or(u64::MAX);
        for event in events {
            s.summary.observe(&event);
            let record = TraceRecord { t_us, event };
            let line = encode_line(&record);
            let State { sinks, error, .. } = &mut *s;
            for sink in sinks {
                if let Err(e) = sink.record(&record, &line) {
                    error.get_or_insert(e);
                }
            }
        }
        let State { sinks, error, .. } = &mut *s;
        for sink in sinks {
            if let Err(e) = sink.flush() {
                error.get_or_insert(e);
            }
        }
    }

    /// Snapshot of the counters; `None` when disabled.
    pub fn summary(&self) -> Option<TraceSummary> {
        self.state.as_ref().map(|s| s.lock().summary.clone())
    }

    /// The first sink I/O failure observed, if any. Entry points check
    /// this at end of run so a trace the user asked for can never be
    /// silently incomplete.
    pub fn io_error(&self) -> Option<TraceError> {
        self.state.as_ref().and_then(|s| s.lock().error.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(TraceEvent::CacheHit { trial: 0 });
        assert_eq!(t.summary(), None);
    }

    #[test]
    fn memory_tracer_records_decode_and_count() {
        let (t, handle) = Tracer::in_memory();
        assert!(t.is_enabled());
        t.emit(TraceEvent::stage_start("probe"));
        t.emit_all([
            TraceEvent::TrialStart {
                trial: 0,
                config: "{}".into(),
            },
            TraceEvent::CacheMiss { trial: 0 },
            TraceEvent::TrialEnd {
                trial: 0,
                score: 1.0,
                attempts: 1,
                status: "ok".into(),
            },
            TraceEvent::stage_end("probe", "done"),
        ]);
        let records = decode(&handle.contents()).expect("trace decodes");
        assert_eq!(records.len(), 5);
        // Default clock pins every timestamp to zero.
        assert!(records.iter().all(|r| r.t_us == 0));
        let summary = t.summary().expect("enabled tracer has a summary");
        assert_eq!(summary.trials, 1);
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.cache_misses, 1);
        assert_eq!(summary.stages, 1);
        let rendered = summary.render();
        assert!(rendered.contains("1 trial(s)"), "render: {rendered}");
    }

    #[test]
    fn injected_manual_clock_stamps_events() {
        let clock = Arc::new(ManualClock::new());
        let (t, handle) = Tracer::in_memory();
        let t = t.with_clock(clock.clone());
        t.emit(TraceEvent::stage_start("a"));
        clock.advance(Duration::from_micros(250));
        t.emit(TraceEvent::stage_end("a", ""));
        let records = decode(&handle.contents()).expect("trace decodes");
        assert_eq!(records[0].t_us, 0);
        assert_eq!(records[1].t_us, 250);
    }

    #[test]
    fn first_sink_error_is_latched_not_panicked() {
        struct FailingSink(u32);
        impl Sink for FailingSink {
            fn record(&mut self, _r: &TraceRecord, _l: &str) -> Result<(), TraceError> {
                self.0 += 1;
                Err(TraceError::new("test", format!("boom {}", self.0)))
            }
        }
        let t = Tracer {
            state: Some(Mutex::new(State {
                clock: Arc::new(ManualClock::new()),
                sinks: vec![Box::new(FailingSink(0))],
                summary: TraceSummary::default(),
                error: None,
            })),
        };
        assert_eq!(t.io_error(), None);
        t.emit(TraceEvent::CacheHit { trial: 0 });
        t.emit(TraceEvent::CacheHit { trial: 1 });
        // The first failure wins; later ones don't overwrite it.
        assert_eq!(t.io_error(), Some(TraceError::new("test", "boom 1")));
    }

    #[test]
    fn summary_counts_checkpoints_and_recoveries() {
        let mut s = TraceSummary::default();
        s.observe(&TraceEvent::Checkpoint {
            seq: 0,
            trials: 10,
            bytes: 100,
        });
        s.observe(&TraceEvent::Checkpoint {
            seq: 1,
            trials: 20,
            bytes: 200,
        });
        s.observe(&TraceEvent::Recovery {
            seq: 1,
            trials: 20,
            restored: 20,
        });
        assert_eq!((s.checkpoints, s.recoveries), (2, 1));
    }

    #[test]
    fn summary_counts_trial_statuses() {
        let mut s = TraceSummary::default();
        for status in ["ok", "ok", "failed", "skipped"] {
            s.observe(&TraceEvent::TrialEnd {
                trial: 0,
                score: 0.0,
                attempts: 1,
                status: status.into(),
            });
        }
        assert_eq!((s.trials, s.ok, s.failed, s.skipped), (4, 2, 1, 1));
    }
}
