//! Where encoded trace lines go.
//!
//! A [`Sink`] receives every record twice over: as the typed
//! [`TraceRecord`] and as its canonical encoded line, so byte-oriented
//! sinks ([`JsonlSink`], the in-memory test sink) write without
//! re-encoding while human-oriented sinks ([`ProgressSink`]) format their
//! own text. Sink I/O failures are *typed*, never panicked on: `record`
//! and `flush` return a [`TraceError`], the tracer latches the first one
//! (see `Tracer::io_error`), and the run keeps going — tracing must not
//! be able to take down a run it is only observing, but a caller who
//! asked for a trace file can check at exit that every line landed.
//! [`JsonlSink`] buffers writes and is flushed by the tracer at every
//! record batch, so an abrupt process exit loses at most the batch in
//! flight, never silently-buffered history.

use crate::codec::TraceRecord;
use crate::event::TraceEvent;
use parking_lot::Mutex;
use std::fmt;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Arc;

/// A trace-sink I/O failure: which sink failed and the underlying error
/// text. Carried out of `record`/`flush` instead of being swallowed;
/// the tracer keeps the first one for end-of-run surfacing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Short sink name (`"jsonl"`, …).
    pub sink: &'static str,
    pub message: String,
}

impl TraceError {
    pub fn new(sink: &'static str, message: impl Into<String>) -> TraceError {
        TraceError {
            sink,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace sink {}: {}", self.sink, self.message)
    }
}

impl std::error::Error for TraceError {}

/// One destination for trace records.
pub trait Sink: Send {
    /// Deliver one record; `line` is its canonical encoding (no newline).
    fn record(&mut self, record: &TraceRecord, line: &str) -> Result<(), TraceError>;

    /// Push buffered records to durable storage. Called by the tracer at
    /// every record batch; sinks without buffering keep the default no-op.
    fn flush(&mut self) -> Result<(), TraceError> {
        Ok(())
    }
}

/// Appends canonical JSONL to a file. Opened in append mode so the
/// sequential stages of a pipeline (each with its own tracer) accumulate
/// into one chronological file. Writes are buffered; the tracer flushes
/// after every record batch so an abrupt exit cannot lose earlier
/// batches' lines.
pub struct JsonlSink {
    file: BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// `None` if the file cannot be opened — the caller degrades to a
    /// disabled tracer rather than failing the run.
    pub fn open(path: &Path) -> Option<JsonlSink> {
        // lint:allow(no-adhoc-persistence): append-only JSONL trace stream, not a loadable artifact
        // lint:allow(durable-write): append-only JSONL trace stream, not a loadable artifact
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()
            .map(|file| JsonlSink {
                file: BufWriter::new(file),
            })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, _record: &TraceRecord, line: &str) -> Result<(), TraceError> {
        writeln!(self.file, "{line}").map_err(|e| TraceError::new("jsonl", e.to_string()))
    }

    fn flush(&mut self) -> Result<(), TraceError> {
        self.file
            .flush()
            .map_err(|e| TraceError::new("jsonl", e.to_string()))
    }
}

/// In-memory JSONL buffer for tests; read it back through the paired
/// [`MemoryHandle`].
pub(crate) struct MemorySink {
    buf: Arc<Mutex<String>>,
}

/// Reader side of an in-memory trace (see [`crate::Tracer::in_memory`]).
#[derive(Clone)]
pub struct MemoryHandle {
    buf: Arc<Mutex<String>>,
}

impl MemoryHandle {
    /// The JSONL captured so far.
    pub fn contents(&self) -> String {
        self.buf.lock().clone()
    }
}

pub(crate) fn memory_pair() -> (MemorySink, MemoryHandle) {
    let buf = Arc::new(Mutex::new(String::new()));
    (MemorySink { buf: buf.clone() }, MemoryHandle { buf })
}

impl Sink for MemorySink {
    fn record(&mut self, _record: &TraceRecord, line: &str) -> Result<(), TraceError> {
        let mut buf = self.buf.lock();
        buf.push_str(line);
        buf.push('\n');
        Ok(())
    }
}

/// Human progress lines on stderr: stage and run boundaries only, so a
/// bench binary narrates itself without any ad-hoc `eprintln!` at call
/// sites (lint L9 allows prints only here and in bin mains). Stderr is
/// best-effort narration, not an artifact — a failed write is not a
/// [`TraceError`].
pub struct ProgressSink {
    prefix: String,
}

impl ProgressSink {
    pub fn new(prefix: impl Into<String>) -> ProgressSink {
        ProgressSink {
            prefix: prefix.into(),
        }
    }
}

impl Sink for ProgressSink {
    fn record(&mut self, record: &TraceRecord, _line: &str) -> Result<(), TraceError> {
        let msg = match &record.event {
            TraceEvent::StageStart { stage } => format!("[{}] {stage}...", self.prefix),
            TraceEvent::StageEnd { stage, detail } => {
                format!("[{}] {stage}: {detail}", self.prefix)
            }
            TraceEvent::RunStart { optimizer, seed } => {
                format!("[{}] run {optimizer} (seed {seed})", self.prefix)
            }
            TraceEvent::RunEnd {
                optimizer,
                trials,
                best,
            } => {
                let best = best.map_or("-".to_string(), |b| format!("{b:.4}"));
                format!(
                    "[{}] run {optimizer} done: {trials} trial(s), best {best}",
                    self.prefix
                )
            }
            _ => return Ok(()),
        };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{msg}");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates_lines_in_order() {
        let (mut sink, handle) = memory_pair();
        let r = TraceRecord {
            t_us: 0,
            event: TraceEvent::CacheHit { trial: 0 },
        };
        sink.record(&r, "a").unwrap();
        sink.record(&r, "b").unwrap();
        assert_eq!(handle.contents(), "a\nb\n");
    }

    #[test]
    fn jsonl_sink_appends_across_reopens() {
        let path =
            std::env::temp_dir().join(format!("automodel_trace_sink_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let r = TraceRecord {
            t_us: 0,
            event: TraceEvent::CacheHit { trial: 0 },
        };
        {
            let mut s = JsonlSink::open(&path).expect("temp file opens");
            s.record(&r, "first").unwrap();
            s.flush().unwrap();
        }
        {
            let mut s = JsonlSink::open(&path).expect("temp file reopens");
            s.record(&r, "second").unwrap();
            s.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).expect("file reads back");
        let _ = std::fs::remove_file(&path);
        assert_eq!(text, "first\nsecond\n");
    }

    #[test]
    fn jsonl_sink_flush_lands_lines_before_drop() {
        // The crash-safety contract of the tracer's per-batch flush: once
        // flush returns, the line is in the file even if the process dies
        // before the sink is dropped.
        let path =
            std::env::temp_dir().join(format!("automodel_trace_flush_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let r = TraceRecord {
            t_us: 0,
            event: TraceEvent::CacheHit { trial: 0 },
        };
        let mut s = JsonlSink::open(&path).expect("temp file opens");
        s.record(&r, "durable").unwrap();
        s.flush().unwrap();
        let text = std::fs::read_to_string(&path).expect("file reads back");
        assert_eq!(text, "durable\n", "flushed line must be on disk");
        drop(s);
        let _ = std::fs::remove_file(&path);
    }
}
