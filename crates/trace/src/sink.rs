//! Where encoded trace lines go.
//!
//! A [`Sink`] receives every record twice over: as the typed
//! [`TraceRecord`] and as its canonical encoded line, so byte-oriented
//! sinks ([`JsonlSink`], the in-memory test sink) write without
//! re-encoding while human-oriented sinks ([`ProgressSink`]) format their
//! own text. Sinks are infallible by construction — I/O errors are
//! swallowed, never panicked on: tracing must not be able to take down a
//! run it is only observing.

use crate::codec::TraceRecord;
use crate::event::TraceEvent;
use parking_lot::Mutex;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// One destination for trace records.
pub trait Sink: Send {
    /// Deliver one record; `line` is its canonical encoding (no newline).
    fn record(&mut self, record: &TraceRecord, line: &str);
}

/// Appends canonical JSONL to a file. Opened in append mode so the
/// sequential stages of a pipeline (each with its own tracer) accumulate
/// into one chronological file.
pub struct JsonlSink {
    file: std::fs::File,
}

impl JsonlSink {
    /// `None` if the file cannot be opened — the caller degrades to a
    /// disabled tracer rather than failing the run.
    pub fn open(path: &Path) -> Option<JsonlSink> {
        // lint:allow(no-adhoc-persistence): append-only JSONL trace stream, not a loadable artifact
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()
            .map(|file| JsonlSink { file })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, _record: &TraceRecord, line: &str) {
        let _ = writeln!(self.file, "{line}");
    }
}

/// In-memory JSONL buffer for tests; read it back through the paired
/// [`MemoryHandle`].
pub(crate) struct MemorySink {
    buf: Arc<Mutex<String>>,
}

/// Reader side of an in-memory trace (see [`crate::Tracer::in_memory`]).
#[derive(Clone)]
pub struct MemoryHandle {
    buf: Arc<Mutex<String>>,
}

impl MemoryHandle {
    /// The JSONL captured so far.
    pub fn contents(&self) -> String {
        self.buf.lock().clone()
    }
}

pub(crate) fn memory_pair() -> (MemorySink, MemoryHandle) {
    let buf = Arc::new(Mutex::new(String::new()));
    (MemorySink { buf: buf.clone() }, MemoryHandle { buf })
}

impl Sink for MemorySink {
    fn record(&mut self, _record: &TraceRecord, line: &str) {
        let mut buf = self.buf.lock();
        buf.push_str(line);
        buf.push('\n');
    }
}

/// Human progress lines on stderr: stage and run boundaries only, so a
/// bench binary narrates itself without any ad-hoc `eprintln!` at call
/// sites (lint L9 allows prints only here and in bin mains).
pub struct ProgressSink {
    prefix: String,
}

impl ProgressSink {
    pub fn new(prefix: impl Into<String>) -> ProgressSink {
        ProgressSink {
            prefix: prefix.into(),
        }
    }
}

impl Sink for ProgressSink {
    fn record(&mut self, record: &TraceRecord, _line: &str) {
        let msg = match &record.event {
            TraceEvent::StageStart { stage } => format!("[{}] {stage}...", self.prefix),
            TraceEvent::StageEnd { stage, detail } => {
                format!("[{}] {stage}: {detail}", self.prefix)
            }
            TraceEvent::RunStart { optimizer, seed } => {
                format!("[{}] run {optimizer} (seed {seed})", self.prefix)
            }
            TraceEvent::RunEnd {
                optimizer,
                trials,
                best,
            } => {
                let best = best.map_or("-".to_string(), |b| format!("{b:.4}"));
                format!(
                    "[{}] run {optimizer} done: {trials} trial(s), best {best}",
                    self.prefix
                )
            }
            _ => return,
        };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates_lines_in_order() {
        let (mut sink, handle) = memory_pair();
        let r = TraceRecord {
            t_us: 0,
            event: TraceEvent::CacheHit { trial: 0 },
        };
        sink.record(&r, "a");
        sink.record(&r, "b");
        assert_eq!(handle.contents(), "a\nb\n");
    }

    #[test]
    fn jsonl_sink_appends_across_reopens() {
        let path =
            std::env::temp_dir().join(format!("automodel_trace_sink_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let r = TraceRecord {
            t_us: 0,
            event: TraceEvent::CacheHit { trial: 0 },
        };
        {
            let mut s = JsonlSink::open(&path).expect("temp file opens");
            s.record(&r, "first");
        }
        {
            let mut s = JsonlSink::open(&path).expect("temp file reopens");
            s.record(&r, "second");
        }
        let text = std::fs::read_to_string(&path).expect("file reads back");
        let _ = std::fs::remove_file(&path);
        assert_eq!(text, "first\nsecond\n");
    }
}
