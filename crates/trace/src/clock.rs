//! Injectable monotonic time source.
//!
//! Nothing in the workspace reads `Instant::now()` directly: budgets and
//! trace timestamps ask a [`Clock`]. Production code injects
//! [`MonotonicClock`]; tests (and the default tracer) use [`ManualClock`]
//! and advance it by hand, which makes wall-clock budget tests instant and
//! deterministic instead of `thread::sleep`-flaky — and makes traces
//! byte-reproducible.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source. `now()` is elapsed time since the clock's own
/// epoch (construction for [`MonotonicClock`], zero for [`ManualClock`]).
pub trait Clock: Send + Sync {
    fn now(&self) -> Duration;
}

/// Real wall clock backed by [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Hand-advanced clock for deterministic tests. Wrap it in an `Arc` and
/// keep a handle to [`advance`](ManualClock::advance) it mid-test.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        *self.now.lock() += by;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances_on_its_own() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_secs(3));
        c.advance(Duration::from_millis(500));
        assert_eq!(c.now(), Duration::from_millis(3500));
    }
}
