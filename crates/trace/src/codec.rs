//! Canonical JSONL wire format for trace records.
//!
//! One record per line, one JSON object per record, machine-written in a
//! single canonical form: fixed key order (`"ev"`, `"t"`, then the
//! event's own fields in declaration order), no whitespace, strings with
//! minimal escaping, integers in decimal, and floats as 16-hex-digit
//! canonical bit patterns ([`crate::canon`]). Canonicality is what lets
//! golden traces and cross-thread-count traces be compared with a byte
//! diff.
//!
//! The decoder is total: any input either parses to the typed record or
//! returns a [`CodecError`] — it never panics, whatever the bytes. The
//! round-trip law (checked exhaustively by the seeded property tests in
//! `tests/proptest_codec.rs`): for every event `e`,
//! `encode(decode(encode(e))) == encode(e)` byte-for-byte.

use crate::canon::{f64_from_hex, f64_to_hex};
use crate::event::TraceEvent;
use std::fmt;
use std::fmt::Write as _;

/// One trace line: an event stamped with the tracer clock's microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub t_us: u64,
    pub event: TraceEvent,
}

/// A decoding failure: the 1-based line number (0 when unknown, e.g. from
/// [`parse_line`]) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace codec: {}", self.message)
        } else {
            write!(f, "trace codec: line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for CodecError {}

// ---- encoding ----

/// Append `s` as a JSON string with minimal canonical escaping: `"`,
/// `\`, the short control escapes, `\u00xx` for other controls, and raw
/// UTF-8 for everything else.
fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\u{8}' => buf.push_str("\\b"),
            '\u{c}' => buf.push_str("\\f"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn field_s(buf: &mut String, key: &str, value: &str) {
    buf.push(',');
    push_json_string(buf, key);
    buf.push(':');
    push_json_string(buf, value);
}

fn field_n(buf: &mut String, key: &str, value: u64) {
    buf.push(',');
    push_json_string(buf, key);
    let _ = write!(buf, ":{value}");
}

fn field_f(buf: &mut String, key: &str, value: f64) {
    field_s(buf, key, &f64_to_hex(value));
}

/// Encode one record as its canonical single-line JSON form (no trailing
/// newline).
pub fn encode_line(record: &TraceRecord) -> String {
    let mut buf = String::with_capacity(64);
    buf.push_str("{\"ev\":");
    push_json_string(&mut buf, record.event.kind());
    let _ = write!(buf, ",\"t\":{}", record.t_us);
    match &record.event {
        TraceEvent::RunStart { optimizer, seed } => {
            field_s(&mut buf, "optimizer", optimizer);
            field_n(&mut buf, "seed", *seed);
        }
        TraceEvent::RunEnd {
            optimizer,
            trials,
            best,
        } => {
            field_s(&mut buf, "optimizer", optimizer);
            field_n(&mut buf, "trials", *trials);
            match best {
                Some(score) => field_f(&mut buf, "best", *score),
                None => field_s(&mut buf, "best", "-"),
            }
        }
        TraceEvent::StageStart { stage } => field_s(&mut buf, "stage", stage),
        TraceEvent::StageEnd { stage, detail } => {
            field_s(&mut buf, "stage", stage);
            field_s(&mut buf, "detail", detail);
        }
        TraceEvent::BatchStart { first_trial, size } => {
            field_n(&mut buf, "first_trial", *first_trial);
            field_n(&mut buf, "size", *size);
        }
        TraceEvent::BatchEnd {
            first_trial,
            evaluated,
        } => {
            field_n(&mut buf, "first_trial", *first_trial);
            field_n(&mut buf, "evaluated", *evaluated);
        }
        TraceEvent::TrialStart { trial, config } => {
            field_n(&mut buf, "trial", *trial);
            field_s(&mut buf, "config", config);
        }
        TraceEvent::TrialEnd {
            trial,
            score,
            attempts,
            status,
        } => {
            field_n(&mut buf, "trial", *trial);
            field_f(&mut buf, "score", *score);
            field_n(&mut buf, "attempts", *attempts);
            field_s(&mut buf, "status", status);
        }
        TraceEvent::CacheHit { trial }
        | TraceEvent::CacheMiss { trial }
        | TraceEvent::WarmHit { trial } => {
            field_n(&mut buf, "trial", *trial);
        }
        TraceEvent::Fault {
            trial,
            attempt,
            kind,
            message,
        } => {
            field_n(&mut buf, "trial", *trial);
            field_n(&mut buf, "attempt", *attempt);
            field_s(&mut buf, "kind", kind);
            field_s(&mut buf, "message", message);
        }
        TraceEvent::Retry { trial, attempt } => {
            field_n(&mut buf, "trial", *trial);
            field_n(&mut buf, "attempt", *attempt);
        }
        TraceEvent::Quarantine { trial, config } => {
            field_n(&mut buf, "trial", *trial);
            field_s(&mut buf, "config", config);
        }
        TraceEvent::QuarantineSkip { trial } => field_n(&mut buf, "trial", *trial),
        TraceEvent::BudgetExhausted { evals, reason } => {
            field_n(&mut buf, "evals", *evals);
            field_s(&mut buf, "reason", reason);
        }
        TraceEvent::ArtifactLoad {
            path,
            sections,
            bytes,
        } => {
            field_s(&mut buf, "path", path);
            field_n(&mut buf, "sections", *sections);
            field_n(&mut buf, "bytes", *bytes);
        }
        TraceEvent::Checkpoint { seq, trials, bytes } => {
            field_n(&mut buf, "seq", *seq);
            field_n(&mut buf, "trials", *trials);
            field_n(&mut buf, "bytes", *bytes);
        }
        TraceEvent::Recovery {
            seq,
            trials,
            restored,
        } => {
            field_n(&mut buf, "seq", *seq);
            field_n(&mut buf, "trials", *trials);
            field_n(&mut buf, "restored", *restored);
        }
        TraceEvent::RungStart {
            bracket,
            rung,
            candidates,
            num,
            den,
        } => {
            field_n(&mut buf, "bracket", *bracket);
            field_n(&mut buf, "rung", *rung);
            field_n(&mut buf, "candidates", *candidates);
            field_n(&mut buf, "num", *num);
            field_n(&mut buf, "den", *den);
        }
        TraceEvent::Promote { trial, rung } => {
            field_n(&mut buf, "trial", *trial);
            field_n(&mut buf, "rung", *rung);
        }
        TraceEvent::Eliminate { trial, rung } => {
            field_n(&mut buf, "trial", *trial);
            field_n(&mut buf, "rung", *rung);
        }
    }
    buf.push('}');
    buf
}

/// Encode a record sequence as canonical JSONL (one line per record, each
/// newline-terminated).
pub fn encode(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&encode_line(r));
        out.push('\n');
    }
    out
}

// ---- decoding ----

/// A parsed JSON scalar: the wire format carries only strings and
/// non-negative integers.
enum Val {
    S(String),
    N(u64),
}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.s.get(self.pos..)?.chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected '{want}', found '{c}'")),
            None => Err(format!("expected '{want}', found end of line")),
        }
    }

    /// One `\uXXXX` payload (the four hex digits after `\u`).
    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            let d = c.to_digit(16).ok_or("non-hex digit in \\u escape")?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    /// A JSON string (opening quote not yet consumed). Total: every
    /// malformed escape is an error, every unpaired surrogate decodes to
    /// U+FFFD — nothing panics.
    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self.bump().ok_or("unterminated string")?;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = self.bump().ok_or("truncated escape")?;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..=0xdbff).contains(&hi) {
                                // High surrogate: pair with a following
                                // \uDC00..\uDFFF, else replace.
                                if self.peek() == Some('\\') {
                                    let save = self.pos;
                                    self.pos += 1;
                                    if self.bump() == Some('u') {
                                        let lo = self.hex4()?;
                                        if (0xdc00..=0xdfff).contains(&lo) {
                                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                        } else {
                                            // valid escape, not a low
                                            // surrogate: replace the high
                                            // one, keep the decoded char
                                            out.push('\u{fffd}');
                                            if let Some(c) = char::from_u32(lo) {
                                                out.push(c);
                                            } else {
                                                out.push('\u{fffd}');
                                            }
                                            continue;
                                        }
                                    } else {
                                        self.pos = save;
                                        0xfffd
                                    }
                                } else {
                                    0xfffd
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{other}'")),
                    }
                }
                c if (c as u32) < 0x20 => return Err("raw control character in string".into()),
                c => out.push(c),
            }
        }
    }

    /// A non-negative decimal integer fitting `u64`.
    fn parse_u64(&mut self) -> Result<u64, String> {
        let mut n: u64 = 0;
        let mut digits = 0usize;
        while let Some(c) = self.peek() {
            let Some(d) = c.to_digit(10) else { break };
            self.pos += 1; // ASCII digit, one byte
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(d)))
                .ok_or("integer overflows u64")?;
            digits += 1;
        }
        if digits == 0 {
            return Err("expected an integer".into());
        }
        Ok(n)
    }
}

/// The field multiset of one object, consumed key by key so leftovers can
/// be rejected.
struct Fields(Vec<(String, Val)>);

impl Fields {
    fn take(&mut self, key: &str) -> Result<Val, String> {
        let pos = self
            .0
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| format!("missing field \"{key}\""))?;
        Ok(self.0.remove(pos).1)
    }

    fn take_s(&mut self, key: &str) -> Result<String, String> {
        match self.take(key)? {
            Val::S(s) => Ok(s),
            Val::N(_) => Err(format!("field \"{key}\" must be a string")),
        }
    }

    fn take_n(&mut self, key: &str) -> Result<u64, String> {
        match self.take(key)? {
            Val::N(n) => Ok(n),
            Val::S(_) => Err(format!("field \"{key}\" must be an integer")),
        }
    }

    /// A float field in the 16-hex-digit canonical-bits wire form.
    fn take_f(&mut self, key: &str) -> Result<f64, String> {
        let s = self.take_s(key)?;
        f64_from_hex(&s).ok_or_else(|| format!("field \"{key}\" is not 16 hex digits"))
    }

    /// An optional float: `"-"` is `None`.
    fn take_opt_f(&mut self, key: &str) -> Result<Option<f64>, String> {
        let s = self.take_s(key)?;
        if s == "-" {
            return Ok(None);
        }
        match f64_from_hex(&s) {
            Some(v) => Ok(Some(v)),
            None => Err(format!(
                "field \"{key}\" is neither \"-\" nor 16 hex digits"
            )),
        }
    }

    fn finish(self) -> Result<(), String> {
        match self.0.first() {
            None => Ok(()),
            Some((k, _)) => Err(format!("unexpected field \"{k}\"")),
        }
    }
}

fn parse_record(line: &str) -> Result<TraceRecord, String> {
    let mut p = Parser { s: line, pos: 0 };
    p.expect('{')?;
    let mut fields: Vec<(String, Val)> = Vec::new();
    loop {
        let key = p.parse_string()?;
        p.expect(':')?;
        let val = match p.peek() {
            Some('"') => Val::S(p.parse_string()?),
            Some(c) if c.is_ascii_digit() => Val::N(p.parse_u64()?),
            _ => return Err("expected a string or integer value".into()),
        };
        if fields.iter().any(|(k, _)| k == &key) {
            return Err(format!("duplicate field \"{key}\""));
        }
        fields.push((key, val));
        match p.bump() {
            Some(',') => continue,
            Some('}') => break,
            Some(c) => return Err(format!("expected ',' or '}}', found '{c}'")),
            None => return Err("expected ',' or '}', found end of line".into()),
        }
    }
    if p.pos != line.len() {
        return Err("trailing bytes after the object".into());
    }

    let mut f = Fields(fields);
    let ev = f.take_s("ev")?;
    let t_us = f.take_n("t")?;
    let event = match ev.as_str() {
        "run_start" => TraceEvent::RunStart {
            optimizer: f.take_s("optimizer")?,
            seed: f.take_n("seed")?,
        },
        "run_end" => TraceEvent::RunEnd {
            optimizer: f.take_s("optimizer")?,
            trials: f.take_n("trials")?,
            best: f.take_opt_f("best")?,
        },
        "stage_start" => TraceEvent::StageStart {
            stage: f.take_s("stage")?,
        },
        "stage_end" => TraceEvent::StageEnd {
            stage: f.take_s("stage")?,
            detail: f.take_s("detail")?,
        },
        "batch_start" => TraceEvent::BatchStart {
            first_trial: f.take_n("first_trial")?,
            size: f.take_n("size")?,
        },
        "batch_end" => TraceEvent::BatchEnd {
            first_trial: f.take_n("first_trial")?,
            evaluated: f.take_n("evaluated")?,
        },
        "trial_start" => TraceEvent::TrialStart {
            trial: f.take_n("trial")?,
            config: f.take_s("config")?,
        },
        "trial_end" => TraceEvent::TrialEnd {
            trial: f.take_n("trial")?,
            score: f.take_f("score")?,
            attempts: f.take_n("attempts")?,
            status: f.take_s("status")?,
        },
        "cache_hit" => TraceEvent::CacheHit {
            trial: f.take_n("trial")?,
        },
        "cache_miss" => TraceEvent::CacheMiss {
            trial: f.take_n("trial")?,
        },
        "warm_hit" => TraceEvent::WarmHit {
            trial: f.take_n("trial")?,
        },
        "fault" => TraceEvent::Fault {
            trial: f.take_n("trial")?,
            attempt: f.take_n("attempt")?,
            kind: f.take_s("kind")?,
            message: f.take_s("message")?,
        },
        "retry" => TraceEvent::Retry {
            trial: f.take_n("trial")?,
            attempt: f.take_n("attempt")?,
        },
        "quarantine" => TraceEvent::Quarantine {
            trial: f.take_n("trial")?,
            config: f.take_s("config")?,
        },
        "quarantine_skip" => TraceEvent::QuarantineSkip {
            trial: f.take_n("trial")?,
        },
        "budget" => TraceEvent::BudgetExhausted {
            evals: f.take_n("evals")?,
            reason: f.take_s("reason")?,
        },
        "artifact_load" => TraceEvent::ArtifactLoad {
            path: f.take_s("path")?,
            sections: f.take_n("sections")?,
            bytes: f.take_n("bytes")?,
        },
        "checkpoint" => TraceEvent::Checkpoint {
            seq: f.take_n("seq")?,
            trials: f.take_n("trials")?,
            bytes: f.take_n("bytes")?,
        },
        "recovery" => TraceEvent::Recovery {
            seq: f.take_n("seq")?,
            trials: f.take_n("trials")?,
            restored: f.take_n("restored")?,
        },
        "rung_start" => TraceEvent::RungStart {
            bracket: f.take_n("bracket")?,
            rung: f.take_n("rung")?,
            candidates: f.take_n("candidates")?,
            num: f.take_n("num")?,
            den: f.take_n("den")?,
        },
        "promote" => TraceEvent::Promote {
            trial: f.take_n("trial")?,
            rung: f.take_n("rung")?,
        },
        "eliminate" => TraceEvent::Eliminate {
            trial: f.take_n("trial")?,
            rung: f.take_n("rung")?,
        },
        other => return Err(format!("unknown event kind \"{other}\"")),
    };
    f.finish()?;
    Ok(TraceRecord { t_us, event })
}

/// Decode one canonical JSONL line. The error's `line` is 0 (unknown).
pub fn parse_line(line: &str) -> Result<TraceRecord, CodecError> {
    parse_record(line).map_err(|message| CodecError { line: 0, message })
}

/// Decode a whole JSONL document. Blank lines are skipped; any malformed
/// line fails with its 1-based number.
pub fn decode(text: &str) -> Result<Vec<TraceRecord>, CodecError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(r) => out.push(r),
            Err(message) => {
                return Err(CodecError {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::CANONICAL_NAN_BITS;

    fn roundtrip(record: TraceRecord) {
        let line = encode_line(&record);
        let back = parse_line(&line).expect("canonical line decodes");
        assert_eq!(
            encode_line(&back),
            line,
            "re-encode is not byte-stable for {record:?}"
        );
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            TraceEvent::RunStart {
                optimizer: "genetic-algorithm".into(),
                seed: 97,
            },
            TraceEvent::RunEnd {
                optimizer: "smac-lite".into(),
                trials: 30,
                best: Some(-0.25),
            },
            TraceEvent::RunEnd {
                optimizer: "grid-search".into(),
                trials: 0,
                best: None,
            },
            TraceEvent::stage_start("feature-selection"),
            TraceEvent::stage_end("feature-selection", "9 of 12 kept"),
            TraceEvent::BatchStart {
                first_trial: 10,
                size: 10,
            },
            TraceEvent::BatchEnd {
                first_trial: 10,
                evaluated: 7,
            },
            TraceEvent::TrialStart {
                trial: 3,
                config: "{depth=4, lr=0.1250}".into(),
            },
            TraceEvent::TrialEnd {
                trial: 3,
                score: -1.0e9,
                attempts: 2,
                status: "failed".into(),
            },
            TraceEvent::CacheHit { trial: 4 },
            TraceEvent::CacheMiss { trial: 5 },
            TraceEvent::WarmHit { trial: 6 },
            TraceEvent::Fault {
                trial: 3,
                attempt: 0,
                kind: "panicked".into(),
                message: "injected fault: panic (trial 3)".into(),
            },
            TraceEvent::Retry {
                trial: 3,
                attempt: 1,
            },
            TraceEvent::Quarantine {
                trial: 3,
                config: "{depth=4}".into(),
            },
            TraceEvent::QuarantineSkip { trial: 9 },
            TraceEvent::BudgetExhausted {
                evals: 120,
                reason: "evals".into(),
            },
            TraceEvent::ArtifactLoad {
                path: "dmd.store".into(),
                sections: 7,
                bytes: 40_960,
            },
            TraceEvent::Checkpoint {
                seq: 3,
                trials: 96,
                bytes: 8_192,
            },
            TraceEvent::Recovery {
                seq: 3,
                trials: 96,
                restored: 96,
            },
            TraceEvent::RungStart {
                bracket: 1,
                rung: 2,
                candidates: 9,
                num: 1,
                den: 3,
            },
            TraceEvent::Promote { trial: 12, rung: 2 },
            TraceEvent::Eliminate { trial: 15, rung: 2 },
        ];
        for (i, event) in events.into_iter().enumerate() {
            roundtrip(TraceRecord {
                t_us: i as u64 * 17,
                event,
            });
        }
    }

    #[test]
    fn hostile_strings_round_trip() {
        for s in [
            "quote\" backslash\\ slash/ tab\t newline\n cr\r",
            "\u{8}\u{c}\u{1}\u{1f}",
            "unicode: λ→∞ 日本語 🦀",
            "",
            "ends with backslash \\",
        ] {
            roundtrip(TraceRecord {
                t_us: 0,
                event: TraceEvent::stage_start(s),
            });
        }
    }

    #[test]
    fn special_floats_encode_canonically() {
        let line = encode_line(&TraceRecord {
            t_us: 0,
            event: TraceEvent::TrialEnd {
                trial: 0,
                score: f64::from_bits(0x7ff8_dead_beef_0001), // NaN payload
                attempts: 1,
                status: "ok".into(),
            },
        });
        assert!(
            line.contains(&format!("{CANONICAL_NAN_BITS:016x}")),
            "NaN payload did not collapse: {line}"
        );
        let neg_zero = encode_line(&TraceRecord {
            t_us: 0,
            event: TraceEvent::TrialEnd {
                trial: 0,
                score: -0.0,
                attempts: 1,
                status: "ok".into(),
            },
        });
        assert!(
            neg_zero.contains("\"score\":\"0000000000000000\""),
            "-0.0 did not normalize: {neg_zero}"
        );
    }

    #[test]
    fn surrogate_escapes_decode_without_panicking() {
        // A valid pair, a lone high surrogate, a lone low surrogate.
        let line = r#"{"ev":"stage_start","t":0,"stage":"🦀 \ud800 \udc00"}"#;
        let r = parse_line(line).expect("surrogates decode");
        match r.event {
            TraceEvent::StageStart { stage } => {
                assert_eq!(stage, "🦀 \u{fffd} \u{fffd}");
            }
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            "not json",
            r#"{"ev":"trial_end","t":0}"#, // missing fields
            r#"{"ev":"cache_hit","t":0,"trial":1,"x":2}"#, // extra field
            r#"{"ev":"cache_hit","t":0,"trial":"one"}"#, // wrong type
            r#"{"ev":"cache_hit","t":0,"trial":1,"trial":1}"#, // duplicate
            r#"{"ev":"nope","t":0}"#,      // unknown kind
            r#"{"ev":"cache_hit","t":-1,"trial":1}"#, // negative int
            r#"{"ev":"cache_hit","t":99999999999999999999999999,"trial":1}"#,
            r#"{"ev":"cache_hit","t":0,"trial":1} "#, // trailing bytes
            r#"{"ev":"trial_end","t":0,"trial":1,"score":"xyz","attempts":1,"status":"ok"}"#,
            "{\"ev\":\"stage_start\",\"t\":0,\"stage\":\"a\nb\"}", // raw control
            r#"{"ev":"stage_start","t":0,"stage":"\q"}"#,          // bad escape
            r#"{"ev":"stage_start","t":0,"stage":"\u12"}"#,        // short \u
        ] {
            if bad.is_empty() {
                continue;
            }
            assert!(parse_line(bad).is_err(), "accepted malformed line: {bad}");
        }
    }

    #[test]
    fn decode_reports_the_failing_line_number() {
        let good = encode_line(&TraceRecord {
            t_us: 0,
            event: TraceEvent::CacheHit { trial: 1 },
        });
        let doc = format!("{good}\n\nbroken\n");
        let err = decode(&doc).expect_err("broken line must fail");
        assert_eq!(err.line, 3);
        assert_eq!(decode(&format!("{good}\n{good}\n")).map(|v| v.len()), Ok(2));
    }
}
