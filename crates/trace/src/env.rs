//! Strict environment-variable parsing support.
//!
//! Every `AUTOMODEL_*` reader in the workspace follows one rule: an unset
//! variable selects the documented default, but a *malformed* value is a
//! hard error naming the variable and the offending text — never a silent
//! fallback. A typo like `AUTOMODEL_CACHE=65k` must stop the run, not
//! quietly run with a default-capacity cache. [`EnvError`] is the shared
//! error type for that contract; it lives here because `automodel-trace`
//! sits at the bottom of the dependency graph, so every crate with an
//! env reader can use it.

use std::fmt;

/// A malformed environment variable: which variable, what it held, and
/// the grammar it was expected to follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The variable name, e.g. `AUTOMODEL_CACHE`.
    pub var: &'static str,
    /// The offending value, verbatim.
    pub value: String,
    /// A short description of the accepted grammar.
    pub expected: &'static str,
}

impl EnvError {
    pub fn new(var: &'static str, value: impl Into<String>, expected: &'static str) -> EnvError {
        EnvError {
            var,
            value: value.into(),
            expected,
        }
    }
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: malformed value {:?} (expected {})",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_variable_and_value() {
        let e = EnvError::new("AUTOMODEL_CACHE", "65k", "0/1/off/on or a capacity >= 2");
        let msg = e.to_string();
        assert!(msg.contains("AUTOMODEL_CACHE"), "{msg}");
        assert!(msg.contains("65k"), "{msg}");
        assert!(msg.contains("capacity"), "{msg}");
    }
}
