//! Deterministic structured tracing for the Auto-Model pipeline.
//!
//! CASH systems live or die by per-trial accounting: which configs ran,
//! which failed, where the budget went. This crate turns that accounting
//! into a first-class artifact — a stream of typed [`TraceEvent`]s
//! (run → stage → batch → trial spans, plus cache, fault, retry,
//! quarantine, and budget events) encoded as canonical JSONL — under the
//! same determinism contract as the rest of the workspace:
//!
//! * **Byte-identical at any thread count.** Per-trial events are built
//!   inside the worker closures as plain values (no shared state, no
//!   locks on the hot path) and emitted by the batch reducer in
//!   trial-index order at the batch boundary. Parallelism can never
//!   reorder a trace.
//! * **Trace-on equals trace-off.** The tracer only observes; it never
//!   feeds back into sampling, scheduling, or scoring, so enabling it
//!   cannot change results.
//! * **Reproducible timestamps.** Time comes from the injected [`Clock`].
//!   The default is a [`ManualClock`] pinned at zero, so traces are
//!   byte-stable across machines; inject a [`MonotonicClock`] to get real
//!   latencies (and accept that those bytes vary run to run).
//! * **Canonical float encoding.** Scores are written as the 16-hex-digit
//!   [`canonical_f64_bits`] pattern — every NaN collapses to one quiet
//!   NaN, `-0.0` to `+0.0` — so encode→decode→encode is byte-stable for
//!   any float, and golden traces diff exactly.
//!
//! Because the stream is deterministic, it doubles as a cross-cutting
//! *oracle*: integration tests decode a run's trace and assert that every
//! trial appears exactly once, spans nest properly, cache-hit events equal
//! `CacheStats`, and fault/quarantine events match policy decisions.
//!
//! Sinks: `AUTOMODEL_TRACE=<path>` appends JSONL via
//! [`Tracer::from_env`]; [`ProgressSink`] renders human stage lines to
//! stderr; the in-memory sink backs the conformance tests; and every
//! enabled tracer keeps a [`TraceSummary`] counter table for end-of-run
//! reporting.

pub mod canon;
pub mod clock;
pub mod codec;
pub mod env;
pub mod event;
pub mod sink;
pub mod tracer;

pub use canon::{canonical_f64_bits, f64_from_hex, f64_to_hex, CANONICAL_NAN_BITS};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use codec::{decode, encode_line, parse_line, CodecError, TraceRecord};
pub use env::EnvError;
pub use event::TraceEvent;
pub use sink::{JsonlSink, MemoryHandle, ProgressSink, Sink, TraceError};
pub use tracer::{TraceSummary, Tracer};

/// Environment variable naming the JSONL trace file ([`Tracer::from_env`]).
pub const TRACE_ENV: &str = "AUTOMODEL_TRACE";
