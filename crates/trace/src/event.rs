//! The typed event vocabulary of a pipeline run.
//!
//! Events form spans by pairing: `RunStart`/`RunEnd` bracket one
//! optimizer run, `StageStart`/`StageEnd` one pipeline stage,
//! `BatchStart`/`BatchEnd` one evaluation batch, `TrialStart`/`TrialEnd`
//! one trial. Everything trial-scoped (cache hits, faults, retries,
//! quarantine decisions) is emitted *between* its trial's start and end,
//! so a decoder can reconstruct the span tree from nesting alone — the
//! property the conformance oracle in `tests/trace_oracle.rs` asserts.
//!
//! All payloads are plain strings and `u64`s; scores travel as canonical
//! float bits (see [`crate::canon`]) so the wire form never depends on
//! formatting locale or float printing.

/// One structured trace event. Field names mirror the JSONL wire keys
/// (see [`crate::codec`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An optimizer run begins (one `Optimizer::optimize*` call).
    RunStart { optimizer: String, seed: u64 },
    /// The run ended: how many trials were recorded and the incumbent
    /// score, if any trial was usable.
    RunEnd {
        optimizer: String,
        trials: u64,
        best: Option<f64>,
    },
    /// A named pipeline stage begins (DMD steps, UDR probe, bench phases).
    StageStart { stage: String },
    /// The stage ended; `detail` is a short human-readable result note.
    StageEnd { stage: String, detail: String },
    /// An evaluation batch begins: trials `first_trial ..
    /// first_trial + size` are candidates.
    BatchStart { first_trial: u64, size: u64 },
    /// The batch ended having evaluated `evaluated ≤ size` trials (a
    /// shortfall means the budget tripped mid-batch).
    BatchEnd { first_trial: u64, evaluated: u64 },
    /// One trial begins. `config` is the trial's display form.
    TrialStart { trial: u64, config: String },
    /// The trial ended. `status` is `"ok"`, `"failed"`, or `"skipped"`
    /// (quarantined before evaluation); `score` is the recorded score
    /// (the policy penalty for failures).
    TrialEnd {
        trial: u64,
        score: f64,
        attempts: u64,
        status: String,
    },
    /// The trial was served from the trial cache (no live evaluation).
    CacheHit { trial: u64 },
    /// The trial missed the cache and was evaluated live.
    CacheMiss { trial: u64 },
    /// The trial was served from a cache entry restored out of a
    /// persisted artifact — a cache hit whose provenance is warm-start
    /// history rather than this run's own evaluations.
    WarmHit { trial: u64 },
    /// One attempt of the trial failed; `kind` is the `FailureKind`
    /// display form, `message` the contained failure text.
    Fault {
        trial: u64,
        attempt: u64,
        kind: String,
        message: String,
    },
    /// The policy granted another attempt after a fault.
    Retry { trial: u64, attempt: u64 },
    /// The trial's config was quarantined after exhausting its attempts.
    Quarantine { trial: u64, config: String },
    /// The trial was skipped because its config was already quarantined.
    QuarantineSkip { trial: u64 },
    /// The budget stopped evaluation early; `reason` is `"evals"`,
    /// `"time"`, or `"target"`, `evals` the count consumed so far.
    BudgetExhausted { evals: u64, reason: String },
    /// A persisted artifact was opened and its digests verified: where it
    /// came from, how many sections it carries, and its total size.
    ArtifactLoad {
        path: String,
        sections: u64,
        bytes: u64,
    },
    /// A run checkpoint was durably written at a batch boundary: its
    /// generation sequence number, the trials it covers, and its size.
    Checkpoint { seq: u64, trials: u64, bytes: u64 },
    /// A run state was recovered from a persisted checkpoint: the
    /// generation it came from, the trials it covered, and how many cache
    /// entries were restored from it.
    Recovery {
        seq: u64,
        trials: u64,
        restored: u64,
    },
    /// A successive-halving rung begins: `candidates` configurations will
    /// be evaluated at the row fraction `num/den` (Hyperband brackets
    /// number their rungs independently; plain SHA uses bracket 0).
    RungStart {
        bracket: u64,
        rung: u64,
        candidates: u64,
        num: u64,
        den: u64,
    },
    /// The trial's configuration survived the rung's elimination and is
    /// promoted to the next (higher-fidelity) rung. Emitted at the rung
    /// boundary in promotion-rank order, so the promotion set is
    /// re-derivable from the preceding `trial_end` scores alone.
    Promote { trial: u64, rung: u64 },
    /// The trial's configuration was eliminated at the rung boundary and
    /// will not be evaluated at any higher fidelity.
    Eliminate { trial: u64, rung: u64 },
}

impl TraceEvent {
    /// The wire name of this event kind (the `"ev"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::StageStart { .. } => "stage_start",
            TraceEvent::StageEnd { .. } => "stage_end",
            TraceEvent::BatchStart { .. } => "batch_start",
            TraceEvent::BatchEnd { .. } => "batch_end",
            TraceEvent::TrialStart { .. } => "trial_start",
            TraceEvent::TrialEnd { .. } => "trial_end",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::WarmHit { .. } => "warm_hit",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::QuarantineSkip { .. } => "quarantine_skip",
            TraceEvent::BudgetExhausted { .. } => "budget",
            TraceEvent::ArtifactLoad { .. } => "artifact_load",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::RungStart { .. } => "rung_start",
            TraceEvent::Promote { .. } => "promote",
            TraceEvent::Eliminate { .. } => "eliminate",
        }
    }

    /// Convenience constructor for a stage-start event.
    pub fn stage_start(stage: impl Into<String>) -> TraceEvent {
        TraceEvent::StageStart {
            stage: stage.into(),
        }
    }

    /// Convenience constructor for a stage-end event.
    pub fn stage_end(stage: impl Into<String>, detail: impl Into<String>) -> TraceEvent {
        TraceEvent::StageEnd {
            stage: stage.into(),
            detail: detail.into(),
        }
    }

    /// The trial index this event belongs to, if it is trial-scoped.
    ///
    /// `Promote`/`Eliminate` *reference* a trial in their payload but are
    /// not trial-scoped: they are emitted at the rung boundary, outside
    /// any `trial_start`/`trial_end` span, so they return `None` here.
    pub fn trial(&self) -> Option<u64> {
        match self {
            TraceEvent::TrialStart { trial, .. }
            | TraceEvent::TrialEnd { trial, .. }
            | TraceEvent::CacheHit { trial }
            | TraceEvent::CacheMiss { trial }
            | TraceEvent::WarmHit { trial }
            | TraceEvent::Fault { trial, .. }
            | TraceEvent::Retry { trial, .. }
            | TraceEvent::Quarantine { trial, .. }
            | TraceEvent::QuarantineSkip { trial } => Some(*trial),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_wire_names() {
        let events = [
            TraceEvent::RunStart {
                optimizer: String::new(),
                seed: 0,
            },
            TraceEvent::RunEnd {
                optimizer: String::new(),
                trials: 0,
                best: None,
            },
            TraceEvent::stage_start("s"),
            TraceEvent::stage_end("s", "d"),
            TraceEvent::BatchStart {
                first_trial: 0,
                size: 0,
            },
            TraceEvent::BatchEnd {
                first_trial: 0,
                evaluated: 0,
            },
            TraceEvent::TrialStart {
                trial: 0,
                config: String::new(),
            },
            TraceEvent::TrialEnd {
                trial: 0,
                score: 0.0,
                attempts: 0,
                status: "ok".into(),
            },
            TraceEvent::CacheHit { trial: 0 },
            TraceEvent::CacheMiss { trial: 0 },
            TraceEvent::WarmHit { trial: 0 },
            TraceEvent::Fault {
                trial: 0,
                attempt: 0,
                kind: String::new(),
                message: String::new(),
            },
            TraceEvent::Retry {
                trial: 0,
                attempt: 0,
            },
            TraceEvent::Quarantine {
                trial: 0,
                config: String::new(),
            },
            TraceEvent::QuarantineSkip { trial: 0 },
            TraceEvent::BudgetExhausted {
                evals: 0,
                reason: String::new(),
            },
            TraceEvent::ArtifactLoad {
                path: String::new(),
                sections: 0,
                bytes: 0,
            },
            TraceEvent::Checkpoint {
                seq: 0,
                trials: 0,
                bytes: 0,
            },
            TraceEvent::Recovery {
                seq: 0,
                trials: 0,
                restored: 0,
            },
            TraceEvent::RungStart {
                bracket: 0,
                rung: 0,
                candidates: 0,
                num: 0,
                den: 0,
            },
            TraceEvent::Promote { trial: 0, rung: 0 },
            TraceEvent::Eliminate { trial: 0, rung: 0 },
        ];
        let mut names: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), events.len(), "duplicate wire names");
    }

    #[test]
    fn trial_scoping_matches_the_span_design() {
        assert_eq!(TraceEvent::CacheHit { trial: 7 }.trial(), Some(7));
        assert_eq!(TraceEvent::WarmHit { trial: 7 }.trial(), Some(7));
        assert_eq!(TraceEvent::stage_start("x").trial(), None);
        assert_eq!(
            TraceEvent::ArtifactLoad {
                path: "a.store".into(),
                sections: 7,
                bytes: 1024
            }
            .trial(),
            None
        );
        assert_eq!(
            TraceEvent::BudgetExhausted {
                evals: 1,
                reason: "evals".into()
            }
            .trial(),
            None
        );
        assert_eq!(
            TraceEvent::Checkpoint {
                seq: 1,
                trials: 40,
                bytes: 2048
            }
            .trial(),
            None
        );
        assert_eq!(
            TraceEvent::Recovery {
                seq: 1,
                trials: 40,
                restored: 40
            }
            .trial(),
            None
        );
        // Rung events reference trials but live at the rung boundary,
        // outside any trial span — they must not claim trial scope.
        assert_eq!(
            TraceEvent::RungStart {
                bracket: 0,
                rung: 1,
                candidates: 9,
                num: 1,
                den: 9
            }
            .trial(),
            None
        );
        assert_eq!(TraceEvent::Promote { trial: 4, rung: 1 }.trial(), None);
        assert_eq!(TraceEvent::Eliminate { trial: 5, rung: 1 }.trial(), None);
    }
}
