//! Synthetic paper corpora with planted ground truth.
//!
//! The authors hand-read 20 papers; we cannot. [`CorpusSpec`] simulates the
//! process: given a *planted per-dataset ranking* of algorithms (in the full
//! pipeline this comes from actually cross-validating the registry on the
//! knowledge datasets), it emits papers of varying Table I reliability whose
//! experiences report the best algorithm over a random subset — with
//! reliability-dependent reporting errors and therefore genuine conflicts
//! for Algorithm 1 to resolve.
//!
//! [`fig2_wine_example`] reconstructs the shape of the paper's Fig. 2 worked
//! example (the Wine dataset, candidates {RandomForest, BayesNet, LDA, J48,
//! LibSVM}, resolution between BayesNet and J48). The figure's exact edge
//! weights are not given in the text; the constructed experiences reproduce
//! the documented outcome.

use crate::experience::Experience;
use crate::paper::{Paper, PaperLevel, VenueType};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub papers: Vec<Paper>,
    pub experiences: Vec<Experience>,
    /// The planted truth: per instance, algorithms from best to worst.
    pub true_rankings: BTreeMap<String, Vec<String>>,
}

impl Corpus {
    /// The planted best algorithm for `instance`.
    pub fn true_best(&self, instance: &str) -> Option<&str> {
        self.true_rankings
            .get(instance)
            .and_then(|r| r.first())
            .map(String::as_str)
    }
}

/// Specification of a synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of papers (the paper's experiments use 20).
    pub n_papers: usize,
    /// Planted per-instance ranking (best first). Instance order is the
    /// map's order.
    pub true_rankings: BTreeMap<String, Vec<String>>,
    /// Error probability of the *least* reliable paper; the most reliable
    /// paper's error rate is `noise / 4`. Reporting errors swap the best
    /// algorithm with a random weaker one.
    pub noise: f64,
    /// Instances analyzed per paper, `(lo, hi)` inclusive.
    pub instances_per_paper: (usize, usize),
    /// Algorithms compared per experience, `(lo, hi)` inclusive.
    pub algorithms_per_paper: (usize, usize),
    pub seed: u64,
}

impl CorpusSpec {
    /// Corpus over explicit rankings.
    pub fn new(true_rankings: BTreeMap<String, Vec<String>>, seed: u64) -> CorpusSpec {
        CorpusSpec {
            n_papers: 20,
            true_rankings,
            noise: 0.25,
            instances_per_paper: (3, 8),
            algorithms_per_paper: (6, 10),
            seed,
        }
    }

    /// A small self-contained corpus for doc examples and quick tests:
    /// 12 synthetic instances ranked over 10 well-known Weka names, with a
    /// planted dependence of the winner on the instance index.
    pub fn small() -> CorpusSpec {
        const ALGOS: [&str; 10] = [
            "RandomForest",
            "J48",
            "NaiveBayes",
            "IBk",
            "Logistic",
            "SMO",
            "REPTree",
            "OneR",
            "BayesNet",
            "ZeroR",
        ];
        let mut rng = StdRng::seed_from_u64(99);
        let mut rankings = BTreeMap::new();
        for i in 0..12 {
            let mut order: Vec<String> = ALGOS.iter().map(|s| s.to_string()).collect();
            // Planted winner rotates; the rest shuffles.
            order.swap(0, i % ALGOS.len());
            order[1..].shuffle(&mut rng);
            rankings.insert(format!("ds{i:02}"), order);
        }
        CorpusSpec::new(rankings, 7)
    }

    /// Generate papers and experiences.
    pub fn build(&self) -> Corpus {
        assert!(self.n_papers >= 1, "need at least one paper");
        assert!(
            !self.true_rankings.is_empty(),
            "need at least one planted instance ranking"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Papers with spread-out reliability attributes.
        let levels = [PaperLevel::A, PaperLevel::B, PaperLevel::C, PaperLevel::D];
        let papers: Vec<Paper> = (0..self.n_papers)
            .map(|i| {
                Paper::new(
                    format!("paper{i:02}"),
                    levels[rng.gen_range(0..levels.len())],
                    if rng.gen_bool(0.5) {
                        VenueType::Journal
                    } else {
                        VenueType::Conference
                    },
                    rng.gen_range(0.0..12.0),
                    rng.gen_range(0..800),
                )
            })
            .collect();

        // Reliability rank fraction per paper (0 = least reliable).
        let ranks = crate::paper::rank_papers(&papers);
        let rank_of: BTreeMap<&str, usize> =
            ranks.iter().map(|(id, r)| (id.as_str(), *r)).collect();
        let max_rank = (self.n_papers - 1).max(1) as f64;

        let instances: Vec<&String> = self.true_rankings.keys().collect();
        let mut experiences = Vec::new();
        for paper in &papers {
            let rank_frac = rank_of[paper.id.as_str()] as f64 / max_rank;
            // Least reliable papers err at `noise`, best at `noise/4`.
            let err = self.noise * (1.0 - 0.75 * rank_frac);
            let n_instances = rng
                .gen_range(self.instances_per_paper.0..=self.instances_per_paper.1)
                .min(instances.len());
            let mut chosen = instances.clone();
            chosen.shuffle(&mut rng);
            for &instance in chosen.iter().take(n_instances) {
                let ranking = &self.true_rankings[instance];
                let n_algos = rng
                    .gen_range(self.algorithms_per_paper.0..=self.algorithms_per_paper.1)
                    .min(ranking.len());
                if n_algos < 2 {
                    continue;
                }
                let mut sample: Vec<String> = {
                    let mut idx: Vec<usize> = (0..ranking.len()).collect();
                    idx.shuffle(&mut rng);
                    idx.truncate(n_algos);
                    idx.sort_unstable(); // ranking order = quality order
                    idx.into_iter().map(|i| ranking[i].clone()).collect()
                };
                // The honest best is the highest-ranked sampled algorithm;
                // an erring paper promotes a random weaker one instead.
                let best_idx = if rng.gen::<f64>() < err && sample.len() > 1 {
                    rng.gen_range(1..sample.len())
                } else {
                    0
                };
                let best = sample.remove(best_idx);
                experiences.push(Experience {
                    paper: paper.id.clone(),
                    instance: instance.clone(),
                    best,
                    others: sample,
                });
            }
        }
        Corpus {
            papers,
            experiences,
            true_rankings: self.true_rankings.clone(),
        }
    }
}

/// The Fig. 2 worked example: experiences about the Wine dataset whose
/// optimal-algorithm candidates are {RandomForest, BayesNet, LDA, J48,
/// LibSVM} and whose resolution comes down to BayesNet vs J48.
pub fn fig2_wine_example() -> (Vec<Paper>, Vec<Experience>) {
    let papers = vec![
        // [19] Lee & Jun 2008, journal.
        Paper::new("lee2008", PaperLevel::C, VenueType::Journal, 0.8, 12),
        // [20] Wang et al. 2011, Evolutionary Intelligence.
        Paper::new("wang2011", PaperLevel::C, VenueType::Journal, 1.1, 20),
        // [21] Esmaelian et al. 2016, Applied Soft Computing.
        Paper::new("esmaelian2016", PaperLevel::B, VenueType::Journal, 4.0, 45),
        // [22] Zhang et al. 2017, Expert Systems with Applications.
        Paper::new("zhang2017", PaperLevel::B, VenueType::Journal, 5.5, 120),
        // [23] Morente-Molinera et al. 2017, IEEE Trans. Fuzzy Systems.
        Paper::new("morente2017", PaperLevel::A, VenueType::Journal, 8.7, 90),
    ];
    let wine = "Wine Dataset";
    let experiences = vec![
        Experience::new("lee2008", wine, "LDA", &["J48", "NaiveBayes", "SMO"]),
        Experience::new("wang2011", wine, "LibSVM", &["LDA", "IBk", "OneR"]),
        Experience::new(
            "esmaelian2016",
            wine,
            "J48",
            &["LibSVM", "LDA", "RBFNetwork", "PART"],
        ),
        Experience::new(
            "zhang2017",
            wine,
            "RandomForest",
            &["LibSVM", "Logistic", "REPTree", "LDA"],
        ),
        Experience::new(
            "morente2017",
            wine,
            "BayesNet",
            &["RandomForest", "NaiveBayes", "SMO", "IBk", "Logistic"],
        ),
    ];
    (papers, experiences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::{knowledge_acquisition, AcquisitionOptions};

    #[test]
    fn corpus_is_deterministic() {
        let spec = CorpusSpec::small();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.experiences, b.experiences);
        assert_eq!(a.papers, b.papers);
    }

    #[test]
    fn corpus_has_requested_shape() {
        let corpus = CorpusSpec::small().build();
        assert_eq!(corpus.papers.len(), 20);
        assert!(!corpus.experiences.is_empty());
        for e in &corpus.experiences {
            assert!(corpus.papers.iter().any(|p| p.id == e.paper));
            assert!(corpus.true_rankings.contains_key(&e.instance));
            assert!(!e.others.is_empty());
            assert!(!e.others.contains(&e.best));
        }
    }

    #[test]
    fn noise_free_corpus_reports_planted_truth() {
        let mut spec = CorpusSpec::small();
        spec.noise = 0.0;
        let corpus = spec.build();
        for e in &corpus.experiences {
            let ranking = &corpus.true_rankings[&e.instance];
            let best_rank = ranking.iter().position(|a| a == &e.best).unwrap();
            for other in &e.others {
                let other_rank = ranking.iter().position(|a| a == other).unwrap();
                assert!(
                    best_rank < other_rank,
                    "{}: {} should outrank {}",
                    e.instance,
                    e.best,
                    other
                );
            }
        }
    }

    #[test]
    fn noisy_corpus_contains_conflicts_but_acquisition_mostly_recovers_truth() {
        let mut spec = CorpusSpec::small();
        spec.noise = 0.35;
        spec.n_papers = 30;
        let corpus = spec.build();
        // Some experience must misreport (else the noise path is dead).
        let misreports = corpus
            .experiences
            .iter()
            .filter(|e| {
                let ranking = &corpus.true_rankings[&e.instance];
                let best_rank = ranking.iter().position(|a| a == &e.best).unwrap();
                e.others
                    .iter()
                    .any(|o| ranking.iter().position(|a| a == o).unwrap() < best_rank)
            })
            .count();
        assert!(misreports > 0, "expected at least one planted conflict");

        let pairs = knowledge_acquisition(
            &corpus.experiences,
            &corpus.papers,
            &AcquisitionOptions::default(),
        );
        assert!(!pairs.is_empty());
        let correct = pairs
            .iter()
            .filter(|p| corpus.true_best(&p.instance) == Some(p.best_algorithm.as_str()))
            .count();
        let accuracy = correct as f64 / pairs.len() as f64;
        assert!(
            accuracy >= 0.6,
            "acquisition should beat the noise floor: {accuracy} over {} pairs",
            pairs.len()
        );
    }

    #[test]
    fn fig2_example_resolves_to_bayesnet() {
        let (papers, experiences) = fig2_wine_example();
        let pairs = knowledge_acquisition(&experiences, &papers, &AcquisitionOptions::default());
        assert_eq!(pairs.len(), 1);
        let pair = &pairs[0];
        assert_eq!(pair.instance, "Wine Dataset");
        // Final stand-off: BayesNet (undominated, rich evidence) wins.
        assert_eq!(pair.best_algorithm, "BayesNet");
        assert!(pair.final_candidates.contains(&"BayesNet".to_string()));
    }

    #[test]
    fn fig2_candidates_match_the_caption() {
        let (_, experiences) = fig2_wine_example();
        let bests: std::collections::BTreeSet<&str> =
            experiences.iter().map(|e| e.best.as_str()).collect();
        let expected: std::collections::BTreeSet<&str> =
            ["RandomForest", "BayesNet", "LDA", "J48", "LibSVM"]
                .into_iter()
                .collect();
        assert_eq!(bests, expected);
    }
}
