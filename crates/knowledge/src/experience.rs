//! Experience quadruples.
//!
//! "The experience required in Auto-Model is a set of quadruples
//! `(P, I, BestA_I^P, OtherAs_I^P)`": paper `P` analyzed instance `I`, found
//! `best` strongest, and found every algorithm in `others` weaker.

use serde::{Deserialize, Serialize};

/// One piece of experience extracted from one paper about one task instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experience {
    /// Paper id (`P`).
    pub paper: String,
    /// Task-instance (dataset) name (`I`).
    pub instance: String,
    /// The algorithm the paper found best on `I`.
    pub best: String,
    /// Algorithms the paper found weaker than `best` on `I`.
    pub others: Vec<String>,
}

impl Experience {
    pub fn new(
        paper: impl Into<String>,
        instance: impl Into<String>,
        best: impl Into<String>,
        others: &[&str],
    ) -> Experience {
        Experience {
            paper: paper.into(),
            instance: instance.into(),
            best: best.into(),
            others: others.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// All algorithms this experience mentions (best first).
    pub fn algorithms(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.best.as_str()).chain(self.others.iter().map(String::as_str))
    }
}

/// Distinct instance names mentioned in `infall`, in first-seen order
/// (Algorithm 1's `IList`).
pub fn instance_list(infall: &[Experience]) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in infall {
        if seen.insert(e.instance.as_str()) {
            out.push(e.instance.clone());
        }
    }
    out
}

/// Experiences about one instance (Algorithm 1's `RInf_I`).
pub fn related_experiences<'a>(infall: &'a [Experience], instance: &str) -> Vec<&'a Experience> {
    infall.iter().filter(|e| e.instance == instance).collect()
}

/// Distinct algorithms mentioned across `experiences`.
pub fn distinct_algorithms(experiences: &[&Experience]) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in experiences {
        for a in e.algorithms() {
            if seen.insert(a.to_string()) {
                out.push(a.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infall() -> Vec<Experience> {
        vec![
            Experience::new("p1", "wine", "J48", &["ZeroR", "OneR"]),
            Experience::new("p2", "wine", "BayesNet", &["J48"]),
            Experience::new("p1", "iris", "IBk", &["ZeroR"]),
        ]
    }

    #[test]
    fn instance_list_preserves_first_seen_order() {
        assert_eq!(instance_list(&infall()), vec!["wine", "iris"]);
    }

    #[test]
    fn related_filters_by_instance() {
        let all = infall();
        let wine = related_experiences(&all, "wine");
        assert_eq!(wine.len(), 2);
        assert!(wine.iter().all(|e| e.instance == "wine"));
    }

    #[test]
    fn distinct_algorithms_dedupes_across_experiences() {
        let all = infall();
        let wine = related_experiences(&all, "wine");
        let algs = distinct_algorithms(&wine);
        assert_eq!(algs, vec!["J48", "ZeroR", "OneR", "BayesNet"]);
    }

    #[test]
    fn algorithms_iterates_best_first() {
        let e = Experience::new("p", "i", "A", &["B", "C"]);
        let v: Vec<&str> = e.algorithms().collect();
        assert_eq!(v, vec!["A", "B", "C"]);
    }
}
