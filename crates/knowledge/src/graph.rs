//! The information network `DGraph`.
//!
//! A directed graph over optimal-algorithm candidates where an edge
//! `A_i → A_j` with weight `w` means "some paper of reliability `w` showed
//! `A_i` beats `A_j` on this instance". Algorithm 1 closes the graph under
//! reachability — the reliability of a derived relation is the *minimum*
//! weight along its path (weakest link). The paper derives these via BFS
//! per node; we compute the equivalent *widest paths* (maximize the minimum
//! edge weight) with a Floyd–Warshall-style pass, which is deterministic
//! and path-order independent. Contradictory pairs (`A→B` and `B→A`) keep
//! only the more reliable direction; exact ties drop both.

use automodel_invariant::debug_invariant;
use std::collections::{BTreeMap, BTreeSet};

/// Directed reliability-weighted graph over algorithm names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InformationNetwork {
    /// `edges[(from, to)] = reliability` (higher is more reliable).
    edges: BTreeMap<(String, String), usize>,
    nodes: BTreeSet<String>,
}

impl InformationNetwork {
    pub fn new() -> InformationNetwork {
        InformationNetwork::default()
    }

    /// Register a node without edges (candidates with no relations still
    /// participate in the in-degree analysis).
    pub fn add_node(&mut self, node: &str) {
        self.nodes.insert(node.to_string());
    }

    /// Add (or strengthen) a directed relation `from beats to`. A repeated
    /// relation keeps the maximum reliability (Algorithm 1, line 8:
    /// `Rel_ij = max value in Base_ij`).
    pub fn add_edge(&mut self, from: &str, to: &str, reliability: usize) {
        if from == to {
            return;
        }
        self.add_node(from);
        self.add_node(to);
        let key = (from.to_string(), to.to_string());
        let entry = self.edges.entry(key).or_insert(reliability);
        *entry = (*entry).max(reliability);
    }

    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn edge(&self, from: &str, to: &str) -> Option<usize> {
        self.edges.get(&(from.to_string(), to.to_string())).copied()
    }

    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.edges
            .iter()
            .map(|((f, t), &w)| (f.as_str(), t.as_str(), w))
    }

    /// Transitive closure where a derived edge's reliability is the widest
    /// (max-min) path weight (Algorithm 1, lines 10–11).
    pub fn close_transitively(&mut self) {
        let original = if cfg!(debug_assertions) {
            Some(self.edges.clone())
        } else {
            None
        };
        let nodes: Vec<String> = self.nodes.iter().cloned().collect();
        for k in &nodes {
            for i in &nodes {
                if i == k {
                    continue;
                }
                let Some(w_ik) = self.edge(i, k) else {
                    continue;
                };
                for j in &nodes {
                    if j == i || j == k {
                        continue;
                    }
                    let Some(w_kj) = self.edge(k, j) else {
                        continue;
                    };
                    let through = w_ik.min(w_kj);
                    let current = self.edge(i, j).unwrap_or(0);
                    if through > current {
                        self.edges.insert((i.clone(), j.clone()), through);
                    }
                }
            }
        }
        if let Some(original) = original {
            self.check_closure_invariants(&original);
        }
    }

    /// Debug-build check that `close_transitively` computed exactly the
    /// widest (max-min) paths of the original graph: every derived edge's
    /// reliability equals the best achievable weakest-link weight, computed
    /// here independently by per-source relaxation (the paper's per-node
    /// BFS formulation). Equality in both directions also proves the
    /// closure is idempotent — a second pass would find nothing to widen.
    fn check_closure_invariants(&self, original: &BTreeMap<(String, String), usize>) {
        for source in &self.nodes {
            // Widest-path weights from `source` over the original edges.
            let mut best: BTreeMap<&str, usize> = BTreeMap::new();
            let mut changed = true;
            while changed {
                changed = false;
                for ((from, to), &w) in original {
                    let via = if from == source {
                        w
                    } else {
                        best.get(from.as_str()).copied().unwrap_or(0).min(w)
                    };
                    if via > best.get(to.as_str()).copied().unwrap_or(0) {
                        best.insert(to, via);
                        changed = true;
                    }
                }
            }
            for target in &self.nodes {
                if target == source {
                    continue;
                }
                let derived = self.edge(source, target).unwrap_or(0);
                let widest = best.get(target.as_str()).copied().unwrap_or(0);
                debug_invariant!(
                    derived == widest,
                    "closure edge {source}->{target} has reliability {derived}, \
                     widest original path gives {widest}"
                );
            }
        }
    }

    /// Remove contradictions (Algorithm 1, line 12): for mutual edges keep
    /// the strictly more reliable one; equal weights drop both.
    pub fn resolve_conflicts(&mut self) {
        let pairs: Vec<(String, String)> = self
            .edges
            .keys()
            .filter(|(f, t)| f < t && self.edges.contains_key(&(t.clone(), f.clone())))
            .cloned()
            .collect();
        for (a, b) in pairs {
            let w_ab = self.edges[&(a.clone(), b.clone())];
            let w_ba = self.edges[&(b.clone(), a.clone())];
            match w_ab.cmp(&w_ba) {
                std::cmp::Ordering::Greater => {
                    self.edges.remove(&(b.clone(), a.clone()));
                }
                std::cmp::Ordering::Less => {
                    self.edges.remove(&(a.clone(), b.clone()));
                }
                std::cmp::Ordering::Equal => {
                    self.edges.remove(&(a.clone(), b.clone()));
                    self.edges.remove(&(b, a));
                }
            }
        }
        debug_invariant!(
            self.edges
                .keys()
                .all(|(f, t)| !self.edges.contains_key(&(t.clone(), f.clone()))),
            "a contradictory edge pair survived conflict resolution"
        );
    }

    /// Nodes with no incoming edges (Algorithm 1, line 13: the provably
    /// undominated candidates).
    pub fn sources(&self) -> Vec<String> {
        let mut has_incoming: BTreeSet<&str> = BTreeSet::new();
        for (_, to) in self.edges.keys() {
            has_incoming.insert(to);
        }
        self.nodes
            .iter()
            .filter(|n| !has_incoming.contains(n.as_str()))
            .cloned()
            .collect()
    }

    /// Nodes reachable from `start` (excluding `start` unless on a cycle).
    pub fn descendants(&self, start: &str) -> BTreeSet<String> {
        let mut visited = BTreeSet::new();
        let mut queue = vec![start.to_string()];
        while let Some(node) = queue.pop() {
            for ((from, to), _) in self.edges.iter() {
                if from == &node && !visited.contains(to) {
                    visited.insert(to.clone());
                    queue.push(to.clone());
                }
            }
        }
        visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> InformationNetwork {
        // a -5-> b -2-> c
        let mut g = InformationNetwork::new();
        g.add_edge("a", "b", 5);
        g.add_edge("b", "c", 2);
        g
    }

    #[test]
    fn repeated_edges_keep_max_reliability() {
        let mut g = InformationNetwork::new();
        g.add_edge("a", "b", 1);
        g.add_edge("a", "b", 7);
        g.add_edge("a", "b", 3);
        assert_eq!(g.edge("a", "b"), Some(7));
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = InformationNetwork::new();
        g.add_edge("a", "a", 9);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn closure_derives_weakest_link_weight() {
        let mut g = chain();
        g.close_transitively();
        assert_eq!(g.edge("a", "c"), Some(2));
    }

    #[test]
    fn closure_prefers_the_widest_path() {
        // Two routes a→c: direct weight 1, through b with min 3.
        let mut g = InformationNetwork::new();
        g.add_edge("a", "c", 1);
        g.add_edge("a", "b", 4);
        g.add_edge("b", "c", 3);
        g.close_transitively();
        assert_eq!(g.edge("a", "c"), Some(3));
    }

    #[test]
    fn conflicts_keep_the_more_reliable_direction() {
        let mut g = InformationNetwork::new();
        g.add_edge("a", "b", 5);
        g.add_edge("b", "a", 2);
        g.resolve_conflicts();
        assert_eq!(g.edge("a", "b"), Some(5));
        assert_eq!(g.edge("b", "a"), None);
    }

    #[test]
    fn tied_conflicts_drop_both_directions() {
        let mut g = InformationNetwork::new();
        g.add_edge("a", "b", 3);
        g.add_edge("b", "a", 3);
        g.resolve_conflicts();
        assert_eq!(g.edge("a", "b"), None);
        assert_eq!(g.edge("b", "a"), None);
        assert_eq!(g.n_nodes(), 2, "nodes survive conflict removal");
    }

    #[test]
    fn sources_are_the_undominated_nodes() {
        let mut g = chain();
        g.add_node("isolated");
        assert_eq!(g.sources(), vec!["a".to_string(), "isolated".to_string()]);
    }

    #[test]
    fn closure_then_conflict_resolution_handles_cycles() {
        // a→b (9), b→c (9), c→a (1): closure creates mutual edges; conflict
        // resolution must break the cycle in favour of reliable directions.
        let mut g = InformationNetwork::new();
        g.add_edge("a", "b", 9);
        g.add_edge("b", "c", 9);
        g.add_edge("c", "a", 1);
        g.close_transitively();
        g.resolve_conflicts();
        // a→b stays (9 vs derived b→a min(9,1)=1), same for b→c.
        assert_eq!(g.edge("a", "b"), Some(9));
        assert_eq!(g.edge("b", "c"), Some(9));
        assert_eq!(g.edge("c", "a"), None, "weak contrary evidence removed");
        assert_eq!(g.sources(), vec!["a".to_string()]);
    }

    #[test]
    fn descendants_follow_directed_reachability() {
        let g = chain();
        let d = g.descendants("a");
        assert!(d.contains("b") && d.contains("c"));
        assert!(g.descendants("c").is_empty());
    }
}
