//! Paper metadata and the Table I reliability ordering.
//!
//! Table I ranks four bases by priority: paper level (A > B > C > D), paper
//! type (Journal > Conference), influence (impact) factor (bigger is
//! better), and average annual citation number (bigger is better). Papers
//! are compared lexicographically in that priority order; Algorithm 1 then
//! sorts ascending and uses each paper's *index* as its reliability value.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// CCF-style paper level; `A` is the most reliable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PaperLevel {
    A,
    B,
    C,
    D,
}

/// Venue type; journals outrank conferences in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VenueType {
    Journal,
    Conference,
}

/// One research paper in the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Paper {
    pub id: String,
    pub level: PaperLevel,
    pub venue: VenueType,
    pub impact_factor: f64,
    pub annual_citations: u32,
}

impl Paper {
    pub fn new(
        id: impl Into<String>,
        level: PaperLevel,
        venue: VenueType,
        impact_factor: f64,
        annual_citations: u32,
    ) -> Paper {
        Paper {
            id: id.into(),
            level,
            venue,
            impact_factor: impact_factor.max(0.0),
            annual_citations,
        }
    }

    /// Table I comparison: `Greater` means *more reliable*.
    pub fn cmp_reliability(&self, other: &Paper) -> Ordering {
        // Level: A > B > C > D — enum order is A < B < ..., so reverse.
        other
            .level
            .cmp(&self.level)
            .then_with(|| match (self.venue, other.venue) {
                (VenueType::Journal, VenueType::Conference) => Ordering::Greater,
                (VenueType::Conference, VenueType::Journal) => Ordering::Less,
                _ => Ordering::Equal,
            })
            .then_with(|| self.impact_factor.total_cmp(&other.impact_factor))
            .then_with(|| self.annual_citations.cmp(&other.annual_citations))
            // Stable final tiebreak so ranks are deterministic.
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Algorithm 1, line 2: rank papers ascending by reliability; a paper's
/// reliability value is its index in this ranking. Returns
/// `(sorted ids, id → reliability)` so both views are available.
pub fn rank_papers(papers: &[Paper]) -> Vec<(String, usize)> {
    let mut sorted: Vec<&Paper> = papers.iter().collect();
    sorted.sort_by(|a, b| a.cmp_reliability(b));
    sorted
        .into_iter()
        .enumerate()
        .map(|(rank, p)| (p.id.clone(), rank))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper(id: &str, level: PaperLevel, venue: VenueType, imf: f64, cites: u32) -> Paper {
        Paper::new(id, level, venue, imf, cites)
    }

    #[test]
    fn level_dominates_everything() {
        let a = paper("a", PaperLevel::A, VenueType::Conference, 0.1, 0);
        let b = paper("b", PaperLevel::B, VenueType::Journal, 99.0, 99999);
        assert_eq!(a.cmp_reliability(&b), Ordering::Greater);
    }

    #[test]
    fn venue_breaks_level_ties() {
        let j = paper("j", PaperLevel::B, VenueType::Journal, 0.5, 10);
        let c = paper("c", PaperLevel::B, VenueType::Conference, 5.0, 1000);
        assert_eq!(j.cmp_reliability(&c), Ordering::Greater);
    }

    #[test]
    fn impact_factor_breaks_venue_ties() {
        let hi = paper("hi", PaperLevel::C, VenueType::Journal, 3.0, 1);
        let lo = paper("lo", PaperLevel::C, VenueType::Journal, 1.0, 1000);
        assert_eq!(hi.cmp_reliability(&lo), Ordering::Greater);
    }

    #[test]
    fn citations_are_the_last_resort() {
        let hi = paper("hi", PaperLevel::C, VenueType::Journal, 1.0, 500);
        let lo = paper("lo", PaperLevel::C, VenueType::Journal, 1.0, 100);
        assert_eq!(hi.cmp_reliability(&lo), Ordering::Greater);
    }

    #[test]
    fn ranking_is_ascending_with_index_as_reliability() {
        let papers = vec![
            paper("best", PaperLevel::A, VenueType::Journal, 10.0, 1000),
            paper("worst", PaperLevel::D, VenueType::Conference, 0.1, 1),
            paper("mid", PaperLevel::B, VenueType::Journal, 2.0, 50),
        ];
        let ranks = rank_papers(&papers);
        let get = |id: &str| ranks.iter().find(|(i, _)| i == id).unwrap().1;
        assert_eq!(get("worst"), 0);
        assert_eq!(get("mid"), 1);
        assert_eq!(get("best"), 2);
    }

    #[test]
    fn ranking_is_deterministic_under_full_ties() {
        let papers = vec![
            paper("x", PaperLevel::C, VenueType::Journal, 1.0, 10),
            paper("y", PaperLevel::C, VenueType::Journal, 1.0, 10),
        ];
        let r1 = rank_papers(&papers);
        let r2 = rank_papers(&papers);
        assert_eq!(r1, r2);
        // Distinct ranks even when all four bases tie.
        assert_ne!(r1[0].1, r1[1].1);
    }
}
