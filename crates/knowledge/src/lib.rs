//! # automodel-knowledge
//!
//! Paper-experience substrate: everything the paper's §III-C1 ("Knowledge
//! Acquirement") needs.
//!
//! * [`paper`] — paper metadata and the Table I reliability ordering
//!   (paper level > venue type > impact factor > average annual citations).
//! * [`experience`] — the experience quadruples
//!   `(P, I, BestA_I^P, OtherAs_I^P)` extracted from papers.
//! * [`graph`] — the *information network* `DGraph`: a directed,
//!   reliability-weighted graph over optimal-algorithm candidates, with
//!   widest-path closure (the BFS step of Algorithm 1) and contradiction
//!   resolution.
//! * [`acquisition`] — Algorithm 1 (`KnowledgeAcquisition`): from raw
//!   experiences to `CRelations = {(instance, best algorithm)}`.
//! * [`corpus`] — synthetic corpus generation with planted ground truth and
//!   reliability-dependent noise, plus the Fig. 2 Wine worked example.

pub mod acquisition;
pub mod corpus;
pub mod experience;
pub mod graph;
pub mod paper;

pub use acquisition::{knowledge_acquisition, AcquisitionOptions, KnowledgePair};
pub use corpus::{Corpus, CorpusSpec};
pub use experience::Experience;
pub use graph::InformationNetwork;
pub use paper::{Paper, PaperLevel, VenueType};
