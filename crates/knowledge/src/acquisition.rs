//! Algorithm 1: `KnowledgeAcquisition`.
//!
//! From all usable experience `InfAll` and the paper corpus, derive
//! `CRelations = {(instance, optimal algorithm)}`:
//!
//! 1. rank papers by Table I reliability (ascending; index = reliability);
//! 2. per instance `I` with more than `min_algorithms` algorithms involved:
//!    build the information network over the best-algorithm candidates,
//!    close it transitively (weakest-link weights), resolve contradictions;
//! 3. the optimal algorithm is an in-degree-0 candidate; ties are broken by
//!    the *richest comparison experience* — the number of distinct
//!    algorithms proved weaker via `RInf_I` and the closed graph.

use crate::experience::{distinct_algorithms, instance_list, related_experiences, Experience};
use crate::graph::InformationNetwork;
use crate::paper::{rank_papers, Paper};
use std::collections::{BTreeMap, BTreeSet};

/// One acquired knowledge pair `(I, OA_I)`.
#[derive(Debug, Clone, PartialEq)]
pub struct KnowledgePair {
    pub instance: String,
    pub best_algorithm: String,
    /// Candidates that survived to the in-degree-0 stage (diagnostics).
    pub final_candidates: Vec<String>,
    /// The comparison-experience score of the winner.
    pub evidence: usize,
}

/// Options for Algorithm 1.
#[derive(Debug, Clone)]
pub struct AcquisitionOptions {
    /// Line 6: skip instances whose `RInf_I` involves no more than this many
    /// algorithms (the paper uses 5: "involves > 5 algorithms").
    pub min_algorithms: usize,
}

impl Default for AcquisitionOptions {
    fn default() -> AcquisitionOptions {
        AcquisitionOptions { min_algorithms: 5 }
    }
}

/// Build the (closed, conflict-free) information network for one instance.
/// Exposed so examples and the knowledge-quality experiments can inspect
/// the intermediate graph.
pub fn build_network(
    rinf: &[&Experience],
    reliability: &BTreeMap<String, usize>,
) -> InformationNetwork {
    // OACs: the best algorithms only (line 7).
    let oacs: BTreeSet<&str> = rinf.iter().map(|e| e.best.as_str()).collect();
    let mut graph = InformationNetwork::new();
    for &cand in &oacs {
        graph.add_node(cand);
    }
    // Line 8: edges best → other for others that are themselves candidates,
    // weighted by the providing paper's reliability (max over papers).
    for e in rinf {
        let Some(&rel) = reliability.get(&e.paper) else {
            continue;
        };
        for other in &e.others {
            if oacs.contains(other.as_str()) {
                graph.add_edge(&e.best, other, rel);
            }
        }
    }
    // Lines 10–12.
    graph.close_transitively();
    graph.resolve_conflicts();
    graph
}

/// Comparison-experience score (line 14): distinct algorithms proved weaker
/// than `candidate` — the union of `others` over tuples whose best is
/// reachable from the candidate (or is the candidate itself).
pub fn comparison_experience(
    candidate: &str,
    rinf: &[&Experience],
    graph: &InformationNetwork,
) -> usize {
    let mut reachable = graph.descendants(candidate);
    reachable.insert(candidate.to_string());
    let mut weaker: BTreeSet<String> = BTreeSet::new();
    for e in rinf {
        if reachable.contains(&e.best) {
            for other in &e.others {
                if other != candidate {
                    weaker.insert(other.clone());
                }
            }
        }
    }
    // Everything reachable in the graph is also proved weaker.
    for node in graph.descendants(candidate) {
        if node != candidate {
            weaker.insert(node);
        }
    }
    weaker.len()
}

/// Algorithm 1 in full.
pub fn knowledge_acquisition(
    infall: &[Experience],
    papers: &[Paper],
    options: &AcquisitionOptions,
) -> Vec<KnowledgePair> {
    let reliability: BTreeMap<String, usize> = rank_papers(papers).into_iter().collect();
    let mut crelations = Vec::new();
    for instance in instance_list(infall) {
        let rinf = related_experiences(infall, &instance);
        // Line 6: require enough algorithmic context.
        if distinct_algorithms(&rinf).len() <= options.min_algorithms {
            continue;
        }
        let graph = build_network(&rinf, &reliability);
        let candidates = graph.sources();
        if candidates.is_empty() {
            // Fully cyclic conflicting evidence — no defensible answer.
            continue;
        }
        let scored: Vec<(usize, &String)> = candidates
            .iter()
            .map(|c| (comparison_experience(c, &rinf, &graph), c))
            .collect();
        let (evidence, winner) = scored
            .iter()
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(a.1)))
            .map(|&(s, c)| (s, c.clone()))
            // lint:allow(no-panic-lib): `candidates.is_empty()` returned above
            .expect("candidates nonempty");
        crelations.push(KnowledgePair {
            instance,
            best_algorithm: winner,
            final_candidates: candidates,
            evidence,
        });
    }
    crelations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{PaperLevel, VenueType};

    fn papers() -> Vec<Paper> {
        vec![
            Paper::new("weak", PaperLevel::D, VenueType::Conference, 0.1, 1),
            Paper::new("mid", PaperLevel::B, VenueType::Conference, 1.0, 10),
            Paper::new("strong", PaperLevel::A, VenueType::Journal, 9.0, 500),
        ]
    }

    /// Experiences naming ≥6 algorithms so line 6 passes.
    fn rich_experience(paper: &str, best: &str, others: &[&str]) -> Experience {
        Experience::new(paper, "wine", best, others)
    }

    #[test]
    fn acquires_the_undominated_candidate() {
        let infall = vec![
            rich_experience(
                "strong",
                "RandomForest",
                &["J48", "NaiveBayes", "OneR", "ZeroR", "IBk"],
            ),
            rich_experience("mid", "J48", &["OneR", "ZeroR"]),
        ];
        let pairs = knowledge_acquisition(&infall, &papers(), &AcquisitionOptions::default());
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].best_algorithm, "RandomForest");
    }

    #[test]
    fn skips_instances_with_too_few_algorithms() {
        let infall = vec![rich_experience("strong", "A", &["B", "C"])];
        let pairs = knowledge_acquisition(&infall, &papers(), &AcquisitionOptions::default());
        assert!(pairs.is_empty());
        // With a relaxed threshold it is kept.
        let pairs = knowledge_acquisition(
            &infall,
            &papers(),
            &AcquisitionOptions { min_algorithms: 2 },
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn conflicts_resolve_toward_the_reliable_paper() {
        // weak paper: J48 beats RandomForest; strong paper: RandomForest
        // beats J48. Both are candidates (each is a best somewhere).
        let infall = vec![
            rich_experience("weak", "J48", &["RandomForest", "A", "B", "C", "D"]),
            rich_experience("strong", "RandomForest", &["J48", "A", "B", "C", "D"]),
        ];
        let pairs = knowledge_acquisition(&infall, &papers(), &AcquisitionOptions::default());
        assert_eq!(pairs[0].best_algorithm, "RandomForest");
    }

    #[test]
    fn tie_between_sources_broken_by_comparison_experience() {
        // Two candidates never compared against each other; "Rich" has far
        // more algorithms proved weaker.
        let infall = vec![
            rich_experience("mid", "Rich", &["A", "B", "C", "D", "E", "F"]),
            rich_experience("strong", "Poor", &["A"]),
        ];
        let pairs = knowledge_acquisition(&infall, &papers(), &AcquisitionOptions::default());
        assert_eq!(pairs[0].best_algorithm, "Rich");
        assert_eq!(pairs[0].final_candidates.len(), 2);
        assert_eq!(pairs[0].evidence, 6);
    }

    #[test]
    fn transitive_evidence_counts_toward_experience() {
        // X beats Y (paper strong); Y is best elsewhere over {A..E}: X's
        // comparison experience includes Y's victims via reachability.
        let infall = vec![
            rich_experience("strong", "X", &["Y", "q1", "q2", "q3", "q4"]),
            rich_experience("mid", "Y", &["A", "B", "C", "D", "E"]),
        ];
        let pairs = knowledge_acquisition(&infall, &papers(), &AcquisitionOptions::default());
        assert_eq!(pairs[0].best_algorithm, "X");
        // victims: Y, q1..q4 directly; A..E through Y ⇒ 10 distinct.
        assert_eq!(pairs[0].evidence, 10);
    }

    #[test]
    fn per_instance_isolation() {
        let infall = vec![
            Experience::new("strong", "wine", "A", &["B", "C", "D", "E", "F"]),
            Experience::new("strong", "iris", "Z", &["Y", "X", "W", "V", "U"]),
        ];
        let pairs = knowledge_acquisition(&infall, &papers(), &AcquisitionOptions::default());
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].instance, "wine");
        assert_eq!(pairs[0].best_algorithm, "A");
        assert_eq!(pairs[1].instance, "iris");
        assert_eq!(pairs[1].best_algorithm, "Z");
    }
}
