//! Seeded property tests: Algorithm 1 invariants under arbitrary corpora.
//! Cases are generated from explicit seeds (no proptest: the build is
//! offline, and deterministic replay is a workspace invariant).

use automodel_knowledge::graph::InformationNetwork;
use automodel_knowledge::{knowledge_acquisition, AcquisitionOptions, CorpusSpec, Experience};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const ALGOS: [&str; 9] = ["A", "B", "C", "D", "E", "F", "G", "H", "I"];

fn random_corpus(rng: &mut StdRng) -> automodel_knowledge::Corpus {
    let instances = rng.gen_range(2usize..10);
    let papers = rng.gen_range(3usize..25);
    let noise = rng.gen_range(0.0f64..0.7);
    let seed = rng.gen_range(0u64..10_000);
    let mut rankings = BTreeMap::new();
    for i in 0..instances {
        let mut order: Vec<String> = ALGOS.iter().map(|s| s.to_string()).collect();
        order.rotate_left(i % ALGOS.len());
        rankings.insert(format!("ds{i}"), order);
    }
    let mut spec = CorpusSpec::new(rankings, seed);
    spec.n_papers = papers;
    spec.noise = noise;
    spec.build()
}

fn case_rng(test_salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

#[test]
fn acquisition_output_is_well_formed() {
    for case in 0..48u64 {
        let mut rng = case_rng(41, case);
        let corpus = random_corpus(&mut rng);
        let pairs = knowledge_acquisition(
            &corpus.experiences,
            &corpus.papers,
            &AcquisitionOptions { min_algorithms: 3 },
        );
        for pair in &pairs {
            // The instance came from the corpus.
            assert!(
                corpus.true_rankings.contains_key(&pair.instance),
                "case {case}"
            );
            // The winner was reported as best by at least one paper.
            assert!(
                corpus
                    .experiences
                    .iter()
                    .any(|e| e.instance == pair.instance && e.best == pair.best_algorithm),
                "case {case}: {} won {} without any paper naming it best",
                pair.best_algorithm,
                pair.instance
            );
            // The winner is among the surviving candidates.
            assert!(
                pair.final_candidates.contains(&pair.best_algorithm),
                "case {case}"
            );
        }
        // At most one pair per instance.
        let mut instances: Vec<&str> = pairs.iter().map(|p| p.instance.as_str()).collect();
        instances.sort_unstable();
        let before = instances.len();
        instances.dedup();
        assert_eq!(before, instances.len(), "case {case}");
    }
}

#[test]
fn acquisition_is_deterministic() {
    for case in 0..48u64 {
        let mut rng = case_rng(42, case);
        let corpus = random_corpus(&mut rng);
        let opts = AcquisitionOptions { min_algorithms: 3 };
        let a = knowledge_acquisition(&corpus.experiences, &corpus.papers, &opts);
        let b = knowledge_acquisition(&corpus.experiences, &corpus.papers, &opts);
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn noise_free_acquisition_never_contradicts_planted_truth_ordering() {
    for seed in 0..48u64 {
        // With zero noise every reported relation is truthful, so whatever
        // Algorithm 1 picks must never be *worse in the planted ranking*
        // than an algorithm it was compared against and beat.
        let mut rankings = BTreeMap::new();
        for i in 0..6 {
            let mut order: Vec<String> = ALGOS.iter().map(|s| s.to_string()).collect();
            order.rotate_left(i);
            rankings.insert(format!("ds{i}"), order);
        }
        let mut spec = CorpusSpec::new(rankings, seed);
        spec.noise = 0.0;
        let corpus = spec.build();
        let pairs = knowledge_acquisition(
            &corpus.experiences,
            &corpus.papers,
            &AcquisitionOptions { min_algorithms: 3 },
        );
        for pair in &pairs {
            let ranking = &corpus.true_rankings[&pair.instance];
            let win_rank = ranking
                .iter()
                .position(|a| a == &pair.best_algorithm)
                .unwrap();
            // No experience may show an algorithm with better planted rank
            // beating the winner (that would mean Algorithm 1 kept a
            // dominated node as a source).
            for e in corpus
                .experiences
                .iter()
                .filter(|e| e.instance == pair.instance)
            {
                if e.others.contains(&pair.best_algorithm) {
                    let best_rank = ranking.iter().position(|a| a == &e.best).unwrap();
                    assert!(
                        best_rank < win_rank,
                        "seed {seed} {}: winner {} was beaten by {} yet survived as source",
                        pair.instance,
                        pair.best_algorithm,
                        e.best
                    );
                }
            }
        }
    }
}

#[test]
fn conflict_resolution_leaves_no_mutual_edges() {
    for case in 0..48u64 {
        let mut rng = case_rng(44, case);
        let n_edges = rng.gen_range(1usize..40);
        let mut g = InformationNetwork::new();
        for _ in 0..n_edges {
            let from = rng.gen_range(0usize..6);
            let to = rng.gen_range(0usize..6);
            let w = rng.gen_range(0usize..20);
            g.add_edge(&format!("n{from}"), &format!("n{to}"), w);
        }
        g.close_transitively();
        g.resolve_conflicts();
        let all: Vec<(String, String)> = g
            .edges()
            .map(|(f, t, _)| (f.to_string(), t.to_string()))
            .collect();
        for (f, t) in &all {
            assert!(
                !all.contains(&(t.clone(), f.clone())),
                "case {case}: mutual edge {f} <-> {t} survived"
            );
        }
    }
}

#[test]
fn closure_never_decreases_reachability() {
    for case in 0..48u64 {
        let mut rng = case_rng(45, case);
        let n_edges = rng.gen_range(1usize..20);
        let mut g = InformationNetwork::new();
        for _ in 0..n_edges {
            let from = rng.gen_range(0usize..5);
            let to = rng.gen_range(0usize..5);
            let w = rng.gen_range(1usize..10);
            g.add_edge(&format!("n{from}"), &format!("n{to}"), w);
        }
        let before: Vec<usize> = (0..5)
            .map(|i| g.descendants(&format!("n{i}")).len())
            .collect();
        g.close_transitively();
        let after: Vec<usize> = (0..5)
            .map(|i| g.descendants(&format!("n{i}")).len())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!(a >= b, "case {case}: reachability shrank");
        }
    }
}

#[test]
fn experiences_never_list_best_among_others() {
    for case in 0..48u64 {
        let mut rng = case_rng(46, case);
        let corpus = random_corpus(&mut rng);
        for e in &corpus.experiences {
            assert!(!e.others.contains(&e.best), "case {case}");
            assert!(!e.others.is_empty(), "case {case}");
        }
    }
}

/// Regression: two papers whose four Table I bases all tie are still ranked
/// deterministically (id tiebreak), so a head-to-head contradiction
/// resolves to exactly one candidate — reproducibly.
#[test]
fn tied_papers_still_resolve_deterministically() {
    use automodel_knowledge::paper::{Paper, PaperLevel, VenueType};
    let papers = vec![
        Paper::new("p1", PaperLevel::B, VenueType::Journal, 2.0, 10),
        Paper::new("p2", PaperLevel::B, VenueType::Journal, 2.0, 10),
    ];
    let experiences = vec![
        Experience::new("p1", "ds", "X", &["Y", "a", "b", "c"]),
        Experience::new("p2", "ds", "Y", &["X", "a", "b", "c"]),
    ];
    let run = || {
        knowledge_acquisition(
            &experiences,
            &papers,
            &AcquisitionOptions { min_algorithms: 3 },
        )
    };
    let pairs = run();
    assert_eq!(pairs.len(), 1);
    assert_eq!(pairs[0].final_candidates.len(), 1);
    // The id tiebreak makes "p1" the more reliable paper, so X wins.
    assert_eq!(pairs[0].best_algorithm, "X");
    assert_eq!(run(), pairs);
}
