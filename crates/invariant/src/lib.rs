//! Runtime invariant checks for the Auto-Model workspace.
//!
//! [`debug_invariant!`] is the sanctioned way for library code to assert
//! algorithmic invariants: active in debug and test builds (where the whole
//! test suite runs with `debug_assertions` on), compiled out of release
//! binaries, and exempt from the `no-panic-lib` lint — the panic lives in
//! this crate, behind an explicit, greppable name.
//!
//! The crate also hosts the NaN-safe ordering helpers that back lint rule
//! L4 (`nan-ordering`): [`f64_key`] gives any float a total order usable as
//! a sort key, so call sites never reach for `partial_cmp(..).unwrap()`.

use std::cmp::Ordering;

/// Assert an algorithmic invariant in debug/test builds.
///
/// ```
/// use automodel_invariant::debug_invariant;
/// let population = vec![1, 2, 3];
/// debug_invariant!(!population.is_empty());
/// debug_invariant!(population.len() <= 50, "population overflow: {}", population.len());
/// ```
///
/// Release builds compile the check out entirely (the condition is not
/// evaluated), exactly like `debug_assert!`, but with a message prefix that
/// makes invariant failures greppable in CI logs.
#[macro_export]
macro_rules! debug_invariant {
    ($cond:expr $(,)?) => {
        if cfg!(debug_assertions) && !$cond {
            ::std::panic!("invariant violated: {}", ::std::stringify!($cond));
        }
    };
    ($cond:expr, $($msg:tt)+) => {
        if cfg!(debug_assertions) && !$cond {
            ::std::panic!(
                "invariant violated: {}: {}",
                ::std::stringify!($cond),
                ::std::format_args!($($msg)+)
            );
        }
    };
}

/// Total-order key for an `f64`: orders like [`f64::total_cmp`]
/// (−NaN < −∞ < … < −0 < +0 < … < +∞ < +NaN), usable with
/// `sort_by_key` / `max_by_key`.
///
/// ```
/// use automodel_invariant::f64_key;
/// let mut v = vec![2.0f64, f64::NAN, 1.0];
/// v.sort_by_key(|x| f64_key(*x));
/// assert_eq!(v[0], 1.0);
/// assert_eq!(v[1], 2.0);
/// assert!(v[2].is_nan());
/// ```
#[must_use]
pub fn f64_key(x: f64) -> u64 {
    let bits = x.to_bits();
    // Flip all bits of negatives, only the sign bit of non-negatives:
    // maps the IEEE-754 encoding onto an order-preserving unsigned key.
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// NaN-safe descending comparison (largest first, NaN sorts last).
/// Convenient for ranking fitness/accuracy lists.
#[must_use]
pub fn cmp_desc(a: f64, b: f64) -> Ordering {
    // Reversing the total order would rank +NaN (the largest key) first;
    // pull NaNs out so they always lose.
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => f64_key(b).cmp(&f64_key(a)),
    }
}

/// Are all values finite? The invariant every fitness vector must satisfy.
#[must_use]
pub fn all_finite(values: &[f64]) -> bool {
    values.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_invariant_is_silent() {
        debug_invariant!(1 + 1 == 2);
        debug_invariant!(true, "with message {}", 42);
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn failing_invariant_panics_in_debug() {
        debug_invariant!(1 > 2, "impossible arithmetic");
    }

    #[test]
    fn f64_key_is_order_preserving() {
        let vals = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            1.5,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(f64_key(w[0]) <= f64_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(f64_key(f64::NAN) > f64_key(f64::INFINITY));
        assert_eq!(f64_key(2.0).cmp(&f64_key(1.0)), 2.0f64.total_cmp(&1.0));
    }

    #[test]
    fn cmp_desc_ranks_largest_first_nan_last() {
        let mut v = [0.3, f64::NAN, 0.9, 0.1];
        v.sort_by(|a, b| cmp_desc(*a, *b));
        assert_eq!(v[0], 0.9);
        assert_eq!(v[1], 0.3);
        assert_eq!(v[2], 0.1);
        assert!(v[3].is_nan());
    }

    #[test]
    fn all_finite_spots_the_rot() {
        assert!(all_finite(&[0.0, -1.0, 1e308]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(all_finite(&[]));
    }
}
