//! Random Search (§II-A): sample uniformly until the budget is exhausted.
//!
//! The paper uses RS as the canonical "ignores history" baseline; it is also
//! the interleave component of [`crate::smac::SmacLite`].

use crate::budget::Budget;
use crate::objective::{Objective, OptOutcome, Optimizer, Trial};
use crate::space::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random search.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
}

impl RandomSearch {
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch { seed }
    }
}

impl Optimizer for RandomSearch {
    fn optimize(
        &mut self,
        space: &SearchSpace,
        objective: &mut dyn Objective,
        budget: &Budget,
    ) -> Option<OptOutcome> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tracker = budget.start();
        let mut trials = Vec::new();
        while !tracker.exhausted() {
            let config = space.sample(&mut rng);
            let score = objective.evaluate(&config);
            tracker.record(score);
            trials.push(Trial {
                config,
                score,
                index: trials.len(),
            });
        }
        OptOutcome::from_trials(trials)
    }

    fn name(&self) -> &'static str {
        "random-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::space::{Config, Domain};
    use crate::testfns::sphere;

    fn space1d() -> SearchSpace {
        SearchSpace::builder()
            .add("x", Domain::float(-5.0, 5.0))
            .build()
            .unwrap()
    }

    #[test]
    fn respects_eval_budget() {
        let space = space1d();
        let mut n = 0usize;
        let mut obj = FnObjective(|_c: &Config| {
            n += 1;
            0.0
        });
        let out = RandomSearch::new(1)
            .optimize(&space, &mut obj, &Budget::evals(25))
            .unwrap();
        assert_eq!(out.trials.len(), 25);
        assert_eq!(n, 25);
    }

    #[test]
    fn finds_decent_sphere_optimum() {
        let space = space1d();
        let mut obj = FnObjective(|c: &Config| -sphere(&[c.float_or("x", 0.0)]));
        let out = RandomSearch::new(7)
            .optimize(&space, &mut obj, &Budget::evals(200))
            .unwrap();
        assert!(out.best_score > -0.1, "best = {}", out.best_score);
    }

    #[test]
    fn deterministic_under_seed() {
        let space = space1d();
        let run = |seed| {
            let mut obj = FnObjective(|c: &Config| -sphere(&[c.float_or("x", 0.0)]));
            RandomSearch::new(seed)
                .optimize(&space, &mut obj, &Budget::evals(30))
                .unwrap()
                .best_score
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn zero_budget_yields_none() {
        let space = space1d();
        let mut obj = FnObjective(|_c: &Config| 0.0);
        assert!(RandomSearch::new(1)
            .optimize(&space, &mut obj, &Budget::evals(0))
            .is_none());
    }

    #[test]
    fn target_budget_stops_early() {
        let space = space1d();
        let mut obj = FnObjective(|_c: &Config| 1.0);
        let out = RandomSearch::new(1)
            .optimize(&space, &mut obj, &Budget::evals(100).with_target(0.5))
            .unwrap();
        assert_eq!(out.trials.len(), 1);
    }
}
